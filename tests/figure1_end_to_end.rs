//! End-to-end Figure 1 / theorem integration tests spanning the formal
//! model (`polytm-schedule`), the STM (`polytm`) and the lock substrate
//! (`polytm-locks`).

use transaction_polymorphism::schedule::theorems::check_all_def_coincides;
use transaction_polymorphism::schedule::{
    accepts, check_theorem1, check_theorem2, enumerate_interleavings, figure1_interleaving,
    figure1_lock_schedule, figure1_program, replay, Synchronization,
};

#[test]
fn figure1_full_reproduction() {
    let program = figure1_program();
    let inter = figure1_interleaving();

    // Analytic: lock yes, poly yes, mono no.
    assert!(accepts(&program, &inter, Synchronization::LockBased).accepted);
    assert!(accepts(&program, &inter, Synchronization::Polymorphic).accepted);
    assert!(!accepts(&program, &inter, Synchronization::Monomorphic).accepted);

    // The hand-over-hand lock schedule is executable and not two-phase.
    let lock = figure1_lock_schedule();
    assert_eq!(lock.validate(), Ok(()));
    assert!(!lock.is_two_phase());

    // The real STM agrees.
    let poly = replay(&program, &inter, Synchronization::Polymorphic).unwrap();
    assert!(poly.accepted);
    let mono = replay(&program, &inter, Synchronization::Monomorphic).unwrap();
    assert!(!mono.accepted);
}

#[test]
fn theorems_hold() {
    let t1 = check_theorem1();
    assert!(t1.holds, "{t1}");
    let t2 = check_theorem2();
    assert!(t2.holds, "{t2}");
    assert_eq!(check_all_def_coincides(), 640);
}

/// Cross-validation: the *real implementation* must be conservative with
/// respect to the analytic model — every schedule the STM executes
/// without aborting must be analytically acceptable. (The converse need
/// not hold: TL2-style validation rejects some acceptable schedules.)
#[test]
fn implementation_is_sound_wrt_model_on_all_figure1_interleavings() {
    let program = figure1_program();
    let mut impl_accepted = 0u32;
    let mut model_accepted = 0u32;
    for inter in enumerate_interleavings(&program) {
        for sync in [Synchronization::Monomorphic, Synchronization::Polymorphic] {
            let model_ok = accepts(&program, &inter, sync).accepted;
            let impl_ok = replay(&program, &inter, sync).unwrap().accepted;
            if impl_ok {
                impl_accepted += 1;
                assert!(
                    model_ok,
                    "UNSOUND: the STM accepted a schedule the model rejects ({sync:?}):\n{}",
                    inter.render(&program)
                );
            }
            if model_ok {
                model_accepted += 1;
            }
        }
    }
    // Sanity on volume: 420 interleavings × 2 synchronizations.
    assert!(impl_accepted > 100, "implementation accepted only {impl_accepted}");
    assert!(model_accepted >= impl_accepted);
}

/// Polymorphism is observable in the aggregate too: across all Figure 1
/// interleavings the polymorphic STM must accept strictly more schedules
/// than the monomorphic STM.
#[test]
fn polymorphic_stm_accepts_strictly_more_figure1_interleavings() {
    let program = figure1_program();
    let (mut mono_ok, mut poly_ok) = (0u32, 0u32);
    let mut poly_superset = true;
    for inter in enumerate_interleavings(&program) {
        let m = replay(&program, &inter, Synchronization::Monomorphic).unwrap().accepted;
        let p = replay(&program, &inter, Synchronization::Polymorphic).unwrap().accepted;
        mono_ok += u32::from(m);
        poly_ok += u32::from(p);
        if m && !p {
            poly_superset = false;
        }
    }
    assert!(
        poly_ok > mono_ok,
        "polymorphic STM must accept more interleavings ({poly_ok} vs {mono_ok})"
    );
    assert!(poly_superset, "monomorphic-accepted must be polymorphic-accepted");
}
