//! Cross-crate integration: transactional structures composing with each
//! other and with raw TVars inside single atomic transactions, under
//! concurrency.

use std::sync::Arc;

use transaction_polymorphism::prelude::*;

#[test]
fn list_hash_queue_counter_in_one_transaction() {
    let stm = Arc::new(Stm::new());
    let pending = TxQueue::new(Arc::clone(&stm));
    let index = TxHashSet::new(Arc::clone(&stm), 8, 8);
    let ordered = TxList::new(Arc::clone(&stm));
    let processed = TxCounter::new(Arc::clone(&stm), 4);

    for k in [5u64, 3, 9, 3, 5, 7] {
        pending.enqueue(k);
    }

    // Drain the queue: each drained key is atomically (dedup-)inserted
    // into both the hash index and the ordered list, and counted.
    loop {
        let done = stm.run(TxParams::default(), |tx| match pending.dequeue_in(tx)? {
            None => Ok(true),
            Some(k) => {
                if index.insert_in(tx, k)? {
                    ordered.insert_in(tx, k as i64)?;
                    processed.add_in(tx, 0, 1)?;
                }
                Ok(false)
            }
        });
        if done {
            break;
        }
    }

    assert_eq!(ordered.to_vec(), vec![3, 5, 7, 9]);
    assert_eq!(index.len(), 4);
    assert_eq!(processed.get(), 4);
    assert!(pending.is_empty());
}

#[test]
fn concurrent_pipeline_conserves_items() {
    let stm = Arc::new(Stm::new());
    let queue = TxQueue::new(Arc::clone(&stm));
    let sink = TxHashSet::new(Arc::clone(&stm), 16, 16);

    std::thread::scope(|s| {
        // Producers.
        for t in 0..2u64 {
            let queue = queue.clone();
            s.spawn(move || {
                for i in 0..300u64 {
                    queue.enqueue(t * 10_000 + i);
                }
            });
        }
        // Consumers: atomically move queue -> set.
        for _ in 0..2 {
            let stm = Arc::clone(&stm);
            let queue = queue.clone();
            let sink = sink.clone();
            s.spawn(move || {
                let mut moved = 0;
                while moved < 300 {
                    let took = stm.run(TxParams::default(), |tx| match queue.dequeue_in(tx)? {
                        Some(k) => {
                            sink.insert_in(tx, k)?;
                            Ok(true)
                        }
                        None => Ok(false),
                    });
                    if took {
                        moved += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });

    assert_eq!(sink.len(), 600, "every item moved exactly once");
    assert!(queue.is_empty());
}

#[test]
fn snapshot_views_span_structures_consistently() {
    // Invariant across TWO structures: list and counter updated together;
    // snapshot transactions must see them in lockstep.
    let stm = Arc::new(Stm::new());
    let list = TxList::new(Arc::clone(&stm));
    let count = TxCounter::new(Arc::clone(&stm), 1);

    std::thread::scope(|s| {
        {
            let stm = Arc::clone(&stm);
            let list = list.clone();
            let count = count.clone();
            s.spawn(move || {
                for k in 0..400i64 {
                    stm.run(TxParams::default(), |tx| {
                        list.insert_in(tx, k)?;
                        count.add_in(tx, 0, 1)
                    });
                }
            });
        }
        for _ in 0..100 {
            let (len, n) = stm.run(TxParams::new(Semantics::Snapshot), |tx| {
                // Snapshot both structures in one transaction.
                let mut len = 0i64;
                let mut probe = 0i64;
                // Count the list by membership probes over the key space
                // (reads only; still one consistent snapshot).
                while probe < 400 {
                    if list.contains_in(tx, probe)? {
                        len += 1;
                    }
                    probe += 1;
                }
                Ok((len, count.sum_in(tx)?))
            });
            assert_eq!(len, n, "list length and counter diverged in a snapshot view");
        }
    });
    assert_eq!(count.get(), 400);
}

#[test]
fn mixed_semantics_handles_share_one_structure() {
    let stm = Arc::new(Stm::new());
    let weak_handle = TxList::new(Arc::clone(&stm));
    let strong_handle = weak_handle.clone_with_semantics(Semantics::Opaque);

    weak_handle.insert(1);
    strong_handle.insert(2);
    assert!(weak_handle.contains(2));
    assert!(strong_handle.contains(1));
    assert_eq!(weak_handle.to_vec(), vec![1, 2]);
}

#[test]
fn skiplist_and_list_agree_under_identical_ops() {
    let stm = Arc::new(Stm::new());
    let list = TxList::new(Arc::clone(&stm));
    let skip = TxSkipList::new(Arc::clone(&stm));
    let mut seed = 42u64;
    for _ in 0..500 {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let k = ((seed >> 33) % 128) as i64;
        match seed % 3 {
            0 => assert_eq!(list.insert(k), skip.insert(k)),
            1 => assert_eq!(list.remove(k), skip.remove(k)),
            _ => assert_eq!(list.contains(k), skip.contains(k)),
        }
    }
    assert_eq!(list.to_vec(), skip.to_vec());
}
