//! Smoke test for the paper's headline claims: Theorems 1 and 2 must
//! hold — the Figure 1 witness separates the synchronization classes and
//! the bounded-exhaustive inclusion check finds zero violations — on
//! every push, not just when `examples/theorems.rs` is run by hand.

use transaction_polymorphism::schedule::theorems::{check_theorem1, check_theorem2};

#[test]
fn theorem1_lock_based_strictly_more_concurrent_than_monomorphic() {
    let report = check_theorem1();
    assert!(
        report.witness_separates,
        "Figure 1 must separate {:?} from {:?}",
        report.stronger, report.weaker
    );
    assert_eq!(
        report.inclusion_violations, 0,
        "monomorphic-accepted schedules must all be lock-accepted \
         ({} pairs checked)",
        report.inclusion_pairs_checked
    );
    assert!(report.inclusion_pairs_checked > 0, "inclusion check must actually run");
    assert!(report.holds, "Theorem 1 report must conclude HOLDS");
}

#[test]
fn theorem2_polymorphic_strictly_more_concurrent_than_monomorphic() {
    let report = check_theorem2();
    assert!(
        report.witness_separates,
        "Figure 1 must separate {:?} from {:?}",
        report.stronger, report.weaker
    );
    assert_eq!(
        report.inclusion_violations, 0,
        "monomorphic-accepted schedules must all be polymorphic-accepted \
         ({} pairs checked)",
        report.inclusion_pairs_checked
    );
    assert!(report.inclusion_pairs_checked > 0, "inclusion check must actually run");
    assert!(report.holds, "Theorem 2 report must conclude HOLDS");
}
