//! Property test across the whole workspace: every set implementation —
//! transactional (each semantics), lock-based, and lock-free — must agree
//! with `BTreeSet` on arbitrary operation sequences.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use transaction_polymorphism::lockfree::{LockFreeList, MichaelHashSet, SplitOrderedSet};
use transaction_polymorphism::locks::{HandOverHandList, StripedHashSet};
use transaction_polymorphism::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..64).prop_map(Op::Insert),
            (0u64..64).prop_map(Op::Remove),
            (0u64..64).prop_map(Op::Contains),
        ],
        1..120,
    )
}

trait SetUnderTest {
    fn insert(&self, k: u64) -> bool;
    fn remove(&self, k: u64) -> bool;
    fn contains(&self, k: u64) -> bool;
}

macro_rules! impl_set {
    ($ty:ty, $cast:ty) => {
        impl SetUnderTest for $ty {
            fn insert(&self, k: u64) -> bool {
                <$ty>::insert(self, k as $cast)
            }
            fn remove(&self, k: u64) -> bool {
                <$ty>::remove(self, k as $cast)
            }
            fn contains(&self, k: u64) -> bool {
                <$ty>::contains(self, k as $cast)
            }
        }
    };
}

impl_set!(TxList, i64);
impl_set!(TxSkipList, i64);
impl_set!(TxHashSet, u64);
impl_set!(HandOverHandList, i64);
impl_set!(StripedHashSet, u64);
impl_set!(LockFreeList, u64);
impl_set!(MichaelHashSet, u64);
impl_set!(SplitOrderedSet, u64);

fn check(ops: &[Op], set: &dyn SetUnderTest, name: &str) -> Result<(), TestCaseError> {
    let mut model = BTreeSet::new();
    for (i, op) in ops.iter().enumerate() {
        let (got, want) = match *op {
            Op::Insert(k) => (set.insert(k), model.insert(k)),
            Op::Remove(k) => (set.remove(k), model.remove(&k)),
            Op::Contains(k) => (set.contains(k), model.contains(&k)),
        };
        prop_assert_eq!(got, want, "{} diverged at op {} ({:?})", name, i, op);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transactional_sets_match_model(ops in ops_strategy()) {
        let stm = Arc::new(Stm::new());
        check(&ops, &TxList::new(Arc::clone(&stm)), "TxList(elastic)")?;
        check(
            &ops,
            &TxList::with_op_semantics(Arc::clone(&stm), Semantics::Opaque),
            "TxList(opaque)",
        )?;
        check(&ops, &TxSkipList::new(Arc::clone(&stm)), "TxSkipList")?;
        check(&ops, &TxHashSet::new(Arc::clone(&stm), 2, 2), "TxHashSet")?;
    }

    #[test]
    fn lock_based_sets_match_model(ops in ops_strategy()) {
        check(&ops, &HandOverHandList::new(), "HandOverHandList")?;
        check(&ops, &StripedHashSet::new(2, 2), "StripedHashSet")?;
    }

    #[test]
    fn lock_free_sets_match_model(ops in ops_strategy()) {
        check(&ops, &LockFreeList::new(), "LockFreeList")?;
        check(&ops, &MichaelHashSet::new(4), "MichaelHashSet")?;
        check(&ops, &SplitOrderedSet::new(64, 2), "SplitOrderedSet")?;
    }
}
