//! Machine-check the paper's two theorems (Definition 1's concurrency
//! relation) over a bounded-exhaustive schedule universe, and show a few
//! separating witnesses beyond Figure 1.
//!
//! ```text
//! cargo run --release --example theorems
//! ```

use transaction_polymorphism::schedule::theorems::{
    bounded_universe, check_all_def_coincides, check_theorem1, check_theorem2,
};
use transaction_polymorphism::schedule::{accepts, enumerate_interleavings, Synchronization};

fn main() {
    println!("{}\n", check_theorem1());
    println!("{}\n", check_theorem2());

    let pairs = check_all_def_coincides();
    println!("sanity: polymorphic == monomorphic on all-def programs ({pairs} pairs checked)\n");

    // Show up to three separating witnesses (poly-accepted, mono-rejected)
    // from the bounded universe, rendered like the paper's figure.
    println!("separating witnesses beyond Figure 1:");
    let mut shown = 0;
    'outer: for program in bounded_universe(3, 2) {
        for inter in enumerate_interleavings(&program) {
            let mono = accepts(&program, &inter, Synchronization::Monomorphic).accepted;
            let poly = accepts(&program, &inter, Synchronization::Polymorphic).accepted;
            if poly && !mono {
                println!("\nwitness {} (p1 semantics: {:?}):", shown + 1, program.ops[0].semantics);
                println!("{}", inter.render(&program));
                shown += 1;
                if shown == 3 {
                    break 'outer;
                }
            }
        }
    }
}
