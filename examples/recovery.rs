//! `polytm-durable` demo: a durable KV store that survives a simulated
//! power loss. The store runs over the deterministic fault-injection
//! filesystem, commits a batch of transfers under sync durability,
//! checkpoints, keeps writing — and then the "machine" loses power with
//! a torn log tail. Reopening the same storage replays the
//! committed prefix: every acknowledged commit is back, and the torn
//! tail is gone without a trace.
//!
//! ```text
//! cargo run --release --example recovery
//! ```

use std::sync::Arc;
use std::time::Duration;

use polytm_durable::{Durability, DurableKv, DurableKvConfig, FaultFs, Storage, WalConfig};
use polytm_kv::Value;

fn main() {
    // A seeded in-memory device, armed to fail its 60th storage
    // operation the way real disks fail: here the seed picks a torn
    // append — only a prefix of the batch reaches the platter.
    let fs = Arc::new(FaultFs::with_crash_after(0xC0FFEE, 60));
    let config = DurableKvConfig {
        wal: WalConfig {
            mode: Durability::Sync,
            segment_bytes: 512, // tiny segments so rotation shows up
            group_window: Duration::ZERO,
            ..WalConfig::default()
        },
        ..DurableKvConfig::default()
    };

    let store = DurableKv::open(Arc::clone(&fs) as Arc<dyn Storage>, config).expect("fresh open");
    println!("== phase 1: durable commits ==");
    let mut acked = Vec::new();
    for account in 0..100u64 {
        match store.put(account, Value::from_u64(1_000 + account)) {
            Ok(_) => acked.push(account),
            Err(lost) => {
                // The armed crash point fired mid-flush: this commit
                // was never acknowledged durable, and the store latches
                // read-only instead of lying about persistence.
                println!("account {account}: {lost}");
                break;
            }
        }
        if account == 15 {
            store.checkpoint().expect("checkpoint while healthy");
            println!("checkpointed at account 15 (log truncated, snapshot installed)");
        }
    }
    println!(
        "acknowledged {} commits before the power cut; store read-only: {}",
        acked.len(),
        store.is_read_only()
    );

    // Power loss: volatile bytes resolve (the device keeps a seeded
    // prefix of its unsynced tail), then the machine reboots.
    drop(store);
    fs.crash();
    println!("\n== phase 2: crash + recovery ==");
    let files: Vec<String> = fs.list().expect("healthy after reboot");
    println!("surviving files: {files:?}");

    let recovered = DurableKv::open(Arc::clone(&fs) as Arc<dyn Storage>, config).expect("recovery");
    let mut missing = 0;
    for &account in &acked {
        let value = recovered.get(account);
        if value.and_then(|v| v.as_u64()) != Some(1_000 + account) {
            missing += 1;
        }
    }
    println!("recovered {} records; {missing} acknowledged commits missing", recovered.len());
    assert_eq!(missing, 0, "sync durability: every acked commit must survive");

    // The recovered store accepts new durable writes on a fresh
    // segment.
    recovered.put(7_000, Value::from_u64(42)).expect("post-recovery write");
    println!("post-recovery write acknowledged durable — the wing is live again");
}
