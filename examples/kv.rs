//! `polytm-kv` demo: a sharded transactional key-value store serving a
//! small YCSB-style session — point ops, CAS, a cross-shard multi-key
//! transaction, batched ingest, snapshot prefix scans, and a live look
//! at the adaptive advisor classifying the store's operation classes.
//!
//! ```text
//! cargo run --release --example kv
//! ```

use std::sync::Arc;

use polytm::{Stm, StmConfig};
use polytm_adaptive::Advisor;
use polytm_kv::{KvConfig, KvParams, KvStore, Value};

/// Pack (user, field) into the key space: user id above 8 field bits.
fn key(user: u64, field: u64) -> u64 {
    (user << 8) | field
}

fn main() {
    // The store under a live advisor: each operation kind (get / put /
    // rmw / scan / txn) is its own transaction class.
    let advisor = Arc::new(Advisor::default());
    let stm = Arc::new(Stm::with_advisor(StmConfig::default(), Arc::clone(&advisor) as _));
    let store = KvStore::with_config(
        Arc::clone(&stm),
        KvConfig { shards: 16, initial_slots: 64, params: KvParams::classed(0) },
    );

    // --- Batched ingest: one transaction per batch. -------------------
    let users = 64u64;
    for user in 0..users {
        let profile: Vec<(u64, Value)> =
            (0..4).map(|field| (key(user, field), Value::from_u64(user * 100 + field))).collect();
        store.multi_put(&profile);
    }
    println!("ingested {} records across {} shards", store.len(), store.shard_count());

    // --- Large values ride behind one Arc (no per-write boxing). ------
    let avatar = Value::from_bytes(&vec![0x42u8; 4096]);
    store.put(key(7, 200), avatar.clone());
    assert_eq!(store.get(key(7, 200)), Some(avatar));
    assert_eq!(
        stm.stats().boxed_writes,
        0,
        "4 KiB values must stay on the inline write-payload path"
    );
    println!("4 KiB avatar stored; boxed_writes = {}", stm.stats().boxed_writes);

    // --- Point traffic: reads, updates, CAS, RMW. ---------------------
    for round in 0..2_000u64 {
        let user = round % users;
        assert!(store.contains(key(user, 0)));
        if round % 10 == 0 {
            store.modify(key(user, 1), |cur| {
                Value::from_u64(cur.and_then(Value::as_u64).unwrap_or(0) + 1)
            });
        }
    }
    let counter = key(3, 1);
    let before = store.get(counter).unwrap();
    assert!(store.cas(counter, Some(&before), Value::from_u64(9_999)));
    assert!(!store.cas(counter, Some(&before), Value::from_u64(0)), "stale CAS must fail");
    println!("cas: stale witness rejected, fresh witness installed");

    // --- A multi-key transaction spanning shards. ---------------------
    // Move "credits" from user 1 to user 2 atomically; the two keys
    // live on whatever shards they hash to.
    let (a, b) = (key(1, 3), key(2, 3));
    store.txn(|kv| {
        let from = kv.get(a)?.and_then(|v| v.as_u64()).unwrap_or(0);
        let to = kv.get(b)?.and_then(|v| v.as_u64()).unwrap_or(0);
        kv.put(a, Value::from_u64(from.saturating_sub(50)))?;
        kv.put(b, Value::from_u64(to + 50))?;
        Ok(())
    });
    println!(
        "cross-shard transfer committed: {} / {}",
        store.get(a).unwrap().as_u64().unwrap(),
        store.get(b).unwrap().as_u64().unwrap()
    );

    // --- Snapshot prefix scan: user 7's whole profile in one cut. -----
    let profile = store.scan_prefix(7, 8);
    println!("user 7 profile: {} records (snapshot cut)", profile.len());
    assert!(profile.windows(2).all(|w| w[0].0 < w[1].0), "scan is key-ordered");

    // --- What did the runtime learn? ----------------------------------
    let stats = stm.stats();
    println!(
        "commits {} aborts {} (ratio {:.4}), advisor epochs {}",
        stats.commits,
        stats.aborts(),
        stats.abort_ratio(),
        advisor.epochs()
    );
    // What each class actually runs under: the first attempt's plan for
    // that class, floored by the core at the requested discipline (a
    // writing class that requested opaque is never served anything
    // weaker, whatever the advisor's table says — the plan-guardrail
    // rule this demo leans on).
    for (label, class, requested) in [
        ("get", 0u16, polytm::Semantics::elastic()),
        ("put", 1, polytm::Semantics::Opaque),
        ("rmw", 2, polytm::Semantics::Opaque),
        ("scan", 3, polytm::Semantics::Snapshot),
        ("txn", 4, polytm::Semantics::Opaque),
    ] {
        let served = {
            use polytm::SemanticsSource;
            let planned = advisor.plan(polytm::ClassId(class), 0, requested).semantics;
            match (planned, requested) {
                (polytm::Semantics::Snapshot, _) => planned,
                (p, r) if p.strength() < r.strength() => r, // core floors the plan
                (p, _) => p,
            }
        };
        match advisor.policy(polytm::ClassId(class)) {
            Some(policy) => println!(
                "  class {label:<4} advisor {:?} / {:?} -> served {:?} (escalate after {})",
                policy.semantics, policy.cm, served, policy.escalate_after
            ),
            None => println!("  class {label:<4} (not yet classified; served {served:?})"),
        }
    }
    // The classifier must never hand a writing class a read-only plan;
    // the store itself must still be fully consistent.
    assert_eq!(store.scan_prefix(1, 8).len(), 4);
    println!("kv demo OK");
}
