//! Reproduce the paper's Figure 1 end to end:
//!
//! 1. print the schedule,
//! 2. check it with the analytic acceptance model (lock-based /
//!    monomorphic / polymorphic),
//! 3. validate the hand-over-hand lock schedule's discipline,
//! 4. replay it through the real STM and watch the monomorphic run abort
//!    while the polymorphic (weak) run commits.
//!
//! ```text
//! cargo run --example figure1
//! ```

use transaction_polymorphism::prelude::*;
use transaction_polymorphism::schedule::{figure1_lock_schedule, replay};

fn main() {
    let program = figure1_program();
    let inter = figure1_interleaving();

    println!("The Figure 1 schedule (p1 runs start(weak); p2, p3 run start(def)):\n");
    println!("{}", inter.render(&program));

    println!("Analytic acceptance:");
    for (sync, label) in [
        (Synchronization::LockBased, "lock-based      "),
        (Synchronization::Monomorphic, "monomorphic     "),
        (Synchronization::Polymorphic, "polymorphic     "),
    ] {
        let out = accepts(&program, &inter, sync);
        println!(
            "  {label} {}",
            if out.accepted {
                "ACCEPTED".to_string()
            } else {
                format!("REJECTED — {}", out.reason)
            }
        );
    }

    let lock = figure1_lock_schedule();
    println!(
        "\nLock schedule: discipline {}, two-phase: {} (hand-over-hand deliberately is not)",
        if lock.validate().is_ok() { "valid" } else { "INVALID" },
        lock.is_two_phase()
    );

    println!("\nReplaying the exact interleaving on the real STM:");
    for (sync, label) in [
        (Synchronization::Monomorphic, "monomorphic"),
        (Synchronization::Polymorphic, "polymorphic"),
    ] {
        let out = replay(&program, &inter, sync).expect("replayable");
        match out.first_failure {
            None => {
                println!("  {label}: all transactions committed; p1 read {:?}", out.read_values[0])
            }
            Some((p, why)) => println!("  {label}: p{} aborted ({why})", p + 1),
        }
    }
    println!("\nPaper: \"Schedule that is accepted by lock-based and polymorphic");
    println!("transactions but not by monomorphic transactions.\" — reproduced.");
}
