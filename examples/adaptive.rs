//! Adaptive polymorphism demo: a feedback-driven advisor learns each
//! transaction class's best semantics and contention management from
//! live telemetry.
//!
//! ```text
//! cargo run --release --example adaptive
//! ```
//!
//! Three classes run against one shared [`TxList`]-backed set:
//!
//! * `lookups`   — long read-only traversals,
//! * `updates`   — short writing transactions,
//! * `summaries` — whole-structure read-only aggregates.
//!
//! The advisor starts everything under the caller's requested semantics,
//! then reclassifies per epoch: traversal-shaped read-only classes move
//! to snapshot semantics (no validation at all), writing classes stay
//! revocable (the hard safety rule), and a mid-run write burst shifts
//! the contention-manager policy rather than the semantics.

use std::sync::Arc;

use polytm::{ClassId, Semantics, SemanticsSource, Stm, StmConfig, TxParams};
use polytm_adaptive::{Advisor, AdvisorConfig};
use polytm_structures::TxList;

const LOOKUPS: ClassId = ClassId(0);
const UPDATES: ClassId = ClassId(1);
const SUMMARIES: ClassId = ClassId(2);

fn describe(advisor: &Advisor, label: &str) {
    println!("after {label}: {} epochs closed", advisor.epochs());
    for (name, class) in [("lookups", LOOKUPS), ("updates", UPDATES), ("summaries", SUMMARIES)] {
        let totals = advisor.totals(class);
        match advisor.policy(class) {
            Some(p) => println!(
                "  {name:<9} -> {:?} + {:?} (escalate after {} retries; \
                 {} runs, avg reads {}, wrote: {})",
                p.semantics,
                p.cm,
                p.escalate_after,
                totals.runs,
                totals.avg_reads(),
                advisor.has_written(class),
            ),
            None => println!("  {name:<9} -> (no data-backed policy yet)"),
        }
    }
}

fn main() {
    // A small epoch so the demo reclassifies quickly.
    let advisor = Arc::new(Advisor::new(AdvisorConfig {
        epoch_runs: 256,
        min_epoch_runs: 8,
        ..AdvisorConfig::default()
    }));
    let stm = Arc::new(Stm::with_advisor(StmConfig::default(), Arc::clone(&advisor) as _));
    let list = TxList::with_op_params(
        Arc::clone(&stm),
        TxParams::new(Semantics::elastic()).with_class(LOOKUPS),
        TxParams::new(Semantics::elastic()).with_class(UPDATES),
        TxParams::new(Semantics::Snapshot).with_class(SUMMARIES),
    );
    for k in 0..128 {
        list.insert(k);
    }
    advisor.close_epoch(); // settle the prefill epoch

    // Phase 1: read-heavy cruising.
    std::thread::scope(|s| {
        for t in 0..2 {
            let list = list.clone();
            s.spawn(move || {
                for i in 0..2_000i64 {
                    std::hint::black_box(list.contains((i * 7 + t) % 128));
                    if i % 20 == 0 {
                        let k = (i + t) % 128;
                        list.remove(k);
                        list.insert(k);
                    }
                    if i % 50 == 0 {
                        std::hint::black_box(list.range_count_snapshot(0, 128));
                    }
                }
            });
        }
    });
    describe(&advisor, "the read-heavy phase");

    // Phase 2: a write burst on the same classes.
    std::thread::scope(|s| {
        for t in 0..2 {
            let list = list.clone();
            s.spawn(move || {
                for i in 0..2_000i64 {
                    let k = (i * 13 + t) % 128;
                    if i % 2 == 0 {
                        list.remove(k);
                    } else {
                        list.insert(k);
                    }
                    if i % 10 == 0 {
                        std::hint::black_box(list.contains(k));
                    }
                }
            });
        }
    });
    describe(&advisor, "the write burst");

    // The safety rule, live: the advisor never plans Snapshot for the
    // writing class, at any retry count below escalation.
    let plan = advisor.plan(UPDATES, 0, Semantics::elastic());
    assert_ne!(plan.semantics, Semantics::Snapshot, "writing class must stay revocable");
    // And the read-only traversal class is served snapshot semantics.
    let plan = advisor.plan(LOOKUPS, 0, Semantics::elastic());
    println!("lookups now planned as {:?}", plan.semantics);

    let stats = stm.stats();
    println!(
        "total: {} commits, {} aborts (lock/validation/cut/capacity: {:?})",
        stats.commits,
        stats.aborts(),
        stats.aborts_by_cause().map(|(_, n)| n),
    );
}
