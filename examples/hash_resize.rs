//! The paper's §1 motivating scenario: a hash table that *can* resize
//! because its operations are transactions.
//!
//! Four writer threads insert keys while the table repeatedly doubles
//! itself; elastic readers keep probing throughout. No key is ever lost,
//! no reader ever observes a half-resized table — contrast with
//! Michael's lock-free table (fixed buckets, degrades into long chains)
//! which this example also runs for comparison.
//!
//! ```text
//! cargo run --release --example hash_resize
//! ```

use std::sync::Arc;
use std::time::Instant;

use transaction_polymorphism::lockfree::MichaelHashSet;
use transaction_polymorphism::prelude::*;

const KEYS_PER_THREAD: u64 = 5_000;
const THREADS: u64 = 4;

fn main() {
    let stm = Arc::new(Stm::new());
    let table = TxHashSet::new(Arc::clone(&stm), 4, 8);

    println!("transactional table: starting at {} buckets", table.buckets());
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let table = table.clone();
            s.spawn(move || {
                for i in 0..KEYS_PER_THREAD {
                    assert!(table.insert(t * 1_000_000 + i));
                }
            });
        }
        // A reader thread probes while resizes are happening.
        let reader = table.clone();
        s.spawn(move || {
            let mut hits = 0u64;
            for round in 0..50 {
                for i in 0..100 {
                    if reader.contains(i) {
                        hits += 1;
                    }
                }
                let _ = round;
            }
            println!("reader finished with {hits} hits (no torn views, no panics)");
        });
    });
    let tx_time = t0.elapsed();
    println!(
        "transactional table: {} keys in {} buckets after {:?} (avg load {:.1})",
        table.len(),
        table.buckets(),
        tx_time,
        table.len() as f64 / table.buckets() as f64
    );

    // The lock-free comparator: correct and fast per operation, but its 4
    // buckets can never grow, so chains are ~N/4 long by the end.
    let fixed = MichaelHashSet::new(4);
    let t1 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let fixed = &fixed;
            s.spawn(move || {
                for i in 0..KEYS_PER_THREAD {
                    assert!(fixed.insert(t * 1_000_000 + i));
                }
            });
        }
    });
    let fixed_time = t1.elapsed();
    println!(
        "michael (fixed) table: {} keys stuck in {} buckets after {:?} (avg load {:.0})",
        fixed.len(),
        fixed.buckets(),
        fixed_time,
        fixed.len() as f64 / fixed.buckets() as f64
    );
    println!(
        "\nthe paper's point: the transactional table supports the resize as just\n\
         another (monomorphic) transaction, while per-key operations stay weak;\n\
         the highly-tuned lock-free structure cannot express it at all."
    );
    let stats = stm.stats();
    println!(
        "STM stats: {} commits, {} aborts ({:.4} aborts/commit), {} elastic cuts",
        stats.commits,
        stats.aborts(),
        stats.abort_ratio(),
        stats.elastic_cuts
    );
}
