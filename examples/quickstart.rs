//! Quickstart: the paper's `start(p)` in ten lines, then each semantics
//! in action.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use transaction_polymorphism::prelude::*;

fn main() {
    let stm = Arc::new(Stm::new());
    let x = stm.new_tvar(0i64);
    let y = stm.new_tvar(100i64);

    // start(def): the monomorphic default — fully opaque.
    let moved = stm.run(TxParams::default(), |tx| {
        let a = x.read(tx)?;
        let b = y.read(tx)?;
        x.write(tx, a + 10)?;
        y.write(tx, b - 10)?;
        Ok(a + b)
    });
    println!(
        "opaque transfer saw total {moved}; x={} y={}",
        x.load_committed(),
        y.load_committed()
    );

    // start(weak): the elastic semantics of the paper's Figure 1 —
    // traversals tolerate updates behind their sliding window.
    let sum = stm.run(TxParams::weak(), |tx| Ok(x.read(tx)? + y.read(tx)?));
    println!("weak (elastic) read chain: {sum}");

    // Snapshot: read-only, never aborts, reads a consistent past.
    let snap = stm.run(TxParams::new(Semantics::Snapshot), |tx| Ok((x.read(tx)?, y.read(tx)?)));
    println!("snapshot view: {snap:?}");

    // Irrevocable: guaranteed to commit exactly once — safe for side
    // effects.
    stm.run(TxParams::new(Semantics::Irrevocable), |tx| {
        let total = x.read(tx)? + y.read(tx)?;
        println!("irrevocable audit (runs exactly once): total = {total}");
        Ok(())
    });

    // The transactional library pitch: compose structures into new
    // atomic operations with zero extra synchronization code.
    let active = TxList::new(Arc::clone(&stm));
    let archived = TxList::new(Arc::clone(&stm));
    active.insert(7);
    stm.run(TxParams::default(), |tx| {
        if active.remove_in(tx, 7)? {
            archived.insert_in(tx, 7)?;
        }
        Ok(())
    });
    println!("atomic move: active={:?} archived={:?}", active.to_vec(), archived.to_vec());

    let stats = stm.stats();
    println!(
        "stats: {} commits, {} aborts, {} elastic cuts",
        stats.commits,
        stats.aborts(),
        stats.elastic_cuts
    );
}
