//! `polytm-server` demo: the whole durability-plus-network stack in
//! one process. A durable KV store takes some writes, "reboots"
//! (recovery replays the log), and then a TCP server fronts the
//! *recovered* store on a loopback socket while a wire client runs
//! every opcode against it — reads see the pre-reboot data, writes
//! coalesce into shared commits, and the server's own counters show
//! the batching at work.
//!
//! ```text
//! cargo run --release --example server
//! ```

use std::sync::Arc;

use polytm_durable::{DurableKv, DurableKvConfig, FaultFs, Storage};
use polytm_server::{Client, Request, Response, Server, ServerConfig, TxnOp, WriteOp};

fn main() {
    // Phase 1: a durable store over a seeded in-memory device takes a
    // few acknowledged writes, then the process "reboots".
    let fs = Arc::new(FaultFs::new(0x5EED));
    let config = DurableKvConfig::default();
    {
        let store =
            DurableKv::open(Arc::clone(&fs) as Arc<dyn Storage>, config).expect("fresh open");
        for key in 0..8u64 {
            store.put(key, polytm_kv::Value::from_u64(1_000 + key)).expect("durable put");
        }
        println!("== phase 1: seeded {} durable records, rebooting ==", store.len());
    }

    // Phase 2: recovery replays the committed log, and the server
    // fronts the recovered store on an ephemeral loopback port.
    let store =
        Arc::new(DurableKv::open(Arc::clone(&fs) as Arc<dyn Storage>, config).expect("recovery"));
    println!("== phase 2: recovered {} records, serving ==", store.len());
    let handle = Server::spawn(
        Arc::clone(&store) as Arc<dyn polytm_server::ServerStore>,
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("spawn server");
    println!("listening on {}", handle.local_addr());

    // Phase 3: a wire client exercises every opcode. The GET must see
    // a value written before the reboot — that is the durability story
    // crossing the network boundary.
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let recovered = client.get(3).expect("GET").expect("key 3 survived the reboot");
    println!(
        "GET 3 -> {:?} (written before the reboot)",
        u64::from_le_bytes(recovered.as_slice().try_into().expect("u64 value"),)
    );

    let existed = client.put(100, b"fresh").expect("PUT");
    println!("PUT 100 -> existed={existed}");
    let swapped = client.cas(100, Some(b"fresh"), b"swapped").expect("CAS");
    println!("CAS 100 (expect \"fresh\") -> swapped={swapped}");

    // MULTI: three writes in one atomic commit.
    match client
        .call(&Request::Multi {
            ops: vec![
                WriteOp::Put { key: 101, value: b"a".to_vec() },
                WriteOp::Put { key: 102, value: b"b".to_vec() },
                WriteOp::Delete { key: 0 },
            ],
        })
        .expect("MULTI")
    {
        Response::Applied { ops } => println!("MULTI -> applied {ops} ops atomically"),
        other => panic!("unexpected MULTI reply: {other:?}"),
    }

    // TXN: a read-modify-write in one commit; the GET reads the
    // transaction's own snapshot.
    match client
        .call(&Request::Txn {
            ops: vec![
                TxnOp::Get { key: 101 },
                TxnOp::Put { key: 101, value: b"updated".to_vec() },
                TxnOp::Get { key: 101 },
            ],
        })
        .expect("TXN")
    {
        Response::TxnResults { gets } => println!(
            "TXN -> read {:?} then (after its own write) {:?}",
            gets[0].as_deref().map(String::from_utf8_lossy),
            gets[1].as_deref().map(String::from_utf8_lossy),
        ),
        other => panic!("unexpected TXN reply: {other:?}"),
    }

    // SCAN: one consistent snapshot of [100, 110).
    let (entries, truncated) = client.scan(100, 110, 0).expect("SCAN");
    println!("SCAN [100,110) -> {} entries, truncated={truncated}", entries.len());
    for (key, value) in &entries {
        println!("  {key} = {:?}", String::from_utf8_lossy(value));
    }
    assert_eq!(entries.len(), 3, "keys 100..=102 live; key 0 was deleted by the MULTI");

    let stats = handle.stats();
    println!(
        "server counters: {} requests, {} coalesced commits carrying {} writes \
         ({:.2} ops/commit)",
        stats.requests.load(std::sync::atomic::Ordering::Relaxed),
        stats.batches.load(std::sync::atomic::Ordering::Relaxed),
        stats.batched_ops.load(std::sync::atomic::Ordering::Relaxed),
        stats.batch_ops_per_commit(),
    );
    handle.shutdown();
    println!("server drained and stopped");
}
