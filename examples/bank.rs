//! A mixed-semantics "bank": the paper's claim that polymorphism gives
//! each transaction the cheapest sufficient guarantee, inside one TM.
//!
//! * transfers   — `start(def)`: genuine read-modify-write atomicity;
//! * audits      — `start(snapshot)`: consistent totals that never abort;
//! * statements  — `start(irrevocable)`: run exactly once (they "print");
//! * search      — `start(weak)`: find an account with enough balance,
//!   tolerating concurrent transfers behind the scan.
//!
//! ```text
//! cargo run --release --example bank
//! ```

use std::sync::Arc;

use transaction_polymorphism::prelude::*;

const ACCOUNTS: usize = 64;
const INITIAL: i64 = 1_000;

fn main() {
    let stm = Arc::new(Stm::new());
    let accounts: Arc<Vec<_>> = Arc::new((0..ACCOUNTS).map(|_| stm.new_tvar(INITIAL)).collect());

    std::thread::scope(|s| {
        // Transfer workers (opaque).
        for tid in 0..3u64 {
            let stm = Arc::clone(&stm);
            let accounts = Arc::clone(&accounts);
            s.spawn(move || {
                let mut seed = 0x5eed ^ tid;
                for _ in 0..3_000 {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (seed >> 33) as usize % ACCOUNTS;
                    let to = (seed >> 13) as usize % ACCOUNTS;
                    let amount = (seed % 50) as i64;
                    if from == to {
                        continue;
                    }
                    stm.run(TxParams::default(), |tx| {
                        let a = accounts[from].read(tx)?;
                        if a < amount {
                            return Ok(false); // insufficient funds: no-op
                        }
                        let b = accounts[to].read(tx)?;
                        accounts[from].write(tx, a - amount)?;
                        accounts[to].write(tx, b + amount)?;
                        Ok(true)
                    });
                }
            });
        }

        // Auditor (snapshot): total must be exactly constant in every view.
        {
            let stm = Arc::clone(&stm);
            let accounts = Arc::clone(&accounts);
            s.spawn(move || {
                for i in 0..500 {
                    let total = stm.run(TxParams::new(Semantics::Snapshot), |tx| {
                        let mut sum = 0i64;
                        for a in accounts.iter() {
                            sum += a.read(tx)?;
                        }
                        Ok(sum)
                    });
                    assert_eq!(
                        total,
                        (ACCOUNTS as i64) * INITIAL,
                        "audit {i}: money created or destroyed!"
                    );
                }
                println!(
                    "auditor: 500 snapshot audits, total always {}",
                    ACCOUNTS as i64 * INITIAL
                );
            });
        }

        // Rich-account search (weak/elastic): a traversal that doesn't
        // need a globally atomic view — any account that *was* rich at
        // some point during the scan is a fine answer.
        {
            let stm = Arc::clone(&stm);
            let accounts = Arc::clone(&accounts);
            s.spawn(move || {
                let mut found = 0u32;
                for _ in 0..500 {
                    let rich = stm.run(TxParams::weak(), |tx| {
                        for (i, a) in accounts.iter().enumerate() {
                            if a.read(tx)? >= INITIAL {
                                return Ok(Some(i));
                            }
                        }
                        Ok(None)
                    });
                    if rich.is_some() {
                        found += 1;
                    }
                }
                println!("searcher: {found}/500 weak scans found a rich account");
            });
        }
    });

    // End-of-day statement: irrevocable, so the side effect (printing)
    // happens exactly once even under contention.
    stm.run(TxParams::new(Semantics::Irrevocable), |tx| {
        let mut total = 0i64;
        let mut min = i64::MAX;
        let mut max = i64::MIN;
        for a in accounts.iter() {
            let v = a.read(tx)?;
            total += v;
            min = min.min(v);
            max = max.max(v);
        }
        println!("statement: total={total} min={min} max={max}");
        Ok(())
    });

    let stats = stm.stats();
    println!(
        "stats: commits={} aborts={} (ratio {:.4}) cuts={} extensions={} irrevocable={}",
        stats.commits,
        stats.aborts(),
        stats.abort_ratio(),
        stats.elastic_cuts,
        stats.extensions,
        stats.irrevocable_commits
    );
}
