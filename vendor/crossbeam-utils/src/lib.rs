//! Offline stand-in for the `crossbeam-utils` items this workspace uses.
//!
//! Only [`CachePadded`] is needed: a wrapper that aligns (and therefore
//! pads) its contents to a cache-line boundary so that adjacent atomic
//! counters do not false-share. 128 bytes covers the common cases
//! (x86_64 adjacent-line prefetching, apple-silicon 128-byte lines).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to (at least) a cache-line boundary.
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in cache-line padding.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded").field("value", &self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_and_transparent() {
        let c = CachePadded::new(7u64);
        assert_eq!(*c, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert_eq!(c.into_inner(), 7);
    }
}
