//! Offline stand-in for the `crossbeam-epoch` API surface this workspace
//! uses: tagged atomic pointers (`Atomic`/`Owned`/`Shared`) plus
//! pin-guarded deferred destruction.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the epoch API it needs. The reclamation scheme is simpler
//! than crossbeam's three-epoch algorithm but preserves its safety
//! contract:
//!
//! * [`pin`] increments a global pin count; dropping the [`Guard`]
//!   decrements it.
//! * [`Guard::defer_destroy`] queues the node on a global garbage list.
//! * Garbage is freed only when the pin count is observed to drop to
//!   **zero**. A node is queued only after being unlinked from its
//!   structure, so any guard pinned *after* the unlink can no longer
//!   reach it; the only guards that may still hold a reference are ones
//!   pinned before the unlink — and at pin-count zero no such guard
//!   exists. Hence nothing is freed while a reference can still be live.
//!
//! The trade-off is latency, not safety: under continuously overlapping
//! pins garbage collects later than crossbeam would. Pins in this
//! workspace are short (one data-structure operation), so quiescent
//! points are frequent.
//!
//! Pointer tags live in the low bits freed by the pointee's alignment,
//! exactly like crossbeam (`Shared::tag`/`with_tag`).

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------
// Global pin count + garbage list
// ---------------------------------------------------------------------

static PINS: AtomicUsize = AtomicUsize::new(0);
static GARBAGE_LEN: AtomicUsize = AtomicUsize::new(0);
static GARBAGE: Mutex<Vec<Deferred>> = Mutex::new(Vec::new());

struct Deferred {
    data: usize,
    destroy: unsafe fn(usize),
}

// SAFETY: a Deferred is only ever executed once, by whichever thread
// collects it, after the pointee became unreachable; the destructor
// itself is `Box::from_raw` + drop of a heap allocation created on some
// other thread, which is sound for the `Send`-compatible node types the
// callers defer (the `defer_destroy` caller vouches for this, as with
// crossbeam's own unsafe contract).
unsafe impl Send for Deferred {}

fn collect_if_quiescent() {
    if GARBAGE_LEN.load(Ordering::Acquire) == 0 {
        return;
    }
    let drained: Vec<Deferred> = {
        // The pin count must be re-checked *while holding the garbage
        // lock*: entries present now were deferred (hence unlinked)
        // before this zero-pin observation, so neither the threads that
        // were pinned then (all gone — the count is zero) nor threads
        // that pin later (the node was already unreachable) can hold a
        // reference. Checking before taking the lock would allow a
        // deferral to slip in between the check and the drain and be
        // freed while its unlink-era readers are still pinned.
        let mut g = GARBAGE.lock().unwrap_or_else(|p| p.into_inner());
        std::sync::atomic::fence(Ordering::SeqCst);
        if PINS.load(Ordering::SeqCst) != 0 {
            return;
        }
        GARBAGE_LEN.store(0, Ordering::Release);
        std::mem::take(&mut *g)
    };
    for d in drained {
        // SAFETY: deferred (thus unlinked) before the zero-pin
        // observation above, so no guard can still reference the node.
        unsafe { (d.destroy)(d.data) };
    }
}

// ---------------------------------------------------------------------
// Guard
// ---------------------------------------------------------------------

/// A pinned participant. While any `Guard` is live, deferred garbage is
/// retained.
pub struct Guard {
    pinned: bool,
}

impl Guard {
    /// Defers destruction of the pointee until no pinned guard can still
    /// hold a reference to it.
    ///
    /// # Safety
    /// The caller must guarantee `ptr` has been made unreachable for
    /// participants that pin afterwards, and that it is never destroyed
    /// twice.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        let data = ptr.raw_addr();
        debug_assert!(data != 0, "defer_destroy of null");
        unsafe fn destroy<T>(data: usize) {
            drop(unsafe { Box::from_raw(data as *mut T) });
        }
        if !self.pinned {
            // The unprotected guard promises exclusive access: destroy
            // eagerly, matching crossbeam's unprotected() behaviour.
            unsafe { destroy::<T>(data) };
            return;
        }
        {
            let mut g = GARBAGE.lock().unwrap_or_else(|p| p.into_inner());
            g.push(Deferred { data, destroy: destroy::<T> });
            GARBAGE_LEN.store(g.len(), Ordering::Release);
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.pinned && PINS.fetch_sub(1, Ordering::SeqCst) == 1 {
            collect_if_quiescent();
        }
    }
}

/// Pins the current thread; while the returned [`Guard`] lives, shared
/// pointers loaded through it remain valid.
pub fn pin() -> Guard {
    // SeqCst (plus the fence in the collector) totally orders pin
    // events against zero-pin observations: a pin ordered before the
    // observation contributes to the count; one ordered after can no
    // longer reach any node drained by that observation.
    PINS.fetch_add(1, Ordering::SeqCst);
    std::sync::atomic::fence(Ordering::SeqCst);
    Guard { pinned: true }
}

static UNPROTECTED: Guard = Guard { pinned: false };

/// Returns a dummy guard that does not pin.
///
/// # Safety
/// Usable only when the caller has exclusive access to the data
/// structure (e.g. inside `Drop` through `&mut self`), as with
/// crossbeam's `unprotected()`.
pub unsafe fn unprotected() -> &'static Guard {
    &UNPROTECTED
}

// ---------------------------------------------------------------------
// Tag helpers
// ---------------------------------------------------------------------

#[inline]
fn low_bits<T>() -> usize {
    (1 << std::mem::align_of::<T>().trailing_zeros()) - 1
}

#[inline]
fn compose_tag<T>(data: usize, tag: usize) -> usize {
    (data & !low_bits::<T>()) | (tag & low_bits::<T>())
}

#[inline]
fn decompose_tag<T>(data: usize) -> (usize, usize) {
    (data & !low_bits::<T>(), data & low_bits::<T>())
}

// ---------------------------------------------------------------------
// Pointer trait (Owned or Shared as CAS "new" values)
// ---------------------------------------------------------------------

/// Types that can be stored into an [`Atomic`]: [`Owned`] and
/// [`Shared`].
pub trait Pointer<T> {
    /// Consumes `self`, returning the composed pointer-with-tag word.
    fn into_usize(self) -> usize;
    /// Rebuilds the pointer type from a composed word.
    ///
    /// # Safety
    /// `data` must have come from `into_usize` of the same impl, exactly
    /// once.
    unsafe fn from_usize(data: usize) -> Self;
}

// ---------------------------------------------------------------------
// Owned
// ---------------------------------------------------------------------

/// An owned heap allocation, like `Box<T>`, with room for a tag.
pub struct Owned<T> {
    data: usize,
    _marker: PhantomData<Box<T>>,
}

impl<T> Owned<T> {
    /// Allocates `value` on the heap.
    pub fn new(value: T) -> Self {
        let ptr = Box::into_raw(Box::new(value)) as usize;
        debug_assert_eq!(ptr & low_bits::<T>(), 0);
        Self { data: ptr, _marker: PhantomData }
    }

    /// Converts into a [`Shared`] tied to `_guard`'s lifetime, releasing
    /// ownership to the data structure.
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        Shared { data: self.into_usize(), _marker: PhantomData }
    }

    /// Returns the same allocation with the tag set to `tag`.
    pub fn with_tag(self, tag: usize) -> Self {
        let data = self.into_usize();
        Self { data: compose_tag::<T>(data, tag), _marker: PhantomData }
    }
}

impl<T> Pointer<T> for Owned<T> {
    fn into_usize(self) -> usize {
        let data = self.data;
        std::mem::forget(self);
        data
    }

    unsafe fn from_usize(data: usize) -> Self {
        Self { data, _marker: PhantomData }
    }
}

impl<T> Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        let (ptr, _) = decompose_tag::<T>(self.data);
        unsafe { &*(ptr as *const T) }
    }
}

impl<T> DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        let (ptr, _) = decompose_tag::<T>(self.data);
        unsafe { &mut *(ptr as *mut T) }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        let (ptr, _) = decompose_tag::<T>(self.data);
        drop(unsafe { Box::from_raw(ptr as *mut T) });
    }
}

impl<T: fmt::Debug> fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Owned").field(&**self).finish()
    }
}

// ---------------------------------------------------------------------
// Shared
// ---------------------------------------------------------------------

/// A tagged pointer loaded under a [`Guard`]; valid for `'g`.
pub struct Shared<'g, T> {
    data: usize,
    _marker: PhantomData<(&'g (), *const T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer (tag 0).
    pub fn null() -> Self {
        Self { data: 0, _marker: PhantomData }
    }

    /// Is the pointer part null (ignoring the tag)?
    pub fn is_null(&self) -> bool {
        let (ptr, _) = decompose_tag::<T>(self.data);
        ptr == 0
    }

    /// The tag carried in the low bits.
    pub fn tag(&self) -> usize {
        let (_, tag) = decompose_tag::<T>(self.data);
        tag
    }

    /// The same pointer with the tag replaced by `tag`.
    pub fn with_tag(&self, tag: usize) -> Self {
        Self { data: compose_tag::<T>(self.data, tag), _marker: PhantomData }
    }

    /// Untagged raw address (internal).
    fn raw_addr(&self) -> usize {
        let (ptr, _) = decompose_tag::<T>(self.data);
        ptr
    }

    /// Dereferences, ignoring the tag.
    ///
    /// # Safety
    /// Pointer must be non-null and the pointee alive for `'g`.
    pub unsafe fn deref(&self) -> &'g T {
        unsafe { &*(self.raw_addr() as *const T) }
    }

    /// `Some(&T)` unless null.
    ///
    /// # Safety
    /// If non-null, the pointee must be alive for `'g`.
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        let ptr = self.raw_addr();
        if ptr == 0 {
            None
        } else {
            Some(unsafe { &*(ptr as *const T) })
        }
    }

    /// Takes back exclusive ownership of the allocation.
    ///
    /// # Safety
    /// Caller must have exclusive access and the pointer must be
    /// non-null.
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.is_null(), "into_owned of null");
        Owned { data: self.raw_addr(), _marker: PhantomData }
    }
}

impl<T> fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (ptr, tag) = decompose_tag::<T>(self.data);
        f.debug_struct("Shared").field("ptr", &(ptr as *const T)).field("tag", &tag).finish()
    }
}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl<T> Eq for Shared<'_, T> {}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_usize(self) -> usize {
        self.data
    }

    unsafe fn from_usize(data: usize) -> Self {
        Self { data, _marker: PhantomData }
    }
}

// ---------------------------------------------------------------------
// Atomic
// ---------------------------------------------------------------------

/// An atomic tagged pointer to `T`.
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// The null pointer.
    pub fn null() -> Self {
        Self { data: AtomicUsize::new(0), _marker: PhantomData }
    }

    /// Allocates `value` and points at it.
    pub fn new(value: T) -> Self {
        Self::from(Owned::new(value))
    }

    /// Loads the pointer under `\_guard`.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared { data: self.data.load(ord), _marker: PhantomData }
    }

    /// Stores `new` (an [`Owned`] or [`Shared`]).
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.data.store(new.into_usize(), ord);
    }

    /// Compare-and-exchange: replaces `current` with `new` atomically.
    /// On failure, returns the observed value and gives `new` back.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_data = new.into_usize();
        match self.data.compare_exchange(current.into_usize(), new_data, success, failure) {
            Ok(_) => Ok(Shared { data: new_data, _marker: PhantomData }),
            Err(observed) => Err(CompareExchangeError {
                current: Shared { data: observed, _marker: PhantomData },
                // SAFETY: `new_data` came from `new.into_usize()` above
                // and the store did not happen, so ownership returns to
                // the caller exactly once.
                new: unsafe { P::from_usize(new_data) },
            }),
        }
    }

    /// Takes the pointer out with exclusive access.
    ///
    /// # Safety
    /// Requires exclusive access to the atomic (e.g. during drop).
    pub unsafe fn into_owned(self) -> Owned<T> {
        let data = self.data.into_inner();
        Owned { data: decompose_tag::<T>(data).0, _marker: PhantomData }
    }
}

impl<T> From<Owned<T>> for Atomic<T> {
    fn from(owned: Owned<T>) -> Self {
        Self { data: AtomicUsize::new(owned.into_usize()), _marker: PhantomData }
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let data = self.data.load(Ordering::Relaxed);
        let (ptr, tag) = decompose_tag::<T>(data);
        f.debug_struct("Atomic").field("ptr", &(ptr as *const T)).field("tag", &tag).finish()
    }
}

/// Error of [`Atomic::compare_exchange`]: the observed pointer plus the
/// rejected new value, returned so owned insertions can be retried.
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value actually observed in the atomic.
    pub current: Shared<'g, T>,
    /// The proposed value, handed back to the caller.
    pub new: P,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_roundtrip_and_tagging() {
        let o = Owned::new(41u64);
        assert_eq!(*o, 41);
        let o = o.with_tag(1);
        let guard = pin();
        let s = o.into_shared(&guard);
        assert_eq!(s.tag(), 1);
        assert_eq!(unsafe { *s.deref() }, 41);
        let back = unsafe { s.with_tag(0).into_owned() };
        assert_eq!(*back, 41);
    }

    #[test]
    fn atomic_cas_success_and_failure() {
        let a: Atomic<u64> = Atomic::null();
        let guard = pin();
        let first = Owned::new(1u64);
        assert!(a
            .compare_exchange(Shared::null(), first, Ordering::AcqRel, Ordering::Acquire, &guard)
            .is_ok());
        let cur = a.load(Ordering::Acquire, &guard);
        // A second CAS expecting null must fail and hand the Owned back.
        let second = Owned::new(2u64);
        match a.compare_exchange(
            Shared::null(),
            second,
            Ordering::AcqRel,
            Ordering::Acquire,
            &guard,
        ) {
            Ok(_) => panic!("CAS must fail"),
            Err(e) => {
                assert_eq!(e.current, cur);
                assert_eq!(*e.new, 2);
            }
        }
        drop(guard);
        unsafe { drop(a.into_owned()) };
    }

    #[test]
    fn deferred_destruction_waits_for_quiescence() {
        use std::sync::atomic::AtomicBool;
        static DROPPED: AtomicBool = AtomicBool::new(false);
        struct Tattle;
        impl Drop for Tattle {
            fn drop(&mut self) {
                DROPPED.store(true, Ordering::SeqCst);
            }
        }
        DROPPED.store(false, Ordering::SeqCst);
        let outer = pin();
        {
            let inner = pin();
            let node = Owned::new(Tattle).into_shared(&inner);
            unsafe { inner.defer_destroy(node) };
            drop(inner);
            // outer still pinned: must not have dropped yet.
            assert!(!DROPPED.load(Ordering::SeqCst));
        }
        drop(outer);
        // Quiescent now (unless a parallel test holds a pin; then the
        // next quiescent point frees it — force one).
        let flush = pin();
        drop(flush);
        // Allow for concurrently-running tests holding pins briefly.
        for _ in 0..1000 {
            if DROPPED.load(Ordering::SeqCst) {
                return;
            }
            std::thread::yield_now();
            drop(pin());
        }
        assert!(DROPPED.load(Ordering::SeqCst));
    }
}
