//! Offline stand-in for the `parking_lot` API surface this workspace
//! uses, implemented over `std::sync` primitives.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of lock types it needs. Semantics match
//! `parking_lot` where they matter to callers:
//!
//! * `lock()` / `read()` / `write()` return guards directly (no
//!   `Result`); poisoning is erased by taking the inner guard from a
//!   poisoned lock as well (a panic while holding a `parking_lot` lock
//!   simply releases it, so this matches observable behaviour).
//! * `try_lock()` returns `Option<MutexGuard>`.
//!
//! Fairness, inline-word sizing, and the parking-lot algorithm itself
//! are not reproduced; none of the workspace code depends on them.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// Mutual exclusion lock (API-compatible subset of `parking_lot::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub fn new(value: T) -> Self {
        Self { inner: StdMutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(|p| p.into_inner()) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard { inner: p.into_inner() }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Reader-writer lock (API-compatible subset of `parking_lot::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock wrapping `value`.
    pub fn new(value: T) -> Self {
        Self { inner: StdRwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|p| p.into_inner()) }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|p| p.into_inner()) }
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(RwLockReadGuard { inner: p.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(RwLockWriteGuard { inner: p.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: StdRwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: StdRwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!((*r1, *r2), (6, 6));
        assert!(l.try_write().is_none());
        drop((r1, r2));
        assert!(l.try_write().is_some());
    }
}
