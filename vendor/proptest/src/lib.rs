//! Offline stand-in for the `proptest` API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a miniature property-testing framework with the same caller
//! grammar: the [`proptest!`] macro, [`Strategy`] combinators
//! (`prop_map`, tuples, ranges, [`Just`], [`prop_oneof!`],
//! `prop::collection::vec`, `prop::bool::ANY`, [`any`]), and the
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from real proptest, deliberate for an offline shim:
//!
//! * **No shrinking.** A failing case reports its seed and case index;
//!   re-running is deterministic (seeds derive from the test name), so
//!   failures reproduce exactly.
//! * **Case counts are env-gated.** `PROPTEST_CASES` caps the per-test
//!   case count (CI sets a small cap for wall-clock bounds; local runs
//!   keep each test's written count). `PROPTEST_SEED` perturbs the seed
//!   derivation for exploratory soak runs.

use std::fmt;
use std::ops::Range;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic splitmix64 generator used to produce test inputs.
pub struct TestRng(u64);

impl TestRng {
    /// New generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------
// Errors & config
// ---------------------------------------------------------------------

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed; the run panics with this message.
    Fail(String),
    /// The inputs were rejected by [`prop_assume!`]; the case is retried
    /// with fresh inputs.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config requiring `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<V> {
    fn dyn_generate(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.dyn_generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone + fmt::Debug>(pub V);

impl<V: Clone + fmt::Debug> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
    O: fmt::Debug,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`prop_oneof!`] adapter: picks one of the inner strategies uniformly.
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V: fmt::Debug> Union<V> {
    /// A union over the given (non-empty) alternatives.
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs at least one alternative");
        Self(alternatives)
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng), self.3.generate(rng))
    }
}

/// Types with a canonical "generate anything" strategy (see [`any`]).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: any representable value.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Namespaced strategy constructors (`prop::collection::vec`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Inclusive-exclusive size bound accepted by [`fn@vec`].
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            start: usize,
            end: usize,
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self { start: r.start, end: r.end }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { start: n, end: n + 1 }
            }
        }

        /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors whose elements come from `element` and
        /// whose length is drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// Strategy type of [`ANY`].
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        /// Either boolean, uniformly.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// The case loop behind [`proptest!`]. Not part of the public proptest
/// API; the macro expansion calls it.
pub mod test_runner {
    use super::{ProptestConfig, TestCaseError, TestRng};

    /// Maximum rejected-to-required ratio before the runner gives up.
    const MAX_REJECT_FACTOR: u64 = 32;

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Effective case count: the configured count, capped by the
    /// `PROPTEST_CASES` environment variable when set (CI sets a small
    /// cap; local runs keep the written counts).
    pub fn effective_cases(cfg: &ProptestConfig) -> u32 {
        match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse::<u32>().ok()) {
            Some(cap) => cfg.cases.min(cap.max(1)),
            None => cfg.cases,
        }
    }

    /// Runs `case` until `cfg`'s case count passes (or a case fails,
    /// which panics). Seeds derive from the test name, so runs are
    /// deterministic; set `PROPTEST_SEED` to perturb them.
    pub fn run<F>(cfg: ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let cases = effective_cases(&cfg) as u64;
        let extra: u64 =
            std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
        let base = fnv1a(name) ^ extra.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut passed = 0u64;
        let mut rejected = 0u64;
        let mut attempt = 0u64;
        while passed < cases {
            let seed = base.wrapping_add(attempt.wrapping_mul(0xA076_1D64_78BD_642F));
            attempt += 1;
            let mut rng = TestRng::new(seed);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > cases * MAX_REJECT_FACTOR + 64 {
                        panic!(
                            "proptest '{name}': too many rejected cases \
                             ({rejected} rejects for {passed}/{cases} passes)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed at case {attempt} (seed {seed:#018x}): {msg}");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($argname:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run($cfg, stringify!($name), |rng| {
                $(let $argname = $crate::Strategy::generate(&($strat), rng);)+
                let case = move || -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                };
                case()
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// One-of strategy: generates from one of the alternatives, uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a proptest case, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Rejects the current case (retried with fresh inputs) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// The imports test files are expected to glob.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner;
    pub use crate::{any, Any, Arbitrary, BoxedStrategy, Just, Map, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(42);
        for _ in 0..1000 {
            let v = Strategy::generate(&(-100i64..100), &mut rng);
            assert!((-100..100).contains(&v));
            let u = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn oneof_covers_all_alternatives() {
        let strat = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = TestRng::new(7);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(strat.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let strat = prop::collection::vec(0u64..10, 2..5);
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0u64..50, pair in (0usize..4, any::<i64>())) {
            prop_assert!(x < 50);
            prop_assert_eq!(pair.0, pair.0);
            prop_assume!(x != 3);
            prop_assert!(x != 3, "assume must have filtered {}", x);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            test_runner::run(ProptestConfig::with_cases(10), "det", |rng| {
                out.push(rng.next_u64());
                Ok(())
            });
        }
        assert_eq!(first, second);
    }
}
