//! Offline stand-in for the `criterion` API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a miniature benchmark harness with the same caller grammar:
//! [`Criterion`] with `warm_up_time` / `measurement_time` /
//! `sample_size` builders, benchmark groups, [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are intentionally simple: each benchmark takes
//! `sample_size` samples (auto-scaled iteration batches), and the
//! report prints min/median/mean per-iteration time. There is no
//! HTML report, no outlier analysis, and no saved baselines — the
//! point is that `cargo bench` builds, runs and produces comparable
//! wall-clock numbers without network access.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (configuration + report sink).
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// No-op in the shim (the real criterion parses CLI flags here);
    /// kept so generated mains remain source-compatible.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label;
        run_benchmark(self, &label, f);
        self
    }
}

/// A named set of benchmarks sharing the parent's configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Overrides the measurement window for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Overrides the warm-up duration for benchmarks in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(self.criterion, &label, f);
        self
    }

    /// Runs one benchmark with an input value handed to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(self.criterion, &label, |b| f(b, input));
        self
    }

    /// Ends the group (report flushing is immediate in the shim).
    pub fn finish(self) {}
}

/// Identifier of one benchmark: a function name plus an optional
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { label: format!("{function_name}/{parameter}") }
    }

    /// Just the parameter (inside a group whose name carries context).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Hands the measured closure to the timing loop.
pub struct Bencher {
    /// Iterations per sample, fixed by the calibration phase.
    iters_per_sample: u64,
    /// Collected per-iteration nanoseconds, one entry per sample.
    samples: Vec<f64>,
    mode: BencherMode,
}

enum BencherMode {
    Calibrate { elapsed: Duration },
    Measure,
}

impl Bencher {
    /// Times `inner`, executing it in batches sized by calibration.
    pub fn iter<O, R>(&mut self, mut inner: R)
    where
        R: FnMut() -> O,
    {
        self.iter_with_setup(|| (), |()| inner());
    }

    /// Times `routine` only; `setup` runs untimed before each iteration.
    pub fn iter_with_setup<I, S, O, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut timed = Duration::ZERO;
        for _ in 0..self.iters_per_sample {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            timed += start.elapsed();
        }
        match &mut self.mode {
            BencherMode::Calibrate { elapsed } => *elapsed = timed,
            BencherMode::Measure => {
                let ns = timed.as_nanos() as f64 / self.iters_per_sample as f64;
                self.samples.push(ns);
            }
        }
    }
}

fn run_benchmark<F>(criterion: &Criterion, label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: grow the batch size until one batch takes long enough
    // to time reliably, spending at most the warm-up budget.
    let warm_up_deadline = Instant::now() + criterion.warm_up_time;
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters_per_sample: iters,
            samples: Vec::new(),
            mode: BencherMode::Calibrate { elapsed: Duration::ZERO },
        };
        f(&mut b);
        let elapsed = match b.mode {
            BencherMode::Calibrate { elapsed } => elapsed,
            BencherMode::Measure => unreachable!(),
        };
        if elapsed >= Duration::from_millis(1) || Instant::now() >= warm_up_deadline {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    // Measurement: spread the measurement budget over sample_size
    // batches of the calibrated size, stopping at the time budget.
    let deadline = Instant::now() + criterion.measurement_time;
    let mut b =
        Bencher { iters_per_sample: iters, samples: Vec::new(), mode: BencherMode::Measure };
    for _ in 0..criterion.sample_size {
        f(&mut b);
        if Instant::now() >= deadline {
            break;
        }
    }

    let mut samples = b.samples;
    if samples.is_empty() {
        println!("{label:<48} (no samples — closure never called iter)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{label:<48} min {:>12} median {:>12} mean {:>12} ({} samples x {} iters)",
        format_ns(min),
        format_ns(median),
        format_ns(mean),
        samples.len(),
        iters,
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Re-export point used by generated code; `std::hint::black_box` is the
/// actual implementation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Defines a benchmark group function from a config expression and a
/// list of target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines `fn main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
