//! # transaction-polymorphism
//!
//! A full reproduction of *Brief Announcement: Transaction Polymorphism*
//! (Gramoli & Guerraoui, SPAA 2011) as a production-grade Rust workspace:
//!
//! * [`stm`] (crate `polytm`) — the polymorphic software transactional
//!   memory: `start(p)` semantics per transaction (opaque `def`, elastic
//!   `weak`, snapshot, irrevocable), contention managers, nesting
//!   composition policies;
//! * [`schedule`] (crate `polytm-schedule`) — the paper's formal model,
//!   executable: schedules, critical steps, acceptance, Figure 1, and
//!   machine checks of Theorems 1 and 2;
//! * [`locks`] (crate `polytm-locks`) — lock-based substrate (2PL engine,
//!   hand-over-hand list, striped hash);
//! * [`lockfree`] (crate `polytm-lockfree`) — the cited lock-free
//!   baselines (Harris–Michael list, Michael hash table, split-ordered
//!   list);
//! * [`structures`] (crate `polytm-structures`) — transactional ADTs with
//!   per-operation semantics (list, hash set with transactional resize,
//!   skip list, counter, queue);
//! * [`kv`] (crate `polytm-kv`) — a sharded transactional key-value
//!   store: multi-key cross-shard transactions, snapshot range/prefix
//!   scans, CAS, batched ingest — the YCSB-style serving workload;
//! * [`workload`] (crate `polytm-workload`) — deterministic workload
//!   generation and the measurement driver;
//! * [`adaptive`] (crate `polytm-adaptive`) — the adaptive polymorphism
//!   runtime: a feedback-driven advisor that observes per-class
//!   telemetry and selects semantics and contention management live.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! experiment index, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ```
//! use transaction_polymorphism::prelude::*;
//! # use std::sync::Arc;
//!
//! let stm = Arc::new(Stm::new());
//! let list = TxList::new(Arc::clone(&stm));
//! list.insert(1);
//! list.insert(3);
//! // The paper's Figure 1 p1: a weak (elastic) traversal.
//! assert!(!list.contains(2));
//! ```

#![warn(missing_docs)]

pub use polytm as stm;
pub use polytm_adaptive as adaptive;
pub use polytm_kv as kv;
pub use polytm_lockfree as lockfree;
pub use polytm_locks as locks;
pub use polytm_schedule as schedule;
pub use polytm_structures as structures;
pub use polytm_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use polytm::{
        Abort, ClassId, NestingPolicy, Semantics, Stm, StmConfig, TVar, Transaction, TxParams,
        TxResult,
    };
    pub use polytm_adaptive::Advisor;
    pub use polytm_kv::{KvStore, Value};
    pub use polytm_schedule::{accepts, figure1_interleaving, figure1_program, Synchronization};
    pub use polytm_structures::{TxCounter, TxHashSet, TxList, TxQueue, TxSkipList};
}
