//! The unified metrics registry: every layer's counters flattened into
//! one canonical key space, snapshotted on demand and exported either
//! as a plain-text exposition dump or over the wire (the PTM1 `STATS`
//! opcode encodes [`encode_entries`]'s payload).
//!
//! ## Key space
//!
//! Keys are dot-separated lowercase paths, `prefix.rest`, where the
//! prefix names the layer that registered the source (`stm`, `wal`,
//! `server`, `advisor`, `trace`, `rate`). The full table of keys each
//! built-in source emits is documented in `docs/RUNBOOK.md` ("Reading
//! the metrics plane"). Values are `f64` — counters exact up to 2^53,
//! which outlives any run this workspace performs.

use std::sync::{Arc, Mutex};

use polytm::Stm;

use crate::tracer::RingTracer;

/// A producer of metrics: pushes `(key, value)` pairs into the
/// snapshot. Keys are relative — the registry prepends the prefix the
/// source was registered under. `collect` must not call back into the
/// registry (it runs under the registry's source-list lock).
pub trait MetricsSource: Send + Sync {
    /// Append this source's current values.
    fn collect(&self, out: &mut Vec<(String, f64)>);
}

/// The registry: an ordered list of prefixed [`MetricsSource`]s.
#[derive(Default)]
pub struct MetricsRegistry {
    sources: Mutex<Vec<(String, Arc<dyn MetricsSource>)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `source` under `prefix` (e.g. `"stm"`). Multiple
    /// sources may share a prefix; their keys should not collide —
    /// [`MetricsRegistry::snapshot`] keeps duplicates (the exposition
    /// is a dump, not a database), so a collision is visible, not
    /// silently resolved.
    pub fn register(&self, prefix: &str, source: Arc<dyn MetricsSource>) {
        self.sources.lock().expect("metrics sources poisoned").push((prefix.into(), source));
    }

    /// Snapshot every source into the flat key space, sorted by key.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        let sources = self.sources.lock().expect("metrics sources poisoned");
        let mut out = Vec::new();
        for (prefix, source) in sources.iter() {
            let start = out.len();
            source.collect(&mut out);
            for (key, _) in &mut out[start..] {
                *key = format!("{prefix}.{key}");
            }
        }
        drop(sources);
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Plain-text exposition: one `key value` line per entry, sorted —
    /// grep-able, diff-able, and the text form of the `STATS` opcode.
    pub fn exposition(&self) -> String {
        let mut out = String::new();
        for (key, value) in self.snapshot() {
            // Counters print as integers; true gauges keep their fraction.
            if value.fract() == 0.0 && value.abs() < 9.0e15 {
                out.push_str(&format!("{key} {value:.0}\n"));
            } else {
                out.push_str(&format!("{key} {value}\n"));
            }
        }
        out
    }
}

/// Wire codec for a metrics snapshot (the PTM1 `STATS` binary payload):
/// `count:u32`, then per entry `key_len:u16 | key (utf-8) | value:f64`,
/// all little-endian.
pub fn encode_entries(entries: &[(String, f64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + entries.len() * 24);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (key, value) in entries {
        let k = key.as_bytes();
        let len = u16::try_from(k.len()).expect("metric keys are short");
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(k);
        out.extend_from_slice(&value.to_le_bytes());
    }
    out
}

/// Strict inverse of [`encode_entries`] — rejects truncation, trailing
/// bytes, and non-UTF-8 keys.
pub fn decode_entries(bytes: &[u8]) -> Result<Vec<(String, f64)>, String> {
    let take = |at: &mut usize, n: usize| -> Result<&[u8], String> {
        if bytes.len() - *at < n {
            return Err(format!("stats payload truncated at byte {at}", at = *at));
        }
        let s = &bytes[*at..*at + n];
        *at += n;
        Ok(s)
    };
    let mut at = 0usize;
    let count = u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4 bytes"));
    let mut entries = Vec::new();
    for _ in 0..count {
        let len = u16::from_le_bytes(take(&mut at, 2)?.try_into().expect("2 bytes")) as usize;
        let key = std::str::from_utf8(take(&mut at, len)?)
            .map_err(|_| "metric key is not UTF-8".to_string())?
            .to_string();
        let value = f64::from_le_bytes(take(&mut at, 8)?.try_into().expect("8 bytes"));
        entries.push((key, value));
    }
    if at != bytes.len() {
        return Err(format!("{} trailing bytes after stats payload", bytes.len() - at));
    }
    Ok(entries)
}

/// [`MetricsSource`] over an [`Stm`]'s [`polytm::StatsSnapshot`]:
/// transaction counters under the registered prefix, durability
/// counters under a nested `wal.` path (they live in the same sharded
/// block, reported by the WAL's group-commit leader).
pub struct StmMetrics {
    stm: Arc<Stm>,
}

impl StmMetrics {
    /// Source reading `stm`'s counters.
    pub fn new(stm: Arc<Stm>) -> Self {
        Self { stm }
    }
}

impl MetricsSource for StmMetrics {
    fn collect(&self, out: &mut Vec<(String, f64)>) {
        let s = self.stm.stats();
        let push = |out: &mut Vec<(String, f64)>, k: &str, v: u64| {
            out.push((k.to_string(), v as f64));
        };
        push(out, "commits", s.commits);
        push(out, "commits.irrevocable", s.irrevocable_commits);
        push(out, "aborts", s.aborts());
        push(out, "aborts.read_conflict", s.aborts_read_conflict);
        push(out, "aborts.locked", s.aborts_locked);
        push(out, "aborts.validation", s.aborts_validation);
        push(out, "aborts.cut", s.aborts_elastic_cut);
        push(out, "aborts.capacity", s.aborts_capacity);
        push(out, "aborts.unavailable", s.aborts_unavailable);
        push(out, "aborts.other", s.aborts_user_retry);
        out.push(("abort_ratio".to_string(), s.abort_ratio()));
        push(out, "cuts", s.elastic_cuts);
        push(out, "extensions", s.extensions);
        push(out, "upgrades.irrevocable", s.irrevocable_upgrades);
        push(out, "boxed_writes", s.boxed_writes);
        push(out, "wal.commits_durable", s.commits_durable);
        push(out, "wal.group_commit_batches", s.group_commit_batches);
        push(out, "wal.fsyncs", s.fsyncs);
        push(out, "wal.bytes", s.wal_bytes);
    }
}

/// Trace-plane health as metrics: rings registered, events recorded
/// (still buffered + drained), events shed.
impl MetricsSource for RingTracer {
    fn collect(&self, out: &mut Vec<(String, f64)>) {
        out.push(("rings".to_string(), self.ring_count() as f64));
        out.push(("dropped".to_string(), self.dropped_total() as f64));
    }
}

/// Adapt a closure into a [`MetricsSource`] — the escape hatch for
/// layers (or tests) that don't want a named type.
pub fn fn_source<F>(f: F) -> Arc<dyn MetricsSource>
where
    F: Fn(&mut Vec<(String, f64)>) + Send + Sync + 'static,
{
    struct FnSource<F>(F);
    impl<F: Fn(&mut Vec<(String, f64)>) + Send + Sync> MetricsSource for FnSource<F> {
        fn collect(&self, out: &mut Vec<(String, f64)>) {
            (self.0)(out)
        }
    }
    Arc::new(FnSource(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polytm::{Semantics, TxParams};

    #[test]
    fn snapshot_prefixes_and_sorts() {
        let reg = MetricsRegistry::new();
        reg.register("b", fn_source(|out| out.push(("two".into(), 2.0))));
        reg.register("a", fn_source(|out| out.push(("one".into(), 1.0))));
        let snap = reg.snapshot();
        assert_eq!(
            snap,
            vec![("a.one".to_string(), 1.0), ("b.two".to_string(), 2.0)],
            "prefixed and key-sorted"
        );
        let text = reg.exposition();
        assert_eq!(text, "a.one 1\nb.two 2\n");
    }

    #[test]
    fn stm_source_reports_commits_in_the_flat_key_space() {
        let stm = Arc::new(Stm::new());
        let v = stm.new_tvar(0u64);
        for _ in 0..5 {
            stm.run(TxParams::new(Semantics::Opaque), |tx| {
                let x = v.read(tx)?;
                v.write(tx, x + 1)
            });
        }
        let reg = MetricsRegistry::new();
        reg.register("stm", Arc::new(StmMetrics::new(Arc::clone(&stm))));
        let snap = reg.snapshot();
        let get = |k: &str| snap.iter().find(|(key, _)| key == k).map(|(_, v)| *v);
        assert_eq!(get("stm.commits"), Some(5.0));
        assert_eq!(get("stm.wal.fsyncs"), Some(0.0));
    }

    #[test]
    fn entries_codec_round_trips_and_rejects_garbage() {
        let entries =
            vec![("stm.commits".to_string(), 42.0), ("stm.abort_ratio".to_string(), 0.125)];
        let bytes = encode_entries(&entries);
        assert_eq!(decode_entries(&bytes).expect("decode"), entries);
        assert!(decode_entries(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes.clone();
        long.push(7);
        assert!(decode_entries(&long).is_err());
        assert!(decode_entries(&[1]).is_err());
    }
}
