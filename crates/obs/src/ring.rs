//! The per-thread event ring: a bounded single-producer single-consumer
//! queue of [`TraceEvent`]s that sheds load instead of blocking.
//!
//! ## Design
//!
//! The ring is the classic Lamport SPSC queue with one twist: when the
//! consumer falls behind, the producer **drops the new event and counts
//! it** — it never overwrites unconsumed slots and never waits. That
//! choice is what makes the tearing argument trivial:
//!
//! * the producer writes a slot *before* publishing it with a `Release`
//!   store of `head`;
//! * the consumer reads `head` with `Acquire` and only touches slots
//!   below it;
//! * the producer never rewrites a slot until the consumer has
//!   published (`Release` store of `tail`) that it is past it, which
//!   the producer observes with an `Acquire` load.
//!
//! Every slot read therefore happens-after the slot write it observes,
//! and no slot is concurrently written and read: events cannot tear.
//! The hot path is one plain 32-byte slot write plus one `Release`
//! store of `head` (a plain store on x86) — the "one relaxed-store
//! cost" budget in DESIGN.md §11. The producer caches `tail` and only
//! reloads it when the cached value makes the ring look full, so the
//! common case does not even read the consumer's cache line.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

use polytm::TraceEvent;

/// A bounded SPSC ring of [`TraceEvent`]s with drop-and-count overflow.
///
/// The type itself does not enforce the single-producer/single-consumer
/// roles (both entry points take `&self` so the tracer can share rings
/// between its writer threads and drain loop); the owner must. In this
/// crate, [`crate::RingTracer`] hands each ring to exactly one producer
/// thread via a thread-local and serializes all consumers behind one
/// drain lock.
pub struct EventRing {
    slots: Box<[UnsafeCell<TraceEvent>]>,
    /// Next slot the producer will write (monotonic; slot = head % cap).
    head: AtomicU64,
    /// Next slot the consumer will read (monotonic).
    tail: AtomicU64,
    /// Producer's cached copy of `tail` (plain u64 behind an atomic for
    /// `&self` access; only the producer touches it).
    cached_tail: AtomicU64,
    /// Events shed because the ring was full. Only the producer writes
    /// it, so a load+store pair (no RMW) keeps the count exact.
    dropped: AtomicU64,
}

// SAFETY: all cross-thread slot access is ordered by the head/tail
// acquire/release protocol described in the module docs; the roles
// discipline (one producer, one consumer at a time) is upheld by the
// owner per the type docs.
unsafe impl Sync for EventRing {}
unsafe impl Send for EventRing {}

impl EventRing {
    /// A ring with capacity for `capacity` events (rounded up to a
    /// power of two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        Self {
            slots: (0..cap).map(|_| UnsafeCell::new(TraceEvent::default())).collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            cached_tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of event slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Producer side: append `ev`, or drop it (counting) when the ring
    /// is full. Never blocks. Returns whether the event was stored.
    #[inline]
    pub fn push(&self, ev: TraceEvent) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let mut tail = self.cached_tail.load(Ordering::Relaxed);
        if head - tail >= cap {
            // Looks full through the cache: reload the consumer's real
            // position once before shedding.
            tail = self.tail.load(Ordering::Acquire);
            self.cached_tail.store(tail, Ordering::Relaxed);
            if head - tail >= cap {
                let d = self.dropped.load(Ordering::Relaxed);
                self.dropped.store(d + 1, Ordering::Relaxed);
                return false;
            }
        }
        let slot = self.slots[(head % cap) as usize].get();
        // SAFETY: slot `head` is above every consumer position (the
        // acquire load of `tail` proves the consumer is at or below
        // `tail` <= head) and no other producer exists, so this write
        // is exclusive until the release store below publishes it.
        unsafe { slot.write(ev) };
        self.head.store(head + 1, Ordering::Release);
        true
    }

    /// Consumer side: move every published event into `out`. Never
    /// blocks the producer; returns how many events were drained.
    pub fn drain_into(&self, out: &mut Vec<TraceEvent>) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let n = (head - tail) as usize;
        out.reserve(n);
        while tail < head {
            // SAFETY: `tail < head` with `head` acquire-loaded, so the
            // producer's write of this slot happens-before this read,
            // and the producer will not rewrite it until it observes
            // the tail store below.
            out.push(unsafe { *self.slots[(tail % cap) as usize].get() });
            tail += 1;
        }
        self.tail.store(tail, Ordering::Release);
        n
    }

    /// Events shed so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Published events currently waiting to be drained.
    pub fn len(&self) -> usize {
        (self.head.load(Ordering::Acquire) - self.tail.load(Ordering::Relaxed)) as usize
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u32) -> TraceEvent {
        TraceEvent { ts_ns: u64::from(n), code: 1, sub: 0, class: 0, n, a: 0, b: 0 }
    }

    #[test]
    fn fills_then_sheds_then_resumes_after_drain() {
        let r = EventRing::new(8);
        for i in 0..8 {
            assert!(r.push(ev(i)));
        }
        assert!(!r.push(ev(99)));
        assert!(!r.push(ev(100)));
        assert_eq!(r.dropped(), 2);
        let mut out = Vec::new();
        assert_eq!(r.drain_into(&mut out), 8);
        assert_eq!(out.iter().map(|e| e.n).collect::<Vec<_>>(), (0..8).collect::<Vec<_>>());
        assert!(r.push(ev(8)), "space reclaimed after drain");
        assert_eq!(r.dropped(), 2, "drop count is cumulative, not reset by drain");
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(EventRing::new(0).capacity(), 8);
        assert_eq!(EventRing::new(9).capacity(), 16);
        assert_eq!(EventRing::new(1024).capacity(), 1024);
    }

    #[test]
    fn drain_preserves_order_across_wrap() {
        let r = EventRing::new(8);
        let mut out = Vec::new();
        let mut next = 0u32;
        for _ in 0..5 {
            for _ in 0..6 {
                assert!(r.push(ev(next)));
                next += 1;
            }
            r.drain_into(&mut out);
        }
        assert_eq!(out.len(), 30);
        assert!(out.windows(2).all(|w| w[1].n == w[0].n + 1), "FIFO across wraparound");
    }
}
