//! # polytm-obs — the observability plane
//!
//! Always-available, low-overhead visibility into the polymorphic STM
//! stack, in two halves:
//!
//! * **Event tracing** — [`RingTracer`] implements the core's
//!   [`polytm::trace::TraceSink`] hook with one lock-free
//!   [`EventRing`] per emitting thread. Install it once per process
//!   ([`RingTracer::install`]) and every layer's emit sites (the
//!   transaction loop, the advisor's epoch controller, the WAL's
//!   group-commit leader, the server's coalescer) stream fixed-size
//!   32-byte events into per-thread rings that shed-and-count instead
//!   of blocking. [`TraceDump`] persists a drain in a strict binary
//!   format the `traceview` analyzer (crates/bench) decodes offline.
//!
//! * **Unified metrics** — [`MetricsRegistry`] flattens every layer's
//!   counters (StmStats, ServerStats, durability, advisor class
//!   tables) into one canonical dot-separated key space, exported as a
//!   plain-text exposition dump, over the wire via the PTM1 `STATS`
//!   opcode, and — through the [`Sampler`] thread — as per-second
//!   rates in the same key space.
//!
//! * **Slow-request flight recorder** — [`flight`] retains the worst
//!   request spans (coalesced commits whose wall time crossed a
//!   threshold) in a tiny bounded ring that survives runs long after
//!   the event rings wrapped. Its health counters feed the same
//!   metrics plane.
//!
//! `DESIGN.md` §11 carries the overhead and non-tearing arguments;
//! `docs/RUNBOOK.md` ("Reading the metrics plane") is the operator's
//! guide to the key table and traceview recipes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dump;
pub mod flight;
pub mod registry;
pub mod ring;
pub mod sampler;
pub mod tracer;

pub use dump::{RingDump, TraceDump};
pub use flight::{FlightRecorder, SlowSpan};
pub use registry::{
    decode_entries, encode_entries, fn_source, MetricsRegistry, MetricsSource, StmMetrics,
};
pub use ring::EventRing;
pub use sampler::Sampler;
pub use tracer::RingTracer;
