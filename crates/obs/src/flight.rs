//! The slow-request flight recorder: a bounded, process-global ring of
//! the worst request spans the server has seen.
//!
//! The trace plane ([`crate::RingTracer`]) records *everything* and
//! sheds under pressure; the flight recorder is its complement — it
//! records *almost nothing* (only coalesced commits whose wall time
//! crossed a threshold) and therefore survives arbitrarily long runs in
//! a few kilobytes. When an operator asks "what did the slowest
//! requests of the last hour look like?", the answer is here even if
//! the event rings wrapped long ago.
//!
//! ## Cost model
//!
//! Until a request is slow, the server pays one `OnceLock` load per
//! coalesced commit to discover whether a recorder is installed, and
//! two `Instant` reads to measure the commit — no allocation, no lock.
//! Only a span that crosses [`FlightRecorder::threshold_ns`] takes the
//! ring mutex, and by construction such requests are already tens of
//! microseconds deep, so the lock is never on a fast path.
//!
//! Install-once by design, like the trace sink: scenarios and servers
//! call [`install`] at startup; libraries only ever call [`get`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::registry::MetricsSource;

/// One retained slow span: a coalesced commit (and the requests it
/// carried) that exceeded the recorder's threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlowSpan {
    /// Connection the batch belonged to.
    pub conn: u64,
    /// First wire sequence number in the batch.
    pub first_seq: u32,
    /// Last wire sequence number in the batch.
    pub last_seq: u32,
    /// Write requests the batch carried.
    pub ops: u32,
    /// Wall time from the start of the read sweep that admitted the
    /// batch to the batch's replies being encoded.
    pub total_ns: u64,
    /// The store-commit portion of `total_ns` (STM attempts + WAL
    /// durability wait).
    pub commit_ns: u64,
}

/// The bounded ring of retained [`SlowSpan`]s plus its health counters.
pub struct FlightRecorder {
    threshold_ns: u64,
    capacity: usize,
    ring: Mutex<VecDeque<SlowSpan>>,
    /// Spans ever recorded (retained + evicted).
    recorded: AtomicU64,
    /// Spans pushed out by newer ones once the ring was full.
    evicted: AtomicU64,
}

static FLIGHT: OnceLock<FlightRecorder> = OnceLock::new();

/// Install the process-wide recorder: spans at or over `threshold_ns`
/// are retained, the newest `capacity` of them. Returns the winning
/// recorder — on a second call the *first* installation stays in force
/// (install-once, like the trace sink) and the new parameters are
/// discarded.
pub fn install(threshold_ns: u64, capacity: usize) -> &'static FlightRecorder {
    FLIGHT.get_or_init(|| FlightRecorder {
        threshold_ns,
        capacity: capacity.max(1),
        ring: Mutex::new(VecDeque::new()),
        recorded: AtomicU64::new(0),
        evicted: AtomicU64::new(0),
    })
}

/// The installed recorder, if any. One atomic load — cheap enough to
/// call per coalesced commit.
#[inline]
pub fn get() -> Option<&'static FlightRecorder> {
    FLIGHT.get()
}

impl FlightRecorder {
    /// Spans strictly faster than this are not retained.
    #[inline]
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Retain `span`, evicting the oldest retained span if the ring is
    /// full. Callers are expected to have checked the threshold first
    /// (that keeps the mutex off the fast path), but the recorder
    /// enforces it anyway so counters never lie.
    pub fn record(&self, span: SlowSpan) {
        if span.total_ns < self.threshold_ns {
            return;
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span);
    }

    /// The retained spans, oldest first, leaving the ring intact (a
    /// dump, not a drain — operators may ask repeatedly).
    pub fn snapshot(&self) -> Vec<SlowSpan> {
        self.ring.lock().expect("flight ring poisoned").iter().copied().collect()
    }

    /// Spans ever recorded (retained plus later evicted).
    pub fn recorded_total(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }
}

/// Flight-recorder health in the metrics plane (conventionally under
/// the `flight` prefix): the threshold in force, how many slow spans
/// were ever seen, how many are still retained, and the worst retained
/// total latency.
impl MetricsSource for FlightRecorder {
    fn collect(&self, out: &mut Vec<(String, f64)>) {
        let ring = self.ring.lock().expect("flight ring poisoned");
        let worst = ring.iter().map(|s| s.total_ns).max().unwrap_or(0);
        out.push(("threshold_ns".to_string(), self.threshold_ns as f64));
        out.push(("recorded".to_string(), self.recorded.load(Ordering::Relaxed) as f64));
        out.push(("evicted".to_string(), self.evicted.load(Ordering::Relaxed) as f64));
        out.push(("retained".to_string(), ring.len() as f64));
        out.push(("worst_total_ns".to_string(), worst as f64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(conn: u64, total_ns: u64) -> SlowSpan {
        SlowSpan { conn, first_seq: 1, last_seq: 1, ops: 1, total_ns, commit_ns: total_ns / 2 }
    }

    #[test]
    fn ring_bounds_and_counts() {
        // A private recorder (not the global): the OnceLock global is
        // install-once per process, which tests cannot share.
        let fr = FlightRecorder {
            threshold_ns: 100,
            capacity: 2,
            ring: Mutex::new(VecDeque::new()),
            recorded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        };
        fr.record(span(1, 50)); // under threshold: ignored
        fr.record(span(2, 150));
        fr.record(span(3, 200));
        fr.record(span(4, 300)); // evicts conn 2
        assert_eq!(fr.recorded_total(), 3);
        let spans = fr.snapshot();
        assert_eq!(spans.iter().map(|s| s.conn).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(fr.snapshot().len(), 2, "snapshot leaves the ring intact");

        let mut out = Vec::new();
        fr.collect(&mut out);
        let get = |k: &str| out.iter().find(|(key, _)| key == k).map(|(_, v)| *v);
        assert_eq!(get("recorded"), Some(3.0));
        assert_eq!(get("evicted"), Some(1.0));
        assert_eq!(get("retained"), Some(2.0));
        assert_eq!(get("worst_total_ns"), Some(300.0));
    }

    #[test]
    fn global_install_is_once() {
        let a = install(1_000, 8);
        let b = install(999_999, 1);
        assert!(std::ptr::eq(a, b), "second install yields the first recorder");
        assert_eq!(b.threshold_ns(), 1_000);
        assert!(get().is_some());
    }
}
