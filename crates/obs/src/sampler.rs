//! The rate sampler: a background thread that snapshots the registry on
//! a fixed cadence and differentiates counters into per-second rates.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::registry::{MetricsRegistry, MetricsSource};

/// Computed rates shared between the sampler thread and readers.
#[derive(Default)]
struct Shared {
    /// `key.per_sec` entries from the latest completed interval.
    rates: Mutex<Vec<(String, f64)>>,
}

/// Periodically turns the registry's monotone counters into rates.
///
/// Register the sampler itself as a source (it reports the latest
/// interval's `<key>.per_sec` values) to make rates part of the same
/// flat key space the `STATS` opcode and the exposition dump export:
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use polytm_obs::{MetricsRegistry, Sampler};
///
/// let registry = Arc::new(MetricsRegistry::new());
/// let sampler = Arc::new(Sampler::spawn(Arc::clone(&registry), Duration::from_millis(10)));
/// registry.register("rate", Arc::clone(&sampler) as _);
/// # sampler.stop();
/// ```
///
/// Keys already ending in `.per_sec` and intervals where a counter
/// moved backwards (a reset) are skipped, so the sampler never rates
/// its own output and never reports a negative rate.
pub struct Sampler {
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Sampler {
    /// Spawn the sampling thread; it snapshots `registry` every
    /// `interval` until [`Sampler::stop`] (or drop).
    pub fn spawn(registry: Arc<MetricsRegistry>, interval: Duration) -> Self {
        let shared = Arc::new(Shared::default());
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("polytm-obs-sampler".into())
                .spawn(move || run(&registry, &shared, &stop, interval))
                .expect("spawning sampler thread")
        };
        Self { shared, stop, thread: Mutex::new(Some(thread)) }
    }

    /// The latest completed interval's rates, as `key.per_sec` pairs.
    pub fn rates(&self) -> Vec<(String, f64)> {
        self.shared.rates.lock().expect("sampler rates poisoned").clone()
    }

    /// Stop and join the sampling thread (idempotent).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.lock().expect("sampler thread poisoned").take() {
            t.join().expect("sampler thread panicked");
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

impl MetricsSource for Sampler {
    fn collect(&self, out: &mut Vec<(String, f64)>) {
        out.extend(self.rates());
    }
}

fn run(registry: &MetricsRegistry, shared: &Shared, stop: &AtomicBool, interval: Duration) {
    let mut last = registry.snapshot();
    let mut last_at = Instant::now();
    // Sleep in short steps so stop() never waits a whole interval.
    let step = interval.min(Duration::from_millis(20)).max(Duration::from_millis(1));
    loop {
        let mut slept = Duration::ZERO;
        while slept < interval {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(step);
            slept += step;
        }
        let now_at = Instant::now();
        let now = registry.snapshot();
        let dt = now_at.duration_since(last_at).as_secs_f64();
        let mut rates = Vec::new();
        if dt > 0.0 {
            for (key, value) in &now {
                if key.ends_with(".per_sec") {
                    continue;
                }
                let Some((_, prev)) = last.iter().find(|(k, _)| k == key) else { continue };
                let delta = value - prev;
                if delta >= 0.0 {
                    rates.push((format!("{key}.per_sec"), delta / dt));
                }
            }
        }
        *shared.rates.lock().expect("sampler rates poisoned") = rates;
        last = now;
        last_at = now_at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::fn_source;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn differentiates_counters_and_skips_its_own_output() {
        let registry = Arc::new(MetricsRegistry::new());
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        registry.register(
            "t",
            fn_source(move |out| {
                out.push(("ops".into(), c.load(Ordering::Relaxed) as f64));
            }),
        );
        let sampler = Arc::new(Sampler::spawn(Arc::clone(&registry), Duration::from_millis(30)));
        registry.register("rate", Arc::clone(&sampler) as _);
        // Drive the counter while the sampler watches.
        for _ in 0..40 {
            counter.fetch_add(25, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(2));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        let rate = loop {
            let rates = sampler.rates();
            if let Some((_, r)) = rates.iter().find(|(k, _)| k == "t.ops.per_sec") {
                if *r > 0.0 {
                    break *r;
                }
            }
            assert!(Instant::now() < deadline, "sampler never produced a rate");
            std::thread::sleep(Duration::from_millis(5));
        };
        assert!(rate > 0.0);
        // The registered sampler source exports the same rates into the
        // registry's key space, and never rates its own output.
        let snap = registry.snapshot();
        assert!(snap.iter().any(|(k, _)| k == "rate.t.ops.per_sec"));
        assert!(snap.iter().all(|(k, _)| !k.ends_with(".per_sec.per_sec")));
        sampler.stop();
    }
}
