//! The trace-dump codec: a strict little-endian binary format for
//! persisting drained rings, decodable by `traceview` (and anything
//! else) without this process's state.
//!
//! ## Layout (version 1)
//!
//! ```text
//! header:  "PTRC" | version:u32 | ring_capacity:u32 | ring_count:u32
//! per ring: ring_index:u32 | dropped:u64 | event_count:u64 | events…
//! event (32 bytes):
//!   ts_ns:u64 | code:u8 | sub:u8 | class:u16 | n:u32 | a:u64 | b:u64
//! ```
//!
//! All integers little-endian. Decoding is strict — wrong magic,
//! truncated bodies, or trailing garbage are errors, never panics — so
//! the decoder can face arbitrary bytes (it is proptest-fuzzed).

use std::path::Path;

use polytm::TraceEvent;

/// Bytes one event occupies on the wire.
pub const EVENT_BYTES: usize = 32;
/// The dump file magic.
pub const MAGIC: &[u8; 4] = b"PTRC";
/// Current format version.
pub const VERSION: u32 = 1;

/// One drained per-thread ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingDump {
    /// Registration index of the ring within its tracer.
    pub ring: u32,
    /// Cumulative events this ring shed (ring full) up to the drain.
    pub dropped: u64,
    /// The drained events, in emission order.
    pub events: Vec<TraceEvent>,
}

/// A full drain of a [`crate::RingTracer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDump {
    /// Per-ring slot capacity the tracer ran with.
    pub capacity: usize,
    /// One entry per registered per-thread ring.
    pub rings: Vec<RingDump>,
}

impl TraceDump {
    /// All events across all rings, merged and sorted by timestamp.
    pub fn merged_events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> =
            self.rings.iter().flat_map(|r| r.events.iter().copied()).collect();
        all.sort_by_key(|e| e.ts_ns);
        all
    }

    /// Total events shed across all rings.
    pub fn dropped_total(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped).sum()
    }

    /// Serialize to the version-1 wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let events: usize = self.rings.iter().map(|r| r.events.len()).sum();
        let mut out = Vec::with_capacity(16 + self.rings.len() * 20 + events * EVENT_BYTES);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.capacity as u32).to_le_bytes());
        out.extend_from_slice(&(self.rings.len() as u32).to_le_bytes());
        for ring in &self.rings {
            out.extend_from_slice(&ring.ring.to_le_bytes());
            out.extend_from_slice(&ring.dropped.to_le_bytes());
            out.extend_from_slice(&(ring.events.len() as u64).to_le_bytes());
            for ev in &ring.events {
                encode_event(ev, &mut out);
            }
        }
        out
    }

    /// Strict inverse of [`TraceDump::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Reader { bytes, at: 0 };
        if r.take(4)? != MAGIC {
            return Err("not a trace dump (bad magic)".into());
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(format!("unsupported dump version {version}"));
        }
        let capacity = r.u32()? as usize;
        let ring_count = r.u32()?;
        let mut rings = Vec::new();
        for _ in 0..ring_count {
            let ring = r.u32()?;
            let dropped = r.u64()?;
            let count = r.u64()?;
            // Bound by what the buffer can actually hold, so a corrupt
            // count cannot drive allocation.
            if count > (bytes.len() / EVENT_BYTES) as u64 {
                return Err(format!("ring {ring} claims {count} events; dump is too short"));
            }
            let mut events = Vec::with_capacity(count as usize);
            for _ in 0..count {
                events.push(decode_event(r.take(EVENT_BYTES)?));
            }
            rings.push(RingDump { ring, dropped, events });
        }
        if r.at != bytes.len() {
            return Err(format!("{} trailing bytes after dump body", bytes.len() - r.at));
        }
        Ok(Self { capacity, rings })
    }

    /// Write the dump to `path` (atomic enough for tooling: whole-file
    /// write, no partial rewrites of an existing dump).
    pub fn write_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Read and decode a dump file.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self, String> {
        let bytes = std::fs::read(path.as_ref()).map_err(|e| format!("reading trace dump: {e}"))?;
        Self::from_bytes(&bytes)
    }
}

/// Append one event's 32 wire bytes.
pub fn encode_event(ev: &TraceEvent, out: &mut Vec<u8>) {
    out.extend_from_slice(&ev.ts_ns.to_le_bytes());
    out.push(ev.code);
    out.push(ev.sub);
    out.extend_from_slice(&ev.class.to_le_bytes());
    out.extend_from_slice(&ev.n.to_le_bytes());
    out.extend_from_slice(&ev.a.to_le_bytes());
    out.extend_from_slice(&ev.b.to_le_bytes());
}

/// Decode one event from exactly [`EVENT_BYTES`] wire bytes.
///
/// # Panics
/// If `bytes` is not exactly [`EVENT_BYTES`] long (the framing layer
/// has already validated lengths).
pub fn decode_event(bytes: &[u8]) -> TraceEvent {
    assert_eq!(bytes.len(), EVENT_BYTES, "event frame must be {EVENT_BYTES} bytes");
    let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8 bytes"));
    TraceEvent {
        ts_ns: u64_at(0),
        code: bytes[8],
        sub: bytes[9],
        class: u16::from_le_bytes([bytes[10], bytes[11]]),
        n: u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")),
        a: u64_at(16),
        b: u64_at(24),
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.bytes.len() - self.at < n {
            return Err(format!("dump truncated at byte {}", self.at));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceDump {
        TraceDump {
            capacity: 1024,
            rings: vec![
                RingDump {
                    ring: 0,
                    dropped: 3,
                    events: vec![
                        TraceEvent { ts_ns: 10, code: 1, sub: 0, class: 5, n: 0, a: 7, b: 9 },
                        TraceEvent { ts_ns: 20, code: 2, sub: 1, class: 5, n: 1, a: 0, b: 0 },
                    ],
                },
                RingDump { ring: 1, dropped: 0, events: vec![] },
            ],
        }
    }

    #[test]
    fn round_trips() {
        let d = sample();
        assert_eq!(TraceDump::from_bytes(&d.to_bytes()).expect("decode"), d);
    }

    #[test]
    fn rejects_bad_magic_truncation_and_trailing_garbage() {
        let d = sample();
        let bytes = d.to_bytes();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(TraceDump::from_bytes(&bad).is_err());
        assert!(TraceDump::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(TraceDump::from_bytes(&long).is_err());
        assert!(TraceDump::from_bytes(&[]).is_err());
    }

    #[test]
    fn merged_events_sorts_across_rings() {
        let d = TraceDump {
            capacity: 8,
            rings: vec![
                RingDump {
                    ring: 0,
                    dropped: 0,
                    events: vec![TraceEvent { ts_ns: 30, ..Default::default() }],
                },
                RingDump {
                    ring: 1,
                    dropped: 0,
                    events: vec![
                        TraceEvent { ts_ns: 10, ..Default::default() },
                        TraceEvent { ts_ns: 40, ..Default::default() },
                    ],
                },
            ],
        };
        let ts: Vec<u64> = d.merged_events().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![10, 30, 40]);
    }
}
