//! [`RingTracer`]: the [`TraceSink`] implementation — one
//! [`EventRing`] per emitting thread, found through a thread-local so
//! the hot path never takes a lock.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use polytm::trace::{self, TraceSink};
use polytm::TraceEvent;

use crate::dump::{RingDump, TraceDump};
use crate::ring::EventRing;

/// Process-unique tracer ids, so a thread-local ring cached for one
/// tracer is never written on behalf of another.
static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's ring per tracer it has emitted into. Almost always
    /// one entry, so the per-event lookup is a scan of a length-1 vec.
    static THREAD_RINGS: RefCell<Vec<(u64, Arc<EventRing>)>> = const { RefCell::new(Vec::new()) };

    /// Hot-path cache: the last `(tracer id, ring)` this thread used.
    /// A raw pointer so the fast path is one TLS load, one compare and
    /// one deref — no `RefCell` flag, no vec scan, no `Arc` traffic.
    /// The pointee outlives every use: the tracer's own registry holds
    /// an `Arc` to the ring for the tracer's whole lifetime, `record`
    /// requires the tracer alive (`&self`), and this cell has no
    /// destructor so it cannot observe teardown ordering.
    static FAST_RING: Cell<(u64, *const EventRing)> = const { Cell::new((0, std::ptr::null())) };
}

/// A [`TraceSink`] that fans events into per-thread [`EventRing`]s.
///
/// Each emitting thread lazily registers one ring (a `Mutex` push, once
/// per thread per tracer) and thereafter reaches it through a
/// thread-local: the per-event cost is a timestamp read and the ring's
/// single-producer push. Draining ([`RingTracer::drain`]) is serialized
/// behind one lock and never blocks producers — a producer that laps a
/// slow drain sheds events into its ring's exact drop counter instead.
///
/// ## Timestamp cost
///
/// On x86_64 the hot path stamps events with the raw TSC (`rdtsc`, a
/// few ns) instead of a `clock_gettime` call (~20 ns — comparable to
/// the rest of the emit put together); [`RingTracer::drain`]
/// calibrates ticks against the tracer's monotonic epoch and rewrites
/// every drained stamp to nanoseconds, so consumers only ever see
/// `ts_ns` in nanoseconds since the epoch. Other architectures stamp
/// nanoseconds directly.
pub struct RingTracer {
    id: u64,
    capacity: usize,
    epoch: Instant,
    /// Raw clock value at `epoch` (TSC ticks on x86_64, 0 elsewhere).
    raw_epoch: u64,
    rings: Mutex<Vec<Arc<EventRing>>>,
    drain_lock: Mutex<()>,
}

/// Raw hot-path clock read: TSC ticks on x86_64, nanoseconds since
/// `epoch` elsewhere.
#[inline]
fn raw_now(epoch: Instant) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        let _ = epoch;
        // SAFETY: `rdtsc` has no preconditions; it is unprivileged on
        // every x86_64 environment this workspace targets.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        epoch.elapsed().as_nanos() as u64
    }
}

impl RingTracer {
    /// A tracer whose per-thread rings hold `capacity_per_thread`
    /// events each (rounded up to a power of two).
    pub fn new(capacity_per_thread: usize) -> Self {
        let epoch = Instant::now();
        Self {
            id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            capacity: capacity_per_thread,
            epoch,
            raw_epoch: raw_now(epoch),
            rings: Mutex::new(Vec::new()),
            drain_lock: Mutex::new(()),
        }
    }

    /// Nanoseconds per raw-clock tick right now, measured against the
    /// epoch (1.0 where the raw clock already counts nanoseconds).
    fn ns_per_tick(&self) -> f64 {
        if cfg!(target_arch = "x86_64") {
            let elapsed_ns = self.epoch.elapsed().as_nanos() as f64;
            let elapsed_ticks = raw_now(self.epoch).saturating_sub(self.raw_epoch) as f64;
            if elapsed_ticks > 0.0 {
                elapsed_ns / elapsed_ticks
            } else {
                1.0
            }
        } else {
            1.0
        }
    }

    /// Build a tracer, leak it, and install it as the process-wide
    /// sink. Returns `None` (and still leaks one tracer) if a sink is
    /// already installed — the trace plane is install-once by design.
    pub fn install(capacity_per_thread: usize) -> Option<&'static RingTracer> {
        let tracer: &'static RingTracer = Box::leak(Box::new(Self::new(capacity_per_thread)));
        trace::install(tracer).then_some(tracer)
    }

    /// The tracer's monotonic epoch — event `ts_ns` values count from
    /// this instant.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Run `f` on this thread's ring for this tracer, registering one
    /// on first use. Working under the thread-local borrow (instead of
    /// handing out a clone) keeps `Arc` reference traffic off the
    /// per-event path.
    #[inline]
    fn with_my_ring(&self, f: impl FnOnce(&EventRing)) {
        let _ = THREAD_RINGS.try_with(|cell| {
            let mut rings = cell.borrow_mut();
            let ring = match rings.iter().find(|(id, _)| *id == self.id) {
                Some((_, ring)) => ring,
                None => {
                    let ring = Arc::new(EventRing::new(self.capacity));
                    self.rings.lock().expect("tracer registry poisoned").push(Arc::clone(&ring));
                    rings.push((self.id, ring));
                    &rings.last().expect("just pushed").1
                }
            };
            let _ = FAST_RING.try_with(|c| c.set((self.id, Arc::as_ptr(ring))));
            f(ring);
        });
    }

    /// Drain every thread's ring into one dump, rewriting raw hot-path
    /// stamps to nanoseconds since the epoch. Producers keep running;
    /// anything they emit after their ring is visited lands in the next
    /// drain. Ring indices are registration order (stable across
    /// drains); `dropped` counts are cumulative per ring.
    pub fn drain(&self) -> TraceDump {
        let _consumer = self.drain_lock.lock().expect("drain lock poisoned");
        let ns_per_tick = self.ns_per_tick();
        let rings = self.rings.lock().expect("tracer registry poisoned").clone();
        let mut dumps = Vec::with_capacity(rings.len());
        for (i, ring) in rings.iter().enumerate() {
            let mut events = Vec::new();
            ring.drain_into(&mut events);
            for ev in &mut events {
                let ticks = ev.ts_ns.saturating_sub(self.raw_epoch);
                ev.ts_ns = (ticks as f64 * ns_per_tick) as u64;
            }
            dumps.push(RingDump { ring: i as u32, dropped: ring.dropped(), events });
        }
        TraceDump { capacity: rings.first().map_or(self.capacity, |r| r.capacity()), rings: dumps }
    }

    /// Total events shed across all rings so far.
    pub fn dropped_total(&self) -> u64 {
        self.rings.lock().expect("tracer registry poisoned").iter().map(|r| r.dropped()).sum()
    }

    /// Number of per-thread rings registered so far.
    pub fn ring_count(&self) -> usize {
        self.rings.lock().expect("tracer registry poisoned").len()
    }
}

impl TraceSink for RingTracer {
    #[inline]
    fn record(&self, mut ev: TraceEvent) {
        // Raw stamp (TSC ticks on x86_64); drain() rewrites it to
        // nanoseconds since the epoch before anything observes it.
        ev.ts_ns = raw_now(self.epoch);
        // Fast path: the cached `(id, ring)` pair from the last emit.
        // SAFETY: the pointer was cached under this tracer's id, the
        // registry keeps the ring alive for the tracer's lifetime, and
        // `&self` proves the tracer is alive (see FAST_RING's docs).
        let hit = FAST_RING.try_with(|c| {
            let (id, ptr) = c.get();
            if id == self.id {
                unsafe { (*ptr).push(ev) };
                true
            } else {
                false
            }
        });
        if matches!(hit, Ok(true)) {
            return;
        }
        // Slow path: first emit from this thread (or a different
        // tracer) — register/look up the ring and re-prime the cache.
        // A thread torn down past its TLS destructors silently sheds —
        // there is no ring left to count into, and panicking in that
        // window would abort the process.
        self.with_my_ring(|ring| {
            ring.push(ev);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polytm::trace::code;

    fn ev(n: u32) -> TraceEvent {
        TraceEvent::new(code::TXN_COMMIT, 0, 7, n, 0, 0)
    }

    #[test]
    fn stamps_and_collects_per_thread() {
        let tracer = Arc::new(RingTracer::new(1 << 10));
        let threads: Vec<_> = (0..3)
            .map(|t| {
                let tracer = Arc::clone(&tracer);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        tracer.record(ev(t * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("emitter panicked");
        }
        let dump = tracer.drain();
        assert_eq!(dump.rings.len(), 3, "one ring per emitting thread");
        let total: usize = dump.rings.iter().map(|r| r.events.len()).sum();
        assert_eq!(total, 300);
        for ring in &dump.rings {
            assert_eq!(ring.dropped, 0);
            assert!(
                ring.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
                "per-ring timestamps are monotone"
            );
            // Per-thread FIFO: the payloads a thread emitted stay in order.
            assert!(ring.events.windows(2).all(|w| w[0].n < w[1].n));
        }
        assert!(tracer.drain().rings.iter().all(|r| r.events.is_empty()), "drain consumes");
    }

    #[test]
    fn two_tracers_keep_rings_apart() {
        let a = RingTracer::new(64);
        let b = RingTracer::new(64);
        a.record(ev(1));
        b.record(ev(2));
        b.record(ev(3));
        assert_eq!(a.drain().rings.iter().map(|r| r.events.len()).sum::<usize>(), 1);
        assert_eq!(b.drain().rings.iter().map(|r| r.events.len()).sum::<usize>(), 2);
    }
}
