//! Property tests over the trace-dump and metrics-entry codecs: every
//! value round-trips bit-exactly, and the strict decoders face
//! arbitrary byte soup without panicking.

use proptest::prelude::*;

use polytm::TraceEvent;
use polytm_obs::dump::{decode_event, encode_event, EVENT_BYTES};
use polytm_obs::{decode_entries, encode_entries, RingDump, TraceDump};

fn event_strategy() -> impl Strategy<Value = TraceEvent> {
    (
        (any::<u64>(), any::<u8>()),
        (any::<u8>(), any::<u16>()),
        (any::<u32>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(|((ts_ns, code), (sub, class), (n, a, b))| TraceEvent {
            ts_ns,
            code,
            sub,
            class,
            n,
            a,
            b,
        })
}

fn dump_strategy() -> impl Strategy<Value = TraceDump> {
    (
        1usize..4096,
        prop::collection::vec((any::<u64>(), prop::collection::vec(event_strategy(), 0..12)), 0..4),
    )
        .prop_map(|(capacity, rings)| TraceDump {
            capacity,
            rings: rings
                .into_iter()
                .enumerate()
                .map(|(i, (dropped, events))| RingDump { ring: i as u32, dropped, events })
                .collect(),
        })
}

/// `(key, value)` metric entries from integer seeds: short printable
/// keys, finite values with a fractional part in half the cases.
fn entries_strategy() -> impl Strategy<Value = Vec<(String, f64)>> {
    prop::collection::vec((0u64..u64::MAX, 0u8..32), 0..16).prop_map(|seeds| {
        seeds
            .into_iter()
            .map(|(seed, len)| {
                let key: String = (0..=len)
                    .map(|i| {
                        let c = (seed.rotate_left(u32::from(i) * 7) % 27) as u8;
                        if c == 26 {
                            '.'
                        } else {
                            (b'a' + c) as char
                        }
                    })
                    .collect();
                let value = (seed as i64 as f64) / 7.0;
                (key, value)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn event_codec_round_trips(ev in event_strategy()) {
        let mut bytes = Vec::new();
        encode_event(&ev, &mut bytes);
        prop_assert_eq!(bytes.len(), EVENT_BYTES);
        prop_assert_eq!(decode_event(&bytes), ev);
    }

    #[test]
    fn dump_codec_round_trips(dump in dump_strategy()) {
        let decoded = TraceDump::from_bytes(&dump.to_bytes());
        prop_assert_eq!(decoded.expect("well-formed dump must decode"), dump);
    }

    #[test]
    fn dump_decoder_never_panics_on_soup(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = TraceDump::from_bytes(&bytes);
    }

    #[test]
    fn truncated_dumps_are_rejected_not_misread(dump in dump_strategy(), cut in 1usize..64) {
        let bytes = dump.to_bytes();
        if cut < bytes.len() {
            let truncated = &bytes[..bytes.len() - cut];
            // Whatever a truncation parses to, it must be an error or a
            // visibly different dump — never a silent equal decode.
            if let Ok(d) = TraceDump::from_bytes(truncated) {
                prop_assert!(d != dump, "truncated dump decoded equal to the original");
            }
        }
    }

    #[test]
    fn entries_codec_round_trips(entries in entries_strategy()) {
        let bytes = encode_entries(&entries);
        prop_assert_eq!(decode_entries(&bytes).expect("decode"), entries);
    }

    #[test]
    fn entries_decoder_never_panics_on_soup(bytes in prop::collection::vec(any::<u8>(), 0..192)) {
        let _ = decode_entries(&bytes);
    }
}
