//! Trace-ring overflow coverage: a fast writer against a slow (or
//! absent) drain never blocks, sheds with an exact drop count, and the
//! drained events are never torn.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use polytm::trace::{code, TraceSink};
use polytm::TraceEvent;
use polytm_obs::{EventRing, RingTracer};

/// An event whose payload fields are all derived from one sequence
/// number, so a torn (half-old half-new) slot read is detectable.
fn sealed(seq: u64) -> TraceEvent {
    TraceEvent {
        ts_ns: seq,
        code: code::TXN_COMMIT,
        sub: (seq % 251) as u8,
        class: (seq % 65_521) as u16,
        n: (seq % 4_294_967_291) as u32,
        a: seq.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        b: !seq,
    }
}

/// True when `ev`'s fields are mutually consistent with its `ts_ns`.
fn is_sealed(ev: &TraceEvent) -> bool {
    *ev == sealed(ev.ts_ns)
}

#[test]
fn exact_drop_count_with_no_reader() {
    let ring = EventRing::new(64);
    let cap = ring.capacity() as u64;
    let total = 10_000u64;
    for seq in 0..total {
        ring.push(sealed(seq));
    }
    assert_eq!(ring.dropped(), total - cap, "everything past capacity sheds, exactly counted");
    let mut out = Vec::new();
    ring.drain_into(&mut out);
    assert_eq!(out.len(), cap as usize);
    // Drop-newest: the survivors are exactly the first `cap` events.
    assert!(out.iter().enumerate().all(|(i, e)| e.ts_ns == i as u64));
}

#[test]
fn fast_writer_slow_reader_never_blocks_and_never_tears() {
    let ring = Arc::new(EventRing::new(256));
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let ring = Arc::clone(&ring);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seq = 0u64;
            let mut max_push = Duration::ZERO;
            while !stop.load(Ordering::Relaxed) {
                let t = Instant::now();
                ring.push(sealed(seq));
                max_push = max_push.max(t.elapsed());
                seq += 1;
            }
            (seq, max_push)
        })
    };
    // A deliberately slow consumer: drain tiny batches with sleeps so
    // the writer laps it constantly.
    let mut drained: Vec<TraceEvent> = Vec::new();
    let deadline = Instant::now() + Duration::from_millis(400);
    while Instant::now() < deadline {
        ring.drain_into(&mut drained);
        std::thread::sleep(Duration::from_millis(7));
    }
    stop.store(true, Ordering::Relaxed);
    let (written, max_push) = writer.join().expect("writer panicked");
    ring.drain_into(&mut drained);
    let dropped = ring.dropped();

    assert!(!drained.is_empty(), "slow reader still makes progress");
    assert!(drained.iter().all(is_sealed), "no drained event is torn");
    // FIFO per ring: sequence numbers strictly increase.
    assert!(drained.windows(2).all(|w| w[0].ts_ns < w[1].ts_ns));
    // Conservation: every pushed event is either drained or counted dropped.
    assert_eq!(drained.len() as u64 + dropped, written);
    assert!(dropped > 0, "a lapped reader must actually shed (writer wrote {written})");
    // "Never blocks": even on a loaded 1-core CI box a push is bounded
    // by scheduling noise, not by the reader — a generous ceiling that
    // a blocking push (7ms reader sleeps) would blow through.
    assert!(max_push < Duration::from_millis(5), "slowest push took {max_push:?}");
}

#[test]
fn tracer_drain_reports_exact_per_ring_drops() {
    let tracer = Arc::new(RingTracer::new(32));
    let threads: Vec<_> = (0..2)
        .map(|_| {
            let tracer = Arc::clone(&tracer);
            std::thread::spawn(move || {
                for seq in 0..1000u64 {
                    tracer.record(sealed(seq));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("emitter panicked");
    }
    let dump = tracer.drain();
    assert_eq!(dump.rings.len(), 2);
    for ring in &dump.rings {
        // RingTracer stamps ts_ns, so sealedness is not preserved — but
        // count conservation is: capacity survived, the rest counted.
        assert_eq!(ring.events.len() as u64 + ring.dropped, 1000);
        assert_eq!(ring.dropped, 1000 - dump.capacity as u64);
    }
}
