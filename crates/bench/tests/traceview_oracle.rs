//! The traceview acceptance test: a deterministic single-threaded run
//! with known classes, forced abort addresses, and a sync-mode WAL is
//! traced through the real `polytm-obs` ring tracer, dumped through the
//! real `PTRC` file codec, and analyzed with `polytm_bench::analyze` —
//! then every headline number in the report is checked against counts
//! the test computed independently (and against the STM's own stats
//! counters for the WAL histograms).
//!
//! One `#[test]` only: `RingTracer::install` claims the process-global
//! trace sink, so the whole oracle runs as a single scenario.

use std::cell::Cell;
use std::sync::Arc;
use std::time::Duration;

use polytm::{Abort, ClassId, Semantics, Stm, StmConfig, TxParams};
use polytm_bench::analyze::{analyze, render, TraceReport};
use polytm_durable::{Durability, DurableKv, DurableKvConfig, RealFs, WalConfig};
use polytm_kv::{KvConfig, Value};
use polytm_obs::{RingTracer, TraceDump};

/// Forced-abort addresses: distinct, non-zero, and impossible to
/// confuse with a real `TVar` slot in this tiny run.
const HOT: usize = 0xDEAD;
const WARM: usize = 0xBEEF;
const COOL: usize = 0xCAFE;

/// Run `runs` transactions under `class`; each one returns
/// `Err(abort())` for its first `aborts_each` attempts (a user-forced
/// abort with a chosen address), then commits a real write.
fn run_classed(
    stm: &Stm,
    class: u16,
    sem: Semantics,
    runs: u64,
    aborts_each: u32,
    abort: impl Fn() -> Abort,
) {
    let x = stm.new_tvar(0u64);
    for _ in 0..runs {
        let attempt = Cell::new(0u32);
        stm.run(TxParams::new(sem).with_class(ClassId(class)), |tx| {
            let n = attempt.get();
            attempt.set(n + 1);
            if n < aborts_each {
                return Err(abort());
            }
            x.modify(tx, |v| v + 1)
        });
    }
}

/// The oracle's view of one class: (attempts, commits, `aborts_by_cause`).
/// Also checks the begin-elision invariant: the core emits `TXN_BEGIN`
/// only for re-attempts, and every abort here is retried, so the
/// retry-begin count must equal the abort count exactly.
fn class_counts(report: &TraceReport, class: u16) -> (u64, u64, [u64; 7]) {
    let t = report.classes.get(&class).unwrap_or_else(|| panic!("class {class} missing"));
    assert_eq!(t.retry_begins, t.aborts(), "class {class}: one re-attempt begin per abort");
    (t.attempts(), t.commits(), t.aborts_by_cause)
}

#[test]
fn traceview_report_matches_a_deterministic_oracle() {
    let tracer = RingTracer::install(1 << 14).expect("first sink install in this process");

    // No fallback escalation: every attempt keeps its requested
    // semantics, so the oracle's per-semantics commit table is exact.
    let stm =
        Stm::with_config(StmConfig { irrevocable_fallback_after: None, ..StmConfig::default() });

    // Class 7: 40 clean opaque commits (one attempt each).
    run_classed(&stm, 7, Semantics::Opaque, 40, 0, || unreachable!());
    // Class 9: 25 commits, each preceded by two lock-conflict aborts
    // at address HOT -> 75 begins, 50 aborts.
    run_classed(&stm, 9, Semantics::Opaque, 25, 2, || Abort::Locked { addr: HOT, owner: 0 });
    // Class 11: 10 commits, each preceded by one validation abort at
    // address WARM.
    run_classed(&stm, 11, Semantics::Opaque, 10, 1, || Abort::ValidationFailed { addr: WARM });
    // Class 13: 15 elastic commits, each preceded by one read conflict
    // at COOL — which under elastic semantics is attributed as a cut.
    run_classed(&stm, 13, Semantics::Elastic { window: 8 }, 15, 1, || Abort::ReadConflict {
        addr: COOL,
    });

    // WAL phase: a sync-mode durable store with a zero group window on
    // one thread flushes every put as its own batch of one commit.
    let dir = std::env::temp_dir().join(format!("polytm-traceview-oracle-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fs = Arc::new(RealFs::open(&dir).expect("open temp storage dir"));
    let kv = DurableKv::open(
        fs,
        DurableKvConfig {
            kv: KvConfig { shards: 4, initial_slots: 64, ..KvConfig::default() },
            wal: WalConfig {
                mode: Durability::Sync,
                group_window: Duration::ZERO,
                ..WalConfig::default()
            },
        },
    )
    .expect("open durable store");
    const PUTS: u64 = 20;
    for k in 0..PUTS {
        kv.put(k, Value::from_u64(k * 3)).expect("durable put");
    }
    let wal_stats = kv.stm().stats();
    drop(kv);
    let _ = std::fs::remove_dir_all(&dir);

    // Server phase: a loopback server answers synchronous puts and
    // gets, so the dump carries request spans (REQ_RECV … REQ_DONE on
    // the worker's ring) for the waterfall joiner to reassemble.
    let server_store = Arc::new(polytm_kv::KvStore::new(Arc::new(Stm::new())));
    let handle = polytm_server::Server::spawn(
        server_store,
        "127.0.0.1:0",
        polytm_server::ServerConfig::default(),
    )
    .expect("spawn loopback server");
    let mut client = polytm_server::Client::connect(handle.local_addr()).expect("connect");
    const SERVER_PUTS: u64 = 30;
    const SERVER_GETS: u64 = 10;
    for k in 0..SERVER_PUTS {
        client.put(k, &k.to_le_bytes()).expect("server put");
    }
    for k in 0..SERVER_GETS {
        let got = client.get(k).expect("server get");
        assert_eq!(got.as_deref(), Some(&k.to_le_bytes()[..]));
    }
    drop(client);
    handle.shutdown();

    // Dump through the real file codec, exactly like `--trace` runs do.
    let trace_path =
        std::env::temp_dir().join(format!("polytm-traceview-oracle-{}.trace", std::process::id()));
    let dump = tracer.drain();
    dump.write_file(&trace_path).expect("write trace dump");
    let reread = TraceDump::read_file(&trace_path).expect("reread trace dump");
    let _ = std::fs::remove_file(&trace_path);
    assert_eq!(reread.dropped_total(), 0, "this run fits the ring with room to spare");
    let events = reread.merged_events();
    assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns), "merged events are time-sorted");
    let report = analyze(&events);

    // -- per-class timelines --------------------------------------
    let lock = trace::cause(polytm::AbortCause::LockConflict);
    let validation = trace::cause(polytm::AbortCause::Validation);
    let cut = trace::cause(polytm::AbortCause::Cut);

    let (attempts, commits, aborts) = class_counts(&report, 7);
    assert_eq!((attempts, commits), (40, 40));
    assert_eq!(aborts.iter().sum::<u64>(), 0);
    assert_eq!(report.classes[&7].commits_by_semantics[0], 40, "all class-7 commits opaque");
    assert_eq!(report.classes[&7].commit_series.iter().sum::<u64>(), 40);

    let (attempts, commits, aborts) = class_counts(&report, 9);
    assert_eq!((attempts, commits), (75, 25), "25 commits after 2 aborts each");
    assert_eq!(aborts[lock], 50);
    assert_eq!(aborts.iter().sum::<u64>(), 50);

    let (attempts, commits, aborts) = class_counts(&report, 11);
    assert_eq!((attempts, commits), (20, 10));
    assert_eq!(aborts[validation], 10);

    let (attempts, commits, aborts) = class_counts(&report, 13);
    assert_eq!((attempts, commits), (30, 15));
    assert_eq!(aborts[cut], 15, "elastic read conflicts are attributed as cuts");
    assert_eq!(report.classes[&13].commits_by_semantics[1], 15, "all class-13 commits elastic");

    // -- hottest-TVar table ---------------------------------------
    let sites: Vec<(u64, u64)> = report.abort_sites.iter().map(|s| (s.addr, s.total())).collect();
    assert_eq!(
        sites,
        vec![(HOT as u64, 50), (COOL as u64, 15), (WARM as u64, 10)],
        "abort sites ranked hottest-first with exact totals"
    );
    assert_eq!(report.abort_sites[0].by_cause[lock], 50);
    assert_eq!(report.abort_sites[1].by_cause[cut], 15);
    assert_eq!(report.abort_sites[2].by_cause[validation], 10);

    // -- WAL group-commit histograms ------------------------------
    // Cross-checked against the STM's own durability counters: every
    // flush recorded exactly one histogram sample, the batch sizes sum
    // to the durable commits, and consecutive flushes leave gaps.
    assert_eq!(report.wal_batch.samples, wal_stats.fsyncs, "one batch sample per fsync");
    assert_eq!(report.wal_fsync_ns.samples, wal_stats.fsyncs);
    assert_eq!(report.wal_batch.sum, wal_stats.commits_durable, "batch sizes sum to commits");
    assert_eq!(wal_stats.commits_durable, PUTS);
    assert_eq!(report.wal_gap_ns.samples, report.wal_batch.samples - 1, "N flushes leave N-1 gaps");
    // Single-threaded sync mode with a zero group window: every put is
    // its own flush, so every batch lands in the [1, 2) bucket.
    assert_eq!(report.wal_batch.buckets().collect::<Vec<_>>(), vec![(0, 2, PUTS)]);

    // -- request-span waterfall -----------------------------------
    // The span-join oracle: a single synchronous client means every
    // request opened exactly one span, every span closed, and nothing
    // joined across requests.
    let wf = polytm_bench::waterfall::join(&reread);
    assert_eq!(wf.unmatched_done, 0, "every REQ_DONE closed a REQ_RECV");
    assert_eq!(wf.unclosed_recv, 0, "every REQ_RECV was answered before shutdown");
    assert_eq!(wf.shed_open, 0);
    assert_eq!(wf.requests.len() as u64, SERVER_PUTS + SERVER_GETS, "one span per wire request");
    let batched = wf.requests.iter().filter(|r| r.batch_ops > 0).count() as u64;
    assert_eq!(batched, SERVER_PUTS, "every put joined to its commit; no get did");
    for span in &wf.requests {
        assert!(span.total_ns > 0, "request spans measure real time");
        assert!(
            span.components_ns() <= span.total_ns || wf.overflowed > 0,
            "components never exceed the measured end-to-end time"
        );
    }
    assert_eq!(wf.overflowed, 0, "decomposed waits fit inside every request");
    for span in &wf.requests {
        assert_eq!(
            span.components_ns(),
            span.total_ns,
            "batch_wait + stm + wal + other reassembles the whole request"
        );
    }
    let wf_text = polytm_bench::waterfall::render(&wf, 5);
    assert!(wf_text.contains("40 requests joined"), "waterfall render:\n{wf_text}");
    assert!(wf_text.contains("batch_wait"), "waterfall table lists the layers:\n{wf_text}");

    // -- the rendered report mentions the headline numbers --------
    let text = render(&report, 10);
    for needle in [
        "class 7",
        "class 9",
        "class 13",
        "aborts[lock-conflict] 50",
        "aborts[cut] 15",
        "addr 0xdead: 50 aborts",
        "addr 0xcafe: 15 aborts",
        "commits/flush",
    ] {
        assert!(text.contains(needle), "render output missing {needle:?}:\n{text}");
    }
}

/// `trace::cause_code` as a table index, via the public names.
mod trace {
    pub fn cause(c: polytm::AbortCause) -> usize {
        polytm::trace::cause_code(c) as usize
    }
}
