//! Offline analysis of `polytm-obs` trace dumps: the library behind
//! the `traceview` binary.
//!
//! The input is the merged, time-sorted event stream of a
//! [`polytm_obs::TraceDump`]; the output is a [`TraceReport`] holding
//! the four views the observability PR promises:
//!
//! 1. **per-class timelines** — attempts/commits/aborts per transaction
//!    class, split by semantics and abort cause, plus a coarse
//!    commit-rate series over the trace span;
//! 2. **abort attribution by address** — which TVars kill the most
//!    transactions (the "hottest TVar" table);
//! 3. **WAL group-commit histograms** — batch sizes and inter-flush
//!    gaps in power-of-two buckets;
//! 4. **per-connection coalescing efficiency** — admitted write ops
//!    per coalesced server commit, per connection.
//!
//! Everything here is a pure function of the event slice, so a
//! deterministic single-threaded run can serve as an oracle in tests.

use std::collections::BTreeMap;

use polytm::trace::{self, code, TraceEvent, NO_CLASS};

/// Number of buckets in a per-class commit-rate series.
pub const TIMELINE_BUCKETS: usize = 10;

/// Power-of-two histogram: bucket `i` counts samples in
/// `[2^i, 2^(i+1))`, except bucket 0 which also holds zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Pow2Histogram {
    /// `counts[i]` = samples whose value has `i` significant bits.
    pub counts: Vec<u64>,
    /// Total samples recorded.
    pub samples: u64,
    /// Sum of all sample values (for means).
    pub sum: u64,
}

impl Pow2Histogram {
    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()).saturating_sub(1) as usize;
        if self.counts.len() <= bucket {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.samples += 1;
        self.sum += value;
    }

    /// Mean sample value, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Iterate `(bucket_lo, bucket_hi_exclusive, count)` for non-empty
    /// buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| {
            let lo = if i == 0 { 0 } else { 1u64 << i };
            (lo, 1u64 << (i + 1), c)
        })
    }
}

/// One transaction class's life over the trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassTimeline {
    /// `TXN_BEGIN` events. The core emits a begin only for
    /// *re*-attempts (retries > 0) — first attempts are implied by
    /// their commit/abort event — so absent cancels this equals
    /// [`ClassTimeline::aborts`], and total attempts are
    /// [`ClassTimeline::attempts`].
    pub retry_begins: u64,
    /// Committed transactions, indexed by semantics code (0..=3).
    pub commits_by_semantics: [u64; 4],
    /// Aborted attempts, indexed by abort-cause code (1..=6; slot 0
    /// collects events with an unknown cause byte).
    pub aborts_by_cause: [u64; 7],
    /// `TXN_EXTEND` events attributed to this class (elastic cuts).
    pub extends: u64,
    /// First event timestamp (ns since the tracer epoch).
    pub first_ts_ns: u64,
    /// Last event timestamp.
    pub last_ts_ns: u64,
    /// Commits per time bucket over the whole trace span
    /// ([`TIMELINE_BUCKETS`] equal slices).
    pub commit_series: [u64; TIMELINE_BUCKETS],
}

impl ClassTimeline {
    /// Total commits across semantics.
    pub fn commits(&self) -> u64 {
        self.commits_by_semantics.iter().sum()
    }

    /// Total aborted attempts across causes.
    pub fn aborts(&self) -> u64 {
        self.aborts_by_cause.iter().sum()
    }

    /// Total attempts: every attempt resolves as exactly one commit or
    /// abort event (cancelled first attempts are invisible by design).
    pub fn attempts(&self) -> u64 {
        self.commits() + self.aborts()
    }
}

/// Abort attribution for one address (TVar slot).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AbortSite {
    /// The conflicting address as recorded in the abort event.
    pub addr: u64,
    /// Aborts attributed to it, by cause code.
    pub by_cause: [u64; 7],
}

impl AbortSite {
    /// Total aborts at this address.
    pub fn total(&self) -> u64 {
        self.by_cause.iter().sum()
    }
}

/// One connection's coalescing totals from `SERVER_BATCH` events.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConnCoalescing {
    /// Coalesced commits observed.
    pub batches: u64,
    /// Admitted write requests those commits carried.
    pub ops: u64,
    /// Payload bytes they carried.
    pub bytes: u64,
}

impl ConnCoalescing {
    /// Mean ops per coalesced commit — the coalescing efficiency.
    pub fn ops_per_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.ops as f64 / self.batches as f64
        }
    }
}

/// Everything `traceview` reports, computed in one pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceReport {
    /// Events analyzed.
    pub events: u64,
    /// Trace span `(first_ts, last_ts)` in ns since the tracer epoch.
    pub span_ns: (u64, u64),
    /// Per-class timelines, keyed by class id (`u16::MAX` = unclassed).
    pub classes: BTreeMap<u16, ClassTimeline>,
    /// Abort sites sorted hottest-first (address 0 — "no address
    /// recorded" — is excluded).
    pub abort_sites: Vec<AbortSite>,
    /// WAL group-commit batch sizes (commits per flush).
    pub wal_batch: Pow2Histogram,
    /// Gaps between consecutive WAL flushes, in nanoseconds.
    pub wal_gap_ns: Pow2Histogram,
    /// WAL fsync latencies, in nanoseconds.
    pub wal_fsync_ns: Pow2Histogram,
    /// Per-connection coalescing, keyed by connection id.
    pub conns: BTreeMap<u64, ConnCoalescing>,
    /// Advisor epochs closed.
    pub advisor_epochs: u64,
    /// Advisor policy flips, as `(ts_ns, class, new_semantics_code)`.
    pub advisor_flips: Vec<(u64, u16, u8)>,
    /// `TXN_EXTEND` events (recorded below class granularity).
    pub extends: u64,
}

/// Analyze a merged, time-sorted event stream (what
/// [`polytm_obs::TraceDump::merged_events`] returns). Events are
/// processed in slice order; pass them sorted if bucketed series
/// should be meaningful.
pub fn analyze(events: &[TraceEvent]) -> TraceReport {
    let mut report = TraceReport { events: events.len() as u64, ..TraceReport::default() };
    if events.is_empty() {
        return report;
    }
    let first_ts = events.iter().map(|e| e.ts_ns).min().unwrap_or(0);
    let last_ts = events.iter().map(|e| e.ts_ns).max().unwrap_or(0);
    report.span_ns = (first_ts, last_ts);
    let span = (last_ts - first_ts).max(1);

    let mut abort_sites: BTreeMap<u64, AbortSite> = BTreeMap::new();
    let mut last_flush_ts: Option<u64> = None;

    for ev in events {
        match ev.code {
            code::TXN_BEGIN | code::TXN_COMMIT | code::TXN_ABORT => {
                let t = report.classes.entry(ev.class).or_default();
                if t.retry_begins == 0 && t.commits() == 0 && t.aborts() == 0 {
                    t.first_ts_ns = ev.ts_ns;
                }
                t.first_ts_ns = t.first_ts_ns.min(ev.ts_ns);
                t.last_ts_ns = t.last_ts_ns.max(ev.ts_ns);
                match ev.code {
                    code::TXN_BEGIN => t.retry_begins += 1,
                    code::TXN_COMMIT => {
                        t.commits_by_semantics[(ev.sub as usize).min(3)] += 1;
                        let bucket = ((ev.ts_ns - first_ts) as u128 * TIMELINE_BUCKETS as u128
                            / span as u128)
                            .min(TIMELINE_BUCKETS as u128 - 1)
                            as usize;
                        t.commit_series[bucket] += 1;
                    }
                    _ => {
                        let cause = (ev.sub as usize).min(6);
                        t.aborts_by_cause[cause] += 1;
                        if ev.a != 0 {
                            let site = abort_sites
                                .entry(ev.a)
                                .or_insert_with(|| AbortSite { addr: ev.a, ..Default::default() });
                            site.by_cause[cause] += 1;
                        }
                    }
                }
            }
            code::TXN_EXTEND => {
                report.extends += 1;
                if ev.class != NO_CLASS {
                    report.classes.entry(ev.class).or_default().extends += 1;
                }
            }
            code::WAL_FLUSH => {
                report.wal_batch.record(u64::from(ev.n));
                report.wal_fsync_ns.record(ev.a);
                if let Some(prev) = last_flush_ts {
                    report.wal_gap_ns.record(ev.ts_ns.saturating_sub(prev));
                }
                last_flush_ts = Some(ev.ts_ns);
            }
            code::SERVER_BATCH => {
                let c = report.conns.entry(ev.a).or_default();
                c.batches += 1;
                c.ops += u64::from(ev.n);
                c.bytes += ev.b;
            }
            code::ADVISOR_EPOCH => report.advisor_epochs += 1,
            code::ADVISOR_FLIP => report.advisor_flips.push((ev.ts_ns, ev.class, ev.sub)),
            _ => {}
        }
    }

    report.abort_sites = abort_sites.into_values().collect();
    // Hottest first; ties broken by address so the order is total.
    report.abort_sites.sort_by(|x, y| y.total().cmp(&x.total()).then(x.addr.cmp(&y.addr)));
    report
}

/// Render the report as the human-readable text `traceview` prints.
/// `top` bounds the hottest-TVar and per-connection tables.
pub fn render(report: &TraceReport, top: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let (lo, hi) = report.span_ns;
    let _ = writeln!(
        out,
        "trace: {} events over {:.3} ms",
        report.events,
        (hi.saturating_sub(lo)) as f64 / 1e6
    );

    let _ = writeln!(out, "\n== per-class timelines ==");
    for (class, t) in &report.classes {
        let name =
            if *class == NO_CLASS { "unclassed".to_string() } else { format!("class {class}") };
        let _ = writeln!(
            out,
            "{name}: attempts {}  commits {}  aborts {}  extends {}  span {:.3} ms",
            t.attempts(),
            t.commits(),
            t.aborts(),
            t.extends,
            (t.last_ts_ns.saturating_sub(t.first_ts_ns)) as f64 / 1e6
        );
        for sem in 0..4u8 {
            let n = t.commits_by_semantics[sem as usize];
            if n > 0 {
                let _ = writeln!(out, "  commits[{}] {}", trace::semantics_name(sem), n);
            }
        }
        for cause in 0..7u8 {
            let n = t.aborts_by_cause[cause as usize];
            if n > 0 {
                let _ = writeln!(out, "  aborts[{}] {}", trace::cause_name(cause), n);
            }
        }
        let series: Vec<String> = t.commit_series.iter().map(u64::to_string).collect();
        let _ = writeln!(out, "  commit series [{}]", series.join(" "));
    }

    let _ = writeln!(out, "\n== hottest TVars (abort attribution by address) ==");
    if report.abort_sites.is_empty() {
        let _ = writeln!(out, "(no addressed aborts)");
    }
    for site in report.abort_sites.iter().take(top) {
        let causes: Vec<String> = (0..7u8)
            .filter(|&c| site.by_cause[c as usize] > 0)
            .map(|c| format!("{} {}", trace::cause_name(c), site.by_cause[c as usize]))
            .collect();
        let _ =
            writeln!(out, "addr {:#x}: {} aborts ({})", site.addr, site.total(), causes.join(", "));
    }

    let _ = writeln!(out, "\n== WAL group commit ==");
    let _ = writeln!(
        out,
        "flushes {}  mean batch {:.2} commits/flush",
        report.wal_batch.samples,
        report.wal_batch.mean()
    );
    for (lo, hi, n) in report.wal_batch.buckets() {
        let _ = writeln!(out, "  batch [{lo:>6}, {hi:>6})  {n}");
    }
    let _ = writeln!(out, "inter-flush gaps (ns):");
    for (lo, hi, n) in report.wal_gap_ns.buckets() {
        let _ = writeln!(out, "  gap   [{lo:>12}, {hi:>12})  {n}");
    }
    let _ = writeln!(out, "fsync latency (ns):");
    for (lo, hi, n) in report.wal_fsync_ns.buckets() {
        let _ = writeln!(out, "  fsync [{lo:>12}, {hi:>12})  {n}");
    }

    let _ = writeln!(out, "\n== per-connection coalescing ==");
    if report.conns.is_empty() {
        let _ = writeln!(out, "(no server batches)");
    }
    for (conn, c) in report.conns.iter().take(top) {
        let _ = writeln!(
            out,
            "conn {conn}: {} batches  {} ops  {} bytes  {:.2} ops/commit",
            c.batches,
            c.ops,
            c.bytes,
            c.ops_per_batch()
        );
    }

    if report.advisor_epochs > 0 || !report.advisor_flips.is_empty() {
        let _ = writeln!(out, "\n== advisor ==");
        let _ =
            writeln!(out, "epochs {}  flips {}", report.advisor_epochs, report.advisor_flips.len());
        for (ts, class, sem) in report.advisor_flips.iter().take(top) {
            let _ = writeln!(
                out,
                "  t={:.3}ms class {class} -> {}",
                *ts as f64 / 1e6,
                trace::semantics_name(*sem)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(code: u8, sub: u8, class: u16, n: u32, a: u64, b: u64, ts: u64) -> TraceEvent {
        let mut e = TraceEvent::new(code, sub, class, n, a, b);
        e.ts_ns = ts;
        e
    }

    #[test]
    fn pow2_histogram_buckets_are_half_open_powers() {
        let mut h = Pow2Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        let buckets: Vec<_> = h.buckets().collect();
        // 0 and 1 share bucket 0; 2..4 bucket 1; 4..8 bucket 2; 8..16
        // bucket 3; 1024 lands in [1024, 2048).
        assert_eq!(buckets, vec![(0, 2, 2), (2, 4, 2), (4, 8, 2), (8, 16, 1), (1024, 2048, 1)]);
        assert_eq!(h.samples, 8);
    }

    #[test]
    fn analyze_attributes_aborts_and_coalescing() {
        // First attempts emit no begin event: the abort at ts 10 is the
        // transaction's first trace record, then its retry begins.
        let events = vec![
            ev(code::TXN_ABORT, 1, 3, 0, 0xAB, 0, 10),
            ev(code::TXN_BEGIN, 0, 3, 1, 0, 0, 20),
            ev(code::TXN_COMMIT, 0, 3, 1, 7, 0, 100),
            ev(code::WAL_FLUSH, 0, NO_CLASS, 4, 5_000, 256, 50),
            ev(code::WAL_FLUSH, 0, NO_CLASS, 2, 6_000, 128, 80),
            ev(code::SERVER_BATCH, 0, NO_CLASS, 8, 42, 512, 90),
            ev(code::SERVER_BATCH, 0, NO_CLASS, 4, 42, 256, 95),
        ];
        let r = analyze(&events);
        let t = &r.classes[&3];
        assert_eq!((t.retry_begins, t.attempts(), t.commits(), t.aborts()), (1, 2, 1, 1));
        assert_eq!(r.abort_sites.len(), 1);
        assert_eq!((r.abort_sites[0].addr, r.abort_sites[0].total()), (0xAB, 1));
        assert_eq!(r.wal_batch.samples, 2);
        assert_eq!(r.wal_gap_ns.samples, 1, "two flushes make one gap");
        let c = &r.conns[&42];
        assert_eq!((c.batches, c.ops, c.bytes), (2, 12, 768));
        assert!((c.ops_per_batch() - 6.0).abs() < 1e-9);
        // The render is total and mentions the headline numbers.
        let text = render(&r, 10);
        assert!(text.contains("class 3"));
        assert!(text.contains("addr 0xab"));
        assert!(text.contains("ops/commit"));
    }

    #[test]
    fn commit_series_buckets_cover_the_span() {
        let mut events = vec![ev(code::TXN_BEGIN, 0, 0, 0, 0, 0, 0)];
        for i in 0..100u64 {
            events.push(ev(code::TXN_COMMIT, 0, 0, 0, 0, 0, i * 10));
        }
        let r = analyze(&events);
        let t = &r.classes[&0];
        assert_eq!(t.commit_series.iter().sum::<u64>(), 100);
        assert!(t.commit_series.iter().all(|&b| b > 0), "uniform commits fill every bucket");
    }
}
