//! # polytm-bench — the experiment harness
//!
//! One entry point per experiment in `DESIGN.md` (E1–E10), each
//! regenerating the corresponding table/figure. Run them all with
//! `cargo run --release -p polytm-bench --bin tables -- all`, or a single
//! one with e.g. `-- e4`. Criterion micro-benchmarks live under
//! `benches/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adapters;
pub mod analyze;
pub mod experiments;
pub mod report;
pub mod waterfall;

pub use adapters::{
    make_hash_impl, make_list_impl, AdaptiveHashSet, AdaptiveListSet, Backend, BackendInstance,
    CoarseLockKv, Family, KvBackend, KvBackendInstance, KvStoreTable, ServerBackend,
    ServerStoreInstance, Shape, BACKENDS, HASH_IMPLS, KV_BACKENDS, LIST_IMPLS, SERVER_BACKENDS,
};
