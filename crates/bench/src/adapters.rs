//! [`ConcurrentSet`] / [`RangeSet`] / [`KvTable`] adapters for every
//! implementation under test, plus the [`Backend`] and [`KvBackend`]
//! registries the scenario matrix sweeps.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;
use polytm::{ClassId, Semantics, Stm, StmConfig, TxParams};
use polytm_adaptive::Advisor;
use polytm_durable::{Durability, DurableKv, DurableKvConfig, RealFs, WalConfig};
use polytm_kv::{KvConfig, KvParams, KvStore, Value};
use polytm_lockfree::{MichaelHashSet, SplitOrderedSet};
use polytm_locks::{HandOverHandList, StripedHashSet};
use polytm_structures::{TxHashSet, TxList, TxSkipList};
use polytm_workload::{ConcurrentSet, KvTable, RangeSet};

// ---------------------------------------------------------------------
// Transactional structures
// ---------------------------------------------------------------------

/// TxList under any per-op semantics.
pub struct TxListSet(pub TxList);

impl ConcurrentSet for TxListSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key as i64)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key as i64)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key as i64)
    }
}

impl RangeSet for TxListSet {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.0.range_count_snapshot(lo as i64, hi as i64)
    }
}

/// TxSkipList under any per-op semantics.
pub struct TxSkipListSet(pub TxSkipList);

impl ConcurrentSet for TxSkipListSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key as i64)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key as i64)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key as i64)
    }
}

impl RangeSet for TxSkipListSet {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.0.range_count_snapshot(lo as i64, hi as i64)
    }
}

/// TxHashSet under any per-op semantics.
pub struct TxHashAdapter(pub TxHashSet);

impl ConcurrentSet for TxHashAdapter {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key)
    }
}

impl RangeSet for TxHashAdapter {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.0.range_count_snapshot(lo, hi)
    }
}

// ---------------------------------------------------------------------
// Adaptive transactional structures
// ---------------------------------------------------------------------

/// Phase slots an adaptive backend distinguishes: workload phases fold
/// into this many class groups (phased scenarios cycle through 3).
const ADAPTIVE_PHASES: usize = 4;

/// Operation kinds per phase slot (read / update / scan).
const ADAPTIVE_KINDS: u16 = 3;

/// Thread stripes of a [`PhaseState`] (power of two).
const PHASE_STRIPES: usize = 64;

/// Per-*instance*, per-thread workload phase, fed by
/// [`ConcurrentSet::note_phase`]. Phase position is a per-thread
/// property of the deterministic schedule, and it must be per-instance
/// state: a process-wide slot would let one backend's phase change
/// retag another's operations (and leak stale phases to reused
/// threads across runs). Beyond `PHASE_STRIPES` live worker threads,
/// colliding threads overwrite each other's phase tag; that can
/// misattribute *telemetry* between phase classes (the advisor learns
/// from slightly mixed signals) but never affects the correctness of
/// the set operations themselves.
struct PhaseState {
    slots: [std::sync::atomic::AtomicUsize; PHASE_STRIPES],
}

impl PhaseState {
    fn new() -> Self {
        Self { slots: std::array::from_fn(|_| std::sync::atomic::AtomicUsize::new(0)) }
    }

    #[inline]
    fn set(&self, phase: usize) {
        self.slots[polytm::current_thread_index() & (PHASE_STRIPES - 1)]
            .store(phase, std::sync::atomic::Ordering::Relaxed);
    }

    #[inline]
    fn slot(&self) -> usize {
        self.slots[polytm::current_thread_index() & (PHASE_STRIPES - 1)]
            .load(std::sync::atomic::Ordering::Relaxed)
            % ADAPTIVE_PHASES
    }
}

/// Per-phase-slot `start(p)` parameter triple: each (phase, op-kind)
/// pair is its own advisor class, so a phase change moves operations to
/// classes the epoch controller classifies independently —
/// reclassification mid-run.
fn adaptive_params(phase_slot: usize) -> (TxParams, TxParams, TxParams) {
    let base = (phase_slot as u16) * ADAPTIVE_KINDS;
    (
        TxParams::new(Semantics::elastic()).with_class(ClassId(base)),
        TxParams::new(Semantics::elastic()).with_class(ClassId(base + 1)),
        TxParams::new(Semantics::Snapshot).with_class(ClassId(base + 2)),
    )
}

/// TxList under a live advisor: per-(phase, op-kind) classes, semantics
/// and contention management selected by feedback.
pub struct AdaptiveListSet {
    /// One handle per phase slot, sharing the same underlying list.
    handles: Vec<TxList>,
    phase: PhaseState,
    /// The advisor, exposed for diagnostics.
    pub advisor: Arc<Advisor>,
}

impl AdaptiveListSet {
    /// Fresh adaptive list on its own STM/advisor pair.
    pub fn new() -> (Self, Arc<Stm>) {
        let advisor = Arc::new(Advisor::default());
        let stm = Arc::new(Stm::with_advisor(StmConfig::default(), Arc::clone(&advisor) as _));
        let (read, update, scan) = adaptive_params(0);
        let slot0 = TxList::with_op_params(Arc::clone(&stm), read, update, scan);
        let handles = (1..ADAPTIVE_PHASES)
            .map(|slot| {
                let (read, update, scan) = adaptive_params(slot);
                slot0.clone_with_params(read, update, scan)
            })
            .collect::<Vec<_>>();
        let handles = std::iter::once(slot0).chain(handles).collect();
        (Self { handles, phase: PhaseState::new(), advisor }, stm)
    }

    #[inline]
    fn handle(&self) -> &TxList {
        &self.handles[self.phase.slot()]
    }
}

impl ConcurrentSet for AdaptiveListSet {
    fn contains(&self, key: u64) -> bool {
        self.handle().contains(key as i64)
    }
    fn insert(&self, key: u64) -> bool {
        self.handle().insert(key as i64)
    }
    fn remove(&self, key: u64) -> bool {
        self.handle().remove(key as i64)
    }
    fn note_phase(&self, phase: usize) {
        self.phase.set(phase);
    }
}

impl RangeSet for AdaptiveListSet {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.handle().range_count_snapshot(lo as i64, hi as i64)
    }
}

/// TxHashSet under a live advisor (see [`AdaptiveListSet`]).
pub struct AdaptiveHashSet {
    handles: Vec<TxHashSet>,
    phase: PhaseState,
    /// The advisor, exposed for diagnostics.
    pub advisor: Arc<Advisor>,
}

impl AdaptiveHashSet {
    /// Fresh adaptive table on its own STM/advisor pair.
    pub fn new(buckets: usize, max_load: usize) -> (Self, Arc<Stm>) {
        let advisor = Arc::new(Advisor::default());
        let stm = Arc::new(Stm::with_advisor(StmConfig::default(), Arc::clone(&advisor) as _));
        let (read, update, scan) = adaptive_params(0);
        let slot0 =
            TxHashSet::with_op_params(Arc::clone(&stm), buckets, max_load, read, update, scan);
        let handles = (1..ADAPTIVE_PHASES)
            .map(|slot| {
                let (read, update, scan) = adaptive_params(slot);
                slot0.clone_with_params(read, update, scan)
            })
            .collect::<Vec<_>>();
        let handles = std::iter::once(slot0).chain(handles).collect();
        (Self { handles, phase: PhaseState::new(), advisor }, stm)
    }

    #[inline]
    fn handle(&self) -> &TxHashSet {
        &self.handles[self.phase.slot()]
    }
}

impl ConcurrentSet for AdaptiveHashSet {
    fn contains(&self, key: u64) -> bool {
        self.handle().contains(key)
    }
    fn insert(&self, key: u64) -> bool {
        self.handle().insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.handle().remove(key)
    }
    fn note_phase(&self, phase: usize) {
        self.phase.set(phase);
    }
}

impl RangeSet for AdaptiveHashSet {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.handle().range_count_snapshot(lo, hi)
    }
}

// ---------------------------------------------------------------------
// Lock-based structures
// ---------------------------------------------------------------------

/// Hand-over-hand list adapter.
pub struct HohSet(pub HandOverHandList);

impl ConcurrentSet for HohSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key as i64)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key as i64)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key as i64)
    }
}

impl RangeSet for HohSet {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.0.range_count(lo as i64, hi as i64)
    }
}

/// Striped-lock hash adapter.
pub struct StripedSet(pub StripedHashSet);

impl ConcurrentSet for StripedSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key)
    }
}

impl RangeSet for StripedSet {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.0.range_count(lo, hi)
    }
}

/// Coarse global-lock set: the "one big lock" floor every comparison
/// should clear.
pub struct GlobalLockSet(pub Mutex<BTreeSet<u64>>);

impl ConcurrentSet for GlobalLockSet {
    fn contains(&self, key: u64) -> bool {
        self.0.lock().contains(&key)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.lock().insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.lock().remove(&key)
    }
}

impl RangeSet for GlobalLockSet {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        if lo >= hi {
            return 0;
        }
        self.0.lock().range(lo..hi).count()
    }
}

// ---------------------------------------------------------------------
// Lock-free structures
// ---------------------------------------------------------------------

/// Harris–Michael list adapter.
pub struct LockFreeListSet(pub polytm_lockfree::LockFreeList);

impl ConcurrentSet for LockFreeListSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key)
    }
}

impl RangeSet for LockFreeListSet {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.0.range_count(lo, hi)
    }
}

/// Michael hash-table adapter.
pub struct MichaelSet(pub MichaelHashSet);

impl ConcurrentSet for MichaelSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key)
    }
}

impl RangeSet for MichaelSet {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.0.range_count(lo, hi)
    }
}

/// Split-ordered list adapter.
pub struct SplitSet(pub SplitOrderedSet);

impl ConcurrentSet for SplitSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key)
    }
}

// ---------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------

/// The list-shaped implementations swept by E4/E5.
pub const LIST_IMPLS: &[&str] =
    &["tx-elastic", "tx-opaque", "tx-skiplist", "hoh-lock", "harris-michael", "global-lock"];

/// Construct a list implementation by name; the returned boxed set also
/// carries its own `Stm` where applicable (exposed via `stm` for stats).
pub fn make_list_impl(name: &str) -> (Box<dyn ConcurrentSet + Send + Sync>, Option<Arc<Stm>>) {
    match name {
        "tx-elastic" => {
            let stm = Arc::new(Stm::new());
            (Box::new(TxListSet(TxList::new(Arc::clone(&stm)))), Some(stm))
        }
        "tx-opaque" => {
            let stm = Arc::new(Stm::new());
            (
                Box::new(TxListSet(TxList::with_op_semantics(Arc::clone(&stm), Semantics::Opaque))),
                Some(stm),
            )
        }
        "tx-skiplist" => {
            let stm = Arc::new(Stm::new());
            (Box::new(TxSkipListSet(TxSkipList::new(Arc::clone(&stm)))), Some(stm))
        }
        "hoh-lock" => (Box::new(HohSet(HandOverHandList::new())), None),
        "harris-michael" => (Box::new(LockFreeListSet(polytm_lockfree::LockFreeList::new())), None),
        "global-lock" => (Box::new(GlobalLockSet(Mutex::new(BTreeSet::new()))), None),
        other => panic!("unknown list implementation {other:?}"),
    }
}

/// The hash-shaped implementations swept by E6.
pub const HASH_IMPLS: &[&str] =
    &["tx-hash-elastic", "tx-hash-opaque", "striped-lock", "split-ordered", "michael-fixed"];

/// Construct a hash implementation by name. `initial_buckets` seeds the
/// resizable tables (Michael's fixed table gets it as its *only* size —
/// that is its documented limitation).
pub fn make_hash_impl(
    name: &str,
    initial_buckets: usize,
) -> (Box<dyn ConcurrentSet + Send + Sync>, Option<Arc<Stm>>) {
    match name {
        "tx-hash-elastic" => {
            let stm = Arc::new(Stm::new());
            (
                Box::new(TxHashAdapter(TxHashSet::new(Arc::clone(&stm), initial_buckets, 8))),
                Some(stm),
            )
        }
        "tx-hash-opaque" => {
            let stm = Arc::new(Stm::new());
            (
                Box::new(TxHashAdapter(TxHashSet::with_op_semantics(
                    Arc::clone(&stm),
                    initial_buckets,
                    8,
                    Semantics::Opaque,
                ))),
                Some(stm),
            )
        }
        "striped-lock" => (Box::new(StripedSet(StripedHashSet::new(initial_buckets, 8))), None),
        "split-ordered" => (Box::new(SplitSet(SplitOrderedSet::new(1 << 16, 8))), None),
        "michael-fixed" => (Box::new(MichaelSet(MichaelHashSet::new(initial_buckets))), None),
        other => panic!("unknown hash implementation {other:?}"),
    }
}

impl RangeSet for SplitSet {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.0.range_count(lo, hi)
    }
}

// ---------------------------------------------------------------------
// Backend registry — the scenario matrix's axis of implementations
// ---------------------------------------------------------------------

/// Synchronization family of a backend — the comparison axis of the
/// paper: transactional vs lock-based vs lock-free implementations of
/// the same abstractions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Backed by the polymorphic STM.
    Transactional,
    /// Fine- or coarse-grained locking.
    LockBased,
    /// Non-blocking (CAS + epoch reclamation).
    LockFree,
}

impl Family {
    /// Short label used in bench row names.
    pub fn label(self) -> &'static str {
        match self {
            Family::Transactional => "tx",
            Family::LockBased => "lock",
            Family::LockFree => "lockfree",
        }
    }
}

/// Structural shape of a backend. List-shaped structures get smaller key
/// spaces than hash-shaped ones (O(n) vs O(1) point operations), mirroring
/// the E4-vs-E6 methodology; comparisons are meaningful within a shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Sorted list / skip list: O(n) or O(log n) point ops.
    Ordered,
    /// Hash table: O(1) point ops.
    Hash,
}

/// A live backend instance: the structure under test plus its `Stm`
/// handle when the backend is transactional (for abort accounting).
pub struct BackendInstance {
    /// The set, scan-capable, behind the driver's trait object.
    pub set: Box<dyn RangeSet + Send + Sync>,
    /// The STM the structure lives in — `None` for non-transactional
    /// backends.
    pub stm: Option<Arc<Stm>>,
}

/// One registered backend: a named constructor plus classification.
pub struct Backend {
    /// Stable name used in bench rows (e.g. `tx-list`).
    pub name: &'static str,
    /// Synchronization family.
    pub family: Family,
    /// Structural shape (drives the key-space choice).
    pub shape: Shape,
    make: fn() -> BackendInstance,
}

impl Backend {
    /// Construct a fresh instance of this backend.
    pub fn make(&self) -> BackendInstance {
        (self.make)()
    }
}

fn make_tx_list() -> BackendInstance {
    let stm = Arc::new(Stm::new());
    BackendInstance { set: Box::new(TxListSet(TxList::new(Arc::clone(&stm)))), stm: Some(stm) }
}

fn make_tx_skiplist() -> BackendInstance {
    let stm = Arc::new(Stm::new());
    BackendInstance {
        set: Box::new(TxSkipListSet(TxSkipList::new(Arc::clone(&stm)))),
        stm: Some(stm),
    }
}

fn make_tx_hash() -> BackendInstance {
    let stm = Arc::new(Stm::new());
    BackendInstance {
        set: Box::new(TxHashAdapter(TxHashSet::new(Arc::clone(&stm), 64, 8))),
        stm: Some(stm),
    }
}

fn make_lock_hoh_list() -> BackendInstance {
    BackendInstance { set: Box::new(HohSet(HandOverHandList::new())), stm: None }
}

fn make_lock_striped_hash() -> BackendInstance {
    BackendInstance { set: Box::new(StripedSet(StripedHashSet::new(64, 8))), stm: None }
}

fn make_lock_global() -> BackendInstance {
    BackendInstance { set: Box::new(GlobalLockSet(Mutex::new(BTreeSet::new()))), stm: None }
}

fn make_lockfree_list() -> BackendInstance {
    BackendInstance {
        set: Box::new(LockFreeListSet(polytm_lockfree::LockFreeList::new())),
        stm: None,
    }
}

fn make_lockfree_hash() -> BackendInstance {
    // Fixed table sized for the hash scenarios' steady state (~4k keys):
    // the inability to resize is this backend's documented limitation.
    BackendInstance { set: Box::new(MichaelSet(MichaelHashSet::new(1024))), stm: None }
}

fn make_lockfree_split() -> BackendInstance {
    BackendInstance { set: Box::new(SplitSet(SplitOrderedSet::new(1 << 16, 8))), stm: None }
}

fn make_adaptive_list() -> BackendInstance {
    let (set, stm) = AdaptiveListSet::new();
    BackendInstance { set: Box::new(set), stm: Some(stm) }
}

fn make_adaptive_hash() -> BackendInstance {
    let (set, stm) = AdaptiveHashSet::new(64, 8);
    BackendInstance { set: Box::new(set), stm: Some(stm) }
}

/// Every backend the scenario matrix drives: all three families, both
/// shapes. `scenarios --quick` and the full matrix iterate this table.
pub const BACKENDS: &[Backend] = &[
    Backend {
        name: "tx-list",
        family: Family::Transactional,
        shape: Shape::Ordered,
        make: make_tx_list,
    },
    Backend {
        name: "tx-skiplist",
        family: Family::Transactional,
        shape: Shape::Ordered,
        make: make_tx_skiplist,
    },
    Backend {
        name: "tx-hash",
        family: Family::Transactional,
        shape: Shape::Hash,
        make: make_tx_hash,
    },
    Backend {
        name: "lock-hoh-list",
        family: Family::LockBased,
        shape: Shape::Ordered,
        make: make_lock_hoh_list,
    },
    Backend {
        name: "lock-striped-hash",
        family: Family::LockBased,
        shape: Shape::Hash,
        make: make_lock_striped_hash,
    },
    Backend {
        name: "lock-global",
        family: Family::LockBased,
        shape: Shape::Ordered,
        make: make_lock_global,
    },
    Backend {
        name: "lockfree-list",
        family: Family::LockFree,
        shape: Shape::Ordered,
        make: make_lockfree_list,
    },
    Backend {
        name: "lockfree-hash",
        family: Family::LockFree,
        shape: Shape::Hash,
        make: make_lockfree_hash,
    },
    Backend {
        name: "lockfree-split",
        family: Family::LockFree,
        shape: Shape::Hash,
        make: make_lockfree_split,
    },
    Backend {
        name: "adaptive-list",
        family: Family::Transactional,
        shape: Shape::Ordered,
        make: make_adaptive_list,
    },
    Backend {
        name: "adaptive-hash",
        family: Family::Transactional,
        shape: Shape::Hash,
        make: make_adaptive_hash,
    },
];

// ---------------------------------------------------------------------
// KV backends — the YCSB-style record-store axis
// ---------------------------------------------------------------------

/// `polytm-kv` store driven through the workload crate's [`KvTable`].
/// Records are 8-byte values derived from the driver's value stream.
pub struct KvStoreTable(pub KvStore);

impl KvTable for KvStoreTable {
    fn read(&self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn update(&self, key: u64, value: u64) {
        self.0.put(key, Value::from_u64(value));
    }
    fn insert(&self, key: u64, value: u64) {
        self.0.put(key, Value::from_u64(value));
    }
    fn delete(&self, key: u64) -> bool {
        self.0.delete(key).is_some()
    }
    fn read_modify_write(&self, key: u64, value: u64) {
        self.0.modify(key, |cur| Value::from_u64(cur.and_then(Value::as_u64).unwrap_or(0) ^ value));
    }
    fn scan(&self, lo: u64, hi: u64) -> usize {
        self.0.range_count(lo, hi)
    }
    fn load(&self, entries: &[(u64, u64)]) {
        // Batched ingest: one transaction per chunk instead of one per
        // record (the chunk bound keeps each transaction's write set
        // small enough to stay conflict-friendly).
        for chunk in entries.chunks(256) {
            let batch: Vec<(u64, Value)> =
                chunk.iter().map(|&(k, v)| (k, Value::from_u64(v))).collect();
            self.0.multi_put(&batch);
        }
    }
}

/// The "one big lock" record-store control: a `Mutex<HashMap>`. Scans
/// hold the lock for their whole pass — trivially consistent, trivially
/// serial.
pub struct CoarseLockKv(pub Mutex<HashMap<u64, Value>>);

impl KvTable for CoarseLockKv {
    fn read(&self, key: u64) -> bool {
        self.0.lock().contains_key(&key)
    }
    fn update(&self, key: u64, value: u64) {
        self.0.lock().insert(key, Value::from_u64(value));
    }
    fn insert(&self, key: u64, value: u64) {
        self.0.lock().insert(key, Value::from_u64(value));
    }
    fn delete(&self, key: u64) -> bool {
        self.0.lock().remove(&key).is_some()
    }
    fn read_modify_write(&self, key: u64, value: u64) {
        let mut map = self.0.lock();
        let cur = map.get(&key).and_then(Value::as_u64).unwrap_or(0);
        map.insert(key, Value::from_u64(cur ^ value));
    }
    fn scan(&self, lo: u64, hi: u64) -> usize {
        self.0.lock().keys().filter(|&&k| lo <= k && k < hi).count()
    }
}

/// A live KV backend instance: the table plus its `Stm` handle when
/// transactional (for abort accounting).
pub struct KvBackendInstance {
    /// The record store behind the KV driver's trait object.
    pub table: Box<dyn KvTable + Send + Sync>,
    /// The STM the store lives in — `None` for the lock control.
    pub stm: Option<Arc<Stm>>,
}

/// One registered KV backend.
pub struct KvBackend {
    /// Stable name used in bench rows (e.g. `kv-sharded`).
    pub name: &'static str,
    /// Synchronization family.
    pub family: Family,
    make: fn() -> KvBackendInstance,
}

impl KvBackend {
    /// Construct a fresh instance of this backend.
    pub fn make(&self) -> KvBackendInstance {
        (self.make)()
    }
}

fn make_kv_sharded() -> KvBackendInstance {
    let stm = Arc::new(Stm::new());
    let store = KvStore::with_config(
        Arc::clone(&stm),
        KvConfig { shards: 16, initial_slots: 64, params: KvParams::fixed() },
    );
    KvBackendInstance { table: Box::new(KvStoreTable(store)), stm: Some(stm) }
}

fn make_kv_adaptive() -> KvBackendInstance {
    // The sharded store under a live advisor: each operation kind is
    // its own transaction class (reads may converge to snapshot;
    // writers request opaque, which plans can escalate but never
    // weaken).
    let advisor = Arc::new(Advisor::default());
    let stm = Arc::new(Stm::with_advisor(StmConfig::default(), advisor as _));
    let store = KvStore::with_config(
        Arc::clone(&stm),
        KvConfig { shards: 16, initial_slots: 64, params: KvParams::classed(0) },
    );
    KvBackendInstance { table: Box::new(KvStoreTable(store)), stm: Some(stm) }
}

fn make_kv_single() -> KvBackendInstance {
    // One shard: same store, no sharding — isolates what the shard
    // fan-out buys from what the STM itself costs.
    let stm = Arc::new(Stm::new());
    let store = KvStore::with_config(
        Arc::clone(&stm),
        KvConfig { shards: 1, initial_slots: 1024, params: KvParams::fixed() },
    );
    KvBackendInstance { table: Box::new(KvStoreTable(store)), stm: Some(stm) }
}

fn make_kv_coarse_lock() -> KvBackendInstance {
    KvBackendInstance { table: Box::new(CoarseLockKv(Mutex::new(HashMap::new()))), stm: None }
}

/// The durable store behind the KV driver: every mutation is a logged
/// transaction over a real on-disk WAL (a fresh temp directory per
/// instance, deleted on drop). The durability counters it feeds the
/// STM stats become the `commits_durable`/`fsyncs`/`wal_bytes` bench
/// columns.
pub struct DurableKvTable {
    store: DurableKv,
    dir: std::path::PathBuf,
}

impl DurableKvTable {
    fn open(mode: Durability) -> Self {
        static INSTANCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = INSTANCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("polytm-bench-wal-{}-{n}", std::process::id()));
        let fs = Arc::new(RealFs::open(&dir).expect("create bench WAL directory"));
        let store = DurableKv::open(
            fs,
            DurableKvConfig {
                kv: KvConfig { shards: 16, initial_slots: 64, params: KvParams::fixed() },
                wal: WalConfig { mode, ..WalConfig::default() },
            },
        )
        .expect("open durable bench store");
        Self { store, dir }
    }
}

impl Drop for DurableKvTable {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl KvTable for DurableKvTable {
    fn read(&self, key: u64) -> bool {
        self.store.contains(key)
    }
    fn update(&self, key: u64, value: u64) {
        self.store.put(key, Value::from_u64(value)).expect("bench WAL healthy");
    }
    fn insert(&self, key: u64, value: u64) {
        self.store.put(key, Value::from_u64(value)).expect("bench WAL healthy");
    }
    fn delete(&self, key: u64) -> bool {
        self.store.delete(key).expect("bench WAL healthy").is_some()
    }
    fn read_modify_write(&self, key: u64, value: u64) {
        self.store
            .txn(|tx| {
                let cur = tx.get(key)?.and_then(|v| v.as_u64()).unwrap_or(0);
                tx.put(key, Value::from_u64(cur ^ value))?;
                Ok(())
            })
            .expect("bench WAL healthy");
    }
    fn scan(&self, lo: u64, hi: u64) -> usize {
        self.store.range_count(lo, hi)
    }
    fn load(&self, entries: &[(u64, u64)]) {
        let batch: Vec<(u64, Value)> =
            entries.iter().map(|&(k, v)| (k, Value::from_u64(v))).collect();
        self.store.multi_put(&batch).expect("bench WAL healthy");
    }
}

fn make_kv_durable_sync() -> KvBackendInstance {
    let table = DurableKvTable::open(Durability::Sync);
    let stm = Arc::clone(table.store.stm());
    KvBackendInstance { table: Box::new(table), stm: Some(stm) }
}

fn make_kv_durable_async() -> KvBackendInstance {
    let table = DurableKvTable::open(Durability::Async);
    let stm = Arc::clone(table.store.stm());
    KvBackendInstance { table: Box::new(table), stm: Some(stm) }
}

// ---------------------------------------------------------------------
// Server (network front end) backends
// ---------------------------------------------------------------------

/// Cleans up a durable server store's WAL directory once the store is
/// gone (field order in [`ServerStoreInstance`] drops the store
/// first).
pub struct WalDirGuard(std::path::PathBuf);

impl Drop for WalDirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A live store for the `server-kv` scenario wing: something to put
/// behind `polytm_server::Server::spawn`, plus the STM whose stats the
/// row reports.
pub struct ServerStoreInstance {
    /// The store the server fronts.
    pub store: Arc<dyn polytm_server::ServerStore>,
    /// Its STM, for abort/durability columns.
    pub stm: Arc<Stm>,
    /// Deletes the WAL temp directory after the store drops.
    _guard: Option<WalDirGuard>,
}

/// A named server-store constructor for the `server-kv` wing.
pub struct ServerBackend {
    /// Row name, e.g. `kv-sharded`.
    pub name: &'static str,
    /// Family label for `--backend` filtering.
    pub family: Family,
    make: fn() -> ServerStoreInstance,
}

impl ServerBackend {
    /// Construct a fresh instance of this backend.
    pub fn make(&self) -> ServerStoreInstance {
        (self.make)()
    }
}

fn make_server_kv_sharded() -> ServerStoreInstance {
    let stm = Arc::new(Stm::new());
    let store = Arc::new(KvStore::with_config(
        Arc::clone(&stm),
        KvConfig { shards: 16, initial_slots: 64, params: KvParams::fixed() },
    ));
    ServerStoreInstance { store, stm, _guard: None }
}

fn make_server_kv_durable_async() -> ServerStoreInstance {
    static INSTANCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = INSTANCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("polytm-bench-server-wal-{}-{n}", std::process::id()));
    let fs = Arc::new(RealFs::open(&dir).expect("create server bench WAL directory"));
    let store = Arc::new(
        DurableKv::open(
            fs,
            DurableKvConfig {
                kv: KvConfig { shards: 16, initial_slots: 64, params: KvParams::fixed() },
                wal: WalConfig { mode: Durability::Async, ..WalConfig::default() },
            },
        )
        .expect("open durable server bench store"),
    );
    let stm = Arc::clone(store.stm());
    ServerStoreInstance { store, stm, _guard: Some(WalDirGuard(dir)) }
}

/// The stores the network front end is benchmarked over: the plain
/// sharded store (pure event-loop + STM cost) and the async-durability
/// WAL store (adds group commit underneath the server's own
/// coalescing).
pub const SERVER_BACKENDS: &[ServerBackend] = &[
    ServerBackend {
        name: "kv-sharded",
        family: Family::Transactional,
        make: make_server_kv_sharded,
    },
    ServerBackend {
        name: "kv-durable-async",
        family: Family::Transactional,
        make: make_server_kv_durable_async,
    },
];

/// Every KV backend the YCSB scenario family drives.
pub const KV_BACKENDS: &[KvBackend] = &[
    KvBackend { name: "kv-sharded", family: Family::Transactional, make: make_kv_sharded },
    KvBackend { name: "kv-adaptive", family: Family::Transactional, make: make_kv_adaptive },
    KvBackend { name: "kv-single", family: Family::Transactional, make: make_kv_single },
    KvBackend { name: "kv-coarse-lock", family: Family::LockBased, make: make_kv_coarse_lock },
    KvBackend {
        name: "kv-durable-sync",
        family: Family::Transactional,
        make: make_kv_durable_sync,
    },
    KvBackend {
        name: "kv-durable-async",
        family: Family::Transactional,
        make: make_kv_durable_async,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_list_impl_behaves_like_a_set() {
        for name in LIST_IMPLS {
            let (set, _stm) = make_list_impl(name);
            assert!(set.insert(5), "{name}");
            assert!(!set.insert(5), "{name}");
            assert!(set.contains(5), "{name}");
            assert!(!set.contains(6), "{name}");
            assert!(set.remove(5), "{name}");
            assert!(!set.remove(5), "{name}");
        }
    }

    #[test]
    fn every_hash_impl_behaves_like_a_set() {
        for name in HASH_IMPLS {
            let (set, _stm) = make_hash_impl(name, 8);
            assert!(set.insert(42), "{name}");
            assert!(!set.insert(42), "{name}");
            assert!(set.contains(42), "{name}");
            assert!(set.remove(42), "{name}");
            assert!(!set.contains(42), "{name}");
        }
    }

    #[test]
    fn impl_lists_and_factories_agree() {
        assert_eq!(LIST_IMPLS.len(), 6);
        assert_eq!(HASH_IMPLS.len(), 5);
    }

    #[test]
    fn adaptive_backends_are_registered_and_transactional() {
        let adaptive: Vec<_> =
            BACKENDS.iter().filter(|b| b.name.starts_with("adaptive-")).collect();
        assert!(adaptive.len() >= 2, "at least two adaptive backends must be registered");
        assert!(adaptive.iter().any(|b| b.shape == Shape::Ordered));
        assert!(adaptive.iter().any(|b| b.shape == Shape::Hash));
        for b in &adaptive {
            assert_eq!(b.family, Family::Transactional, "{}", b.name);
        }
    }

    #[test]
    fn adaptive_backends_classify_ops_and_respect_phases() {
        let (set, stm) = AdaptiveListSet::new();
        let advisor = Arc::clone(&set.advisor);
        // Drive enough classified operations through the advisor for at
        // least one epoch to close (default epoch is 512 runs).
        for k in 0..64 {
            assert!(set.insert(k), "{k}");
        }
        for _ in 0..10 {
            for k in 0..64 {
                assert!(set.contains(k));
                std::hint::black_box(set.range_count(0, 64));
            }
        }
        assert!(advisor.epochs() >= 1, "epochs must close under load");
        // Class layout: phase-0 read class 0, update class 1, scan class 2.
        assert!(!advisor.has_written(polytm::ClassId(0)), "contains never writes");
        assert!(advisor.has_written(polytm::ClassId(1)), "inserts write");
        assert!(!advisor.has_written(polytm::ClassId(2)), "scans never write");
        // Phase switch moves subsequent ops to the next class group.
        set.note_phase(1);
        assert!(set.insert(1000));
        assert!(advisor.has_written(polytm::ClassId(3 + 1)), "phase-1 update class");
        set.note_phase(0);
        assert!(set.remove(1000));
        // The structure still behaves like a set throughout.
        assert_eq!(set.range_count(0, 64), 64);
        assert!(stm.stats().commits > 0);
    }

    #[test]
    fn adaptive_hash_behaves_like_a_set_across_phases() {
        let (set, _stm) = AdaptiveHashSet::new(8, 4);
        for k in 0..200 {
            assert!(set.insert(k), "{k}");
        }
        set.note_phase(2);
        for k in 0..200 {
            assert!(set.contains(k), "{k}");
        }
        assert_eq!(set.range_count(50, 150), 100);
        set.note_phase(0);
        for k in 0..200 {
            assert!(set.remove(k), "{k}");
        }
        assert_eq!(set.range_count(0, 200), 0);
    }

    #[test]
    fn every_kv_backend_behaves_like_a_record_store() {
        for b in KV_BACKENDS {
            let inst = b.make();
            let t = inst.table.as_ref();
            assert!(!t.read(5), "{}", b.name);
            t.insert(5, 50);
            assert!(t.read(5), "{}", b.name);
            t.update(5, 51);
            t.read_modify_write(5, 0xFF);
            for k in 10..20 {
                t.insert(k, k);
            }
            assert_eq!(t.scan(10, 20), 10, "{}", b.name);
            assert_eq!(t.scan(10, 15), 5, "{}", b.name);
            assert!(t.delete(5), "{}", b.name);
            assert!(!t.delete(5), "{}", b.name);
            assert!(!t.read(5), "{}", b.name);
            assert_eq!(
                inst.stm.is_some(),
                b.family == Family::Transactional,
                "{}: stm handle iff transactional",
                b.name
            );
        }
        let mut names: Vec<_> = KV_BACKENDS.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), KV_BACKENDS.len(), "kv backend names must be unique");
        assert!(KV_BACKENDS.len() >= 3, "sharded, single-shard and coarse-lock at minimum");
    }

    #[test]
    fn adaptive_kv_backend_classifies_under_load() {
        let inst = KV_BACKENDS.iter().find(|b| b.name == "kv-adaptive").unwrap().make();
        let t = inst.table.as_ref();
        for k in 0..256u64 {
            t.insert(k, k);
        }
        for _ in 0..6 {
            for k in 0..256u64 {
                assert!(t.read(k));
            }
        }
        let stm = inst.stm.as_ref().unwrap();
        let advisor = stm.advisor().expect("adaptive backend installs an advisor");
        // The advisor observed classed runs; regardless of what it
        // selected, the store must still behave like a record store.
        let plan = advisor.plan(polytm::ClassId(0), 0, Semantics::elastic());
        assert_ne!(plan.semantics, Semantics::Irrevocable, "calm reads never escalate");
        assert!(t.read(0));
        t.read_modify_write(0, 7);
        assert!(t.delete(0));
        assert!(stm.stats().commits > 0);
    }

    #[test]
    fn registry_covers_all_three_families() {
        for family in [Family::Transactional, Family::LockBased, Family::LockFree] {
            assert!(
                BACKENDS.iter().any(|b| b.family == family),
                "no backend registered for {family:?}"
            );
        }
        let mut names: Vec<_> = BACKENDS.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BACKENDS.len(), "backend names must be unique");
    }

    #[test]
    fn every_backend_supports_point_and_range_ops() {
        for b in BACKENDS {
            let inst = b.make();
            let set = inst.set.as_ref();
            for k in [10u64, 20, 30, 40] {
                assert!(set.insert(k), "{}", b.name);
            }
            assert!(!set.insert(20), "{}", b.name);
            assert!(set.contains(30), "{}", b.name);
            assert!(!set.contains(31), "{}", b.name);
            assert_eq!(set.range_count(10, 41), 4, "{}", b.name);
            assert_eq!(set.range_count(15, 35), 2, "{}", b.name);
            assert_eq!(set.range_count(15, 15), 0, "{}", b.name);
            assert!(set.remove(20), "{}", b.name);
            assert_eq!(set.range_count(10, 41), 3, "{}", b.name);
            assert_eq!(
                inst.stm.is_some(),
                b.family == Family::Transactional,
                "{}: stm handle iff transactional",
                b.name
            );
        }
    }
}
