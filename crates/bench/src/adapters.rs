//! [`ConcurrentSet`] / [`RangeSet`] adapters for every implementation
//! under test, plus the [`Backend`] registry the scenario matrix sweeps.

use std::collections::BTreeSet;
use std::sync::Arc;

use parking_lot::Mutex;
use polytm::{Semantics, Stm};
use polytm_lockfree::{MichaelHashSet, SplitOrderedSet};
use polytm_locks::{HandOverHandList, StripedHashSet};
use polytm_structures::{TxHashSet, TxList, TxSkipList};
use polytm_workload::{ConcurrentSet, RangeSet};

// ---------------------------------------------------------------------
// Transactional structures
// ---------------------------------------------------------------------

/// TxList under any per-op semantics.
pub struct TxListSet(pub TxList);

impl ConcurrentSet for TxListSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key as i64)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key as i64)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key as i64)
    }
}

impl RangeSet for TxListSet {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.0.range_count_snapshot(lo as i64, hi as i64)
    }
}

/// TxSkipList under any per-op semantics.
pub struct TxSkipListSet(pub TxSkipList);

impl ConcurrentSet for TxSkipListSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key as i64)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key as i64)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key as i64)
    }
}

impl RangeSet for TxSkipListSet {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.0.range_count_snapshot(lo as i64, hi as i64)
    }
}

/// TxHashSet under any per-op semantics.
pub struct TxHashAdapter(pub TxHashSet);

impl ConcurrentSet for TxHashAdapter {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key)
    }
}

impl RangeSet for TxHashAdapter {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.0.range_count_snapshot(lo, hi)
    }
}

// ---------------------------------------------------------------------
// Lock-based structures
// ---------------------------------------------------------------------

/// Hand-over-hand list adapter.
pub struct HohSet(pub HandOverHandList);

impl ConcurrentSet for HohSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key as i64)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key as i64)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key as i64)
    }
}

impl RangeSet for HohSet {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.0.range_count(lo as i64, hi as i64)
    }
}

/// Striped-lock hash adapter.
pub struct StripedSet(pub StripedHashSet);

impl ConcurrentSet for StripedSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key)
    }
}

impl RangeSet for StripedSet {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.0.range_count(lo, hi)
    }
}

/// Coarse global-lock set: the "one big lock" floor every comparison
/// should clear.
pub struct GlobalLockSet(pub Mutex<BTreeSet<u64>>);

impl ConcurrentSet for GlobalLockSet {
    fn contains(&self, key: u64) -> bool {
        self.0.lock().contains(&key)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.lock().insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.lock().remove(&key)
    }
}

impl RangeSet for GlobalLockSet {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        if lo >= hi {
            return 0;
        }
        self.0.lock().range(lo..hi).count()
    }
}

// ---------------------------------------------------------------------
// Lock-free structures
// ---------------------------------------------------------------------

/// Harris–Michael list adapter.
pub struct LockFreeListSet(pub polytm_lockfree::LockFreeList);

impl ConcurrentSet for LockFreeListSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key)
    }
}

impl RangeSet for LockFreeListSet {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.0.range_count(lo, hi)
    }
}

/// Michael hash-table adapter.
pub struct MichaelSet(pub MichaelHashSet);

impl ConcurrentSet for MichaelSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key)
    }
}

impl RangeSet for MichaelSet {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.0.range_count(lo, hi)
    }
}

/// Split-ordered list adapter.
pub struct SplitSet(pub SplitOrderedSet);

impl ConcurrentSet for SplitSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key)
    }
}

// ---------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------

/// The list-shaped implementations swept by E4/E5.
pub const LIST_IMPLS: &[&str] =
    &["tx-elastic", "tx-opaque", "tx-skiplist", "hoh-lock", "harris-michael", "global-lock"];

/// Construct a list implementation by name; the returned boxed set also
/// carries its own `Stm` where applicable (exposed via `stm` for stats).
pub fn make_list_impl(name: &str) -> (Box<dyn ConcurrentSet + Send + Sync>, Option<Arc<Stm>>) {
    match name {
        "tx-elastic" => {
            let stm = Arc::new(Stm::new());
            (Box::new(TxListSet(TxList::new(Arc::clone(&stm)))), Some(stm))
        }
        "tx-opaque" => {
            let stm = Arc::new(Stm::new());
            (
                Box::new(TxListSet(TxList::with_op_semantics(Arc::clone(&stm), Semantics::Opaque))),
                Some(stm),
            )
        }
        "tx-skiplist" => {
            let stm = Arc::new(Stm::new());
            (Box::new(TxSkipListSet(TxSkipList::new(Arc::clone(&stm)))), Some(stm))
        }
        "hoh-lock" => (Box::new(HohSet(HandOverHandList::new())), None),
        "harris-michael" => (Box::new(LockFreeListSet(polytm_lockfree::LockFreeList::new())), None),
        "global-lock" => (Box::new(GlobalLockSet(Mutex::new(BTreeSet::new()))), None),
        other => panic!("unknown list implementation {other:?}"),
    }
}

/// The hash-shaped implementations swept by E6.
pub const HASH_IMPLS: &[&str] =
    &["tx-hash-elastic", "tx-hash-opaque", "striped-lock", "split-ordered", "michael-fixed"];

/// Construct a hash implementation by name. `initial_buckets` seeds the
/// resizable tables (Michael's fixed table gets it as its *only* size —
/// that is its documented limitation).
pub fn make_hash_impl(
    name: &str,
    initial_buckets: usize,
) -> (Box<dyn ConcurrentSet + Send + Sync>, Option<Arc<Stm>>) {
    match name {
        "tx-hash-elastic" => {
            let stm = Arc::new(Stm::new());
            (
                Box::new(TxHashAdapter(TxHashSet::new(Arc::clone(&stm), initial_buckets, 8))),
                Some(stm),
            )
        }
        "tx-hash-opaque" => {
            let stm = Arc::new(Stm::new());
            (
                Box::new(TxHashAdapter(TxHashSet::with_op_semantics(
                    Arc::clone(&stm),
                    initial_buckets,
                    8,
                    Semantics::Opaque,
                ))),
                Some(stm),
            )
        }
        "striped-lock" => (Box::new(StripedSet(StripedHashSet::new(initial_buckets, 8))), None),
        "split-ordered" => (Box::new(SplitSet(SplitOrderedSet::new(1 << 16, 8))), None),
        "michael-fixed" => (Box::new(MichaelSet(MichaelHashSet::new(initial_buckets))), None),
        other => panic!("unknown hash implementation {other:?}"),
    }
}

impl RangeSet for SplitSet {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.0.range_count(lo, hi)
    }
}

// ---------------------------------------------------------------------
// Backend registry — the scenario matrix's axis of implementations
// ---------------------------------------------------------------------

/// Synchronization family of a backend — the comparison axis of the
/// paper: transactional vs lock-based vs lock-free implementations of
/// the same abstractions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Backed by the polymorphic STM.
    Transactional,
    /// Fine- or coarse-grained locking.
    LockBased,
    /// Non-blocking (CAS + epoch reclamation).
    LockFree,
}

impl Family {
    /// Short label used in bench row names.
    pub fn label(self) -> &'static str {
        match self {
            Family::Transactional => "tx",
            Family::LockBased => "lock",
            Family::LockFree => "lockfree",
        }
    }
}

/// Structural shape of a backend. List-shaped structures get smaller key
/// spaces than hash-shaped ones (O(n) vs O(1) point operations), mirroring
/// the E4-vs-E6 methodology; comparisons are meaningful within a shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Sorted list / skip list: O(n) or O(log n) point ops.
    Ordered,
    /// Hash table: O(1) point ops.
    Hash,
}

/// A live backend instance: the structure under test plus its `Stm`
/// handle when the backend is transactional (for abort accounting).
pub struct BackendInstance {
    /// The set, scan-capable, behind the driver's trait object.
    pub set: Box<dyn RangeSet + Send + Sync>,
    /// The STM the structure lives in — `None` for non-transactional
    /// backends.
    pub stm: Option<Arc<Stm>>,
}

/// One registered backend: a named constructor plus classification.
pub struct Backend {
    /// Stable name used in bench rows (e.g. `tx-list`).
    pub name: &'static str,
    /// Synchronization family.
    pub family: Family,
    /// Structural shape (drives the key-space choice).
    pub shape: Shape,
    make: fn() -> BackendInstance,
}

impl Backend {
    /// Construct a fresh instance of this backend.
    pub fn make(&self) -> BackendInstance {
        (self.make)()
    }
}

fn make_tx_list() -> BackendInstance {
    let stm = Arc::new(Stm::new());
    BackendInstance { set: Box::new(TxListSet(TxList::new(Arc::clone(&stm)))), stm: Some(stm) }
}

fn make_tx_skiplist() -> BackendInstance {
    let stm = Arc::new(Stm::new());
    BackendInstance {
        set: Box::new(TxSkipListSet(TxSkipList::new(Arc::clone(&stm)))),
        stm: Some(stm),
    }
}

fn make_tx_hash() -> BackendInstance {
    let stm = Arc::new(Stm::new());
    BackendInstance {
        set: Box::new(TxHashAdapter(TxHashSet::new(Arc::clone(&stm), 64, 8))),
        stm: Some(stm),
    }
}

fn make_lock_hoh_list() -> BackendInstance {
    BackendInstance { set: Box::new(HohSet(HandOverHandList::new())), stm: None }
}

fn make_lock_striped_hash() -> BackendInstance {
    BackendInstance { set: Box::new(StripedSet(StripedHashSet::new(64, 8))), stm: None }
}

fn make_lock_global() -> BackendInstance {
    BackendInstance { set: Box::new(GlobalLockSet(Mutex::new(BTreeSet::new()))), stm: None }
}

fn make_lockfree_list() -> BackendInstance {
    BackendInstance {
        set: Box::new(LockFreeListSet(polytm_lockfree::LockFreeList::new())),
        stm: None,
    }
}

fn make_lockfree_hash() -> BackendInstance {
    // Fixed table sized for the hash scenarios' steady state (~4k keys):
    // the inability to resize is this backend's documented limitation.
    BackendInstance { set: Box::new(MichaelSet(MichaelHashSet::new(1024))), stm: None }
}

fn make_lockfree_split() -> BackendInstance {
    BackendInstance { set: Box::new(SplitSet(SplitOrderedSet::new(1 << 16, 8))), stm: None }
}

/// Every backend the scenario matrix drives: all three families, both
/// shapes. `scenarios --quick` and the full matrix iterate this table.
pub const BACKENDS: &[Backend] = &[
    Backend {
        name: "tx-list",
        family: Family::Transactional,
        shape: Shape::Ordered,
        make: make_tx_list,
    },
    Backend {
        name: "tx-skiplist",
        family: Family::Transactional,
        shape: Shape::Ordered,
        make: make_tx_skiplist,
    },
    Backend {
        name: "tx-hash",
        family: Family::Transactional,
        shape: Shape::Hash,
        make: make_tx_hash,
    },
    Backend {
        name: "lock-hoh-list",
        family: Family::LockBased,
        shape: Shape::Ordered,
        make: make_lock_hoh_list,
    },
    Backend {
        name: "lock-striped-hash",
        family: Family::LockBased,
        shape: Shape::Hash,
        make: make_lock_striped_hash,
    },
    Backend {
        name: "lock-global",
        family: Family::LockBased,
        shape: Shape::Ordered,
        make: make_lock_global,
    },
    Backend {
        name: "lockfree-list",
        family: Family::LockFree,
        shape: Shape::Ordered,
        make: make_lockfree_list,
    },
    Backend {
        name: "lockfree-hash",
        family: Family::LockFree,
        shape: Shape::Hash,
        make: make_lockfree_hash,
    },
    Backend {
        name: "lockfree-split",
        family: Family::LockFree,
        shape: Shape::Hash,
        make: make_lockfree_split,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_list_impl_behaves_like_a_set() {
        for name in LIST_IMPLS {
            let (set, _stm) = make_list_impl(name);
            assert!(set.insert(5), "{name}");
            assert!(!set.insert(5), "{name}");
            assert!(set.contains(5), "{name}");
            assert!(!set.contains(6), "{name}");
            assert!(set.remove(5), "{name}");
            assert!(!set.remove(5), "{name}");
        }
    }

    #[test]
    fn every_hash_impl_behaves_like_a_set() {
        for name in HASH_IMPLS {
            let (set, _stm) = make_hash_impl(name, 8);
            assert!(set.insert(42), "{name}");
            assert!(!set.insert(42), "{name}");
            assert!(set.contains(42), "{name}");
            assert!(set.remove(42), "{name}");
            assert!(!set.contains(42), "{name}");
        }
    }

    #[test]
    fn impl_lists_and_factories_agree() {
        assert_eq!(LIST_IMPLS.len(), 6);
        assert_eq!(HASH_IMPLS.len(), 5);
    }

    #[test]
    fn registry_covers_all_three_families() {
        for family in [Family::Transactional, Family::LockBased, Family::LockFree] {
            assert!(
                BACKENDS.iter().any(|b| b.family == family),
                "no backend registered for {family:?}"
            );
        }
        let mut names: Vec<_> = BACKENDS.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BACKENDS.len(), "backend names must be unique");
    }

    #[test]
    fn every_backend_supports_point_and_range_ops() {
        for b in BACKENDS {
            let inst = b.make();
            let set = inst.set.as_ref();
            for k in [10u64, 20, 30, 40] {
                assert!(set.insert(k), "{}", b.name);
            }
            assert!(!set.insert(20), "{}", b.name);
            assert!(set.contains(30), "{}", b.name);
            assert!(!set.contains(31), "{}", b.name);
            assert_eq!(set.range_count(10, 41), 4, "{}", b.name);
            assert_eq!(set.range_count(15, 35), 2, "{}", b.name);
            assert_eq!(set.range_count(15, 15), 0, "{}", b.name);
            assert!(set.remove(20), "{}", b.name);
            assert_eq!(set.range_count(10, 41), 3, "{}", b.name);
            assert_eq!(
                inst.stm.is_some(),
                b.family == Family::Transactional,
                "{}: stm handle iff transactional",
                b.name
            );
        }
    }
}
