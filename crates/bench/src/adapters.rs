//! [`ConcurrentSet`] adapters for every implementation under test, so the
//! workload driver can sweep them uniformly.

use std::collections::BTreeSet;
use std::sync::Arc;

use parking_lot::Mutex;
use polytm::{Semantics, Stm};
use polytm_lockfree::{MichaelHashSet, SplitOrderedSet};
use polytm_locks::{HandOverHandList, StripedHashSet};
use polytm_structures::{TxHashSet, TxList, TxSkipList};
use polytm_workload::ConcurrentSet;

// ---------------------------------------------------------------------
// Transactional structures
// ---------------------------------------------------------------------

/// TxList under any per-op semantics.
pub struct TxListSet(pub TxList);

impl ConcurrentSet for TxListSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key as i64)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key as i64)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key as i64)
    }
}

/// TxSkipList under any per-op semantics.
pub struct TxSkipListSet(pub TxSkipList);

impl ConcurrentSet for TxSkipListSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key as i64)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key as i64)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key as i64)
    }
}

/// TxHashSet under any per-op semantics.
pub struct TxHashAdapter(pub TxHashSet);

impl ConcurrentSet for TxHashAdapter {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key)
    }
}

// ---------------------------------------------------------------------
// Lock-based structures
// ---------------------------------------------------------------------

/// Hand-over-hand list adapter.
pub struct HohSet(pub HandOverHandList);

impl ConcurrentSet for HohSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key as i64)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key as i64)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key as i64)
    }
}

/// Striped-lock hash adapter.
pub struct StripedSet(pub StripedHashSet);

impl ConcurrentSet for StripedSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key)
    }
}

/// Coarse global-lock set: the "one big lock" floor every comparison
/// should clear.
pub struct GlobalLockSet(pub Mutex<BTreeSet<u64>>);

impl ConcurrentSet for GlobalLockSet {
    fn contains(&self, key: u64) -> bool {
        self.0.lock().contains(&key)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.lock().insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.lock().remove(&key)
    }
}

// ---------------------------------------------------------------------
// Lock-free structures
// ---------------------------------------------------------------------

/// Harris–Michael list adapter.
pub struct LockFreeListSet(pub polytm_lockfree::LockFreeList);

impl ConcurrentSet for LockFreeListSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key)
    }
}

/// Michael hash-table adapter.
pub struct MichaelSet(pub MichaelHashSet);

impl ConcurrentSet for MichaelSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key)
    }
}

/// Split-ordered list adapter.
pub struct SplitSet(pub SplitOrderedSet);

impl ConcurrentSet for SplitSet {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key)
    }
}

// ---------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------

/// The list-shaped implementations swept by E4/E5.
pub const LIST_IMPLS: &[&str] =
    &["tx-elastic", "tx-opaque", "tx-skiplist", "hoh-lock", "harris-michael", "global-lock"];

/// Construct a list implementation by name; the returned boxed set also
/// carries its own `Stm` where applicable (exposed via `stm` for stats).
pub fn make_list_impl(name: &str) -> (Box<dyn ConcurrentSet + Send + Sync>, Option<Arc<Stm>>) {
    match name {
        "tx-elastic" => {
            let stm = Arc::new(Stm::new());
            (Box::new(TxListSet(TxList::new(Arc::clone(&stm)))), Some(stm))
        }
        "tx-opaque" => {
            let stm = Arc::new(Stm::new());
            (
                Box::new(TxListSet(TxList::with_op_semantics(Arc::clone(&stm), Semantics::Opaque))),
                Some(stm),
            )
        }
        "tx-skiplist" => {
            let stm = Arc::new(Stm::new());
            (Box::new(TxSkipListSet(TxSkipList::new(Arc::clone(&stm)))), Some(stm))
        }
        "hoh-lock" => (Box::new(HohSet(HandOverHandList::new())), None),
        "harris-michael" => (Box::new(LockFreeListSet(polytm_lockfree::LockFreeList::new())), None),
        "global-lock" => (Box::new(GlobalLockSet(Mutex::new(BTreeSet::new()))), None),
        other => panic!("unknown list implementation {other:?}"),
    }
}

/// The hash-shaped implementations swept by E6.
pub const HASH_IMPLS: &[&str] =
    &["tx-hash-elastic", "tx-hash-opaque", "striped-lock", "split-ordered", "michael-fixed"];

/// Construct a hash implementation by name. `initial_buckets` seeds the
/// resizable tables (Michael's fixed table gets it as its *only* size —
/// that is its documented limitation).
pub fn make_hash_impl(
    name: &str,
    initial_buckets: usize,
) -> (Box<dyn ConcurrentSet + Send + Sync>, Option<Arc<Stm>>) {
    match name {
        "tx-hash-elastic" => {
            let stm = Arc::new(Stm::new());
            (
                Box::new(TxHashAdapter(TxHashSet::new(Arc::clone(&stm), initial_buckets, 8))),
                Some(stm),
            )
        }
        "tx-hash-opaque" => {
            let stm = Arc::new(Stm::new());
            (
                Box::new(TxHashAdapter(TxHashSet::with_op_semantics(
                    Arc::clone(&stm),
                    initial_buckets,
                    8,
                    Semantics::Opaque,
                ))),
                Some(stm),
            )
        }
        "striped-lock" => (Box::new(StripedSet(StripedHashSet::new(initial_buckets, 8))), None),
        "split-ordered" => (Box::new(SplitSet(SplitOrderedSet::new(1 << 16, 8))), None),
        "michael-fixed" => (Box::new(MichaelSet(MichaelHashSet::new(initial_buckets))), None),
        other => panic!("unknown hash implementation {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_list_impl_behaves_like_a_set() {
        for name in LIST_IMPLS {
            let (set, _stm) = make_list_impl(name);
            assert!(set.insert(5), "{name}");
            assert!(!set.insert(5), "{name}");
            assert!(set.contains(5), "{name}");
            assert!(!set.contains(6), "{name}");
            assert!(set.remove(5), "{name}");
            assert!(!set.remove(5), "{name}");
        }
    }

    #[test]
    fn every_hash_impl_behaves_like_a_set() {
        for name in HASH_IMPLS {
            let (set, _stm) = make_hash_impl(name, 8);
            assert!(set.insert(42), "{name}");
            assert!(!set.insert(42), "{name}");
            assert!(set.contains(42), "{name}");
            assert!(set.remove(42), "{name}");
            assert!(!set.contains(42), "{name}");
        }
    }

    #[test]
    fn impl_lists_and_factories_agree() {
        assert_eq!(LIST_IMPLS.len(), 6);
        assert_eq!(HASH_IMPLS.len(), 5);
    }
}
