//! Machine-readable bench trajectory files: row emission shared by
//! `perfsuite` and `scenarios`, plus the parser/validator behind
//! `benchlint` (and CI's schema check).
//!
//! A trajectory file is a JSON array with one row object per line:
//!
//! ```text
//! [
//!   {"rev":"abc1234","label":"before","bench":"...","threads":1,...},
//!   {"rev":"abc1234","label":"after","bench":"...","threads":2,...}
//! ]
//! ```
//!
//! Successive runs append rows, so a perf PR's before/after is a plain
//! line diff. The validator parses the whole file (full JSON grammar,
//! no serde — the container has no crates.io access) and then checks
//! every row against a fixed schema: required fields, no unknown
//! fields, sane values, and (optionally) that every `rev` is an
//! ancestor of `HEAD` — the check that keeps committed trajectory files
//! from silently rotting.

use std::collections::BTreeSet;

/// Short git revision of `HEAD`, or `"unknown"` outside a repository.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Append `lines` (row objects, no trailing commas) to the JSON array in
/// `path`, creating the file if absent. Rows are one-per-line, so the
/// splice is a plain line operation.
///
/// # Panics
/// Panics (rather than silently dropping history) when the existing
/// file contains lines this splicer does not understand — e.g. after a
/// reformat with jq/prettier. Re-emit such a file in the one-row-per-
/// line layout (or pass `fresh` to deliberately start over).
pub fn append_rows(path: &str, lines: &[String], fresh: bool) {
    let existing: Vec<String> = if fresh {
        Vec::new()
    } else {
        match std::fs::read_to_string(path) {
            Err(_) => Vec::new(), // absent: start a new file
            Ok(s) => s
                .lines()
                .map(str::trim_end)
                .filter(|l| !matches!(*l, "" | "[" | "]"))
                .map(|l| {
                    assert!(
                        l.starts_with("  {") && l.trim_end_matches(',').ends_with('}'),
                        "{path}: unrecognized line {l:?}; this file must keep the \
                         one-row-per-line layout the bench binaries write \
                         (use --fresh to discard it)"
                    );
                    l.trim_end_matches(',').to_string()
                })
                .collect(),
        }
    };
    let mut all: Vec<String> = existing;
    all.extend(lines.iter().cloned());
    let body = all.join(",\n");
    std::fs::write(path, format!("[\n{body}\n]\n")).expect("write bench file");
}

/// The CLI surface shared by the bench binaries (`perfsuite`,
/// `scenarios`): `--quick`, `--fresh`, `--label <l>`, `--out <path>`;
/// binary-specific flags read through [`BenchCli::grab`].
pub struct BenchCli {
    /// Shrunken measurement windows (CI smoke mode).
    pub quick: bool,
    /// Discard any existing output file instead of appending.
    pub fresh: bool,
    /// Row label (e.g. `before` / `after`).
    pub label: String,
    /// Output path.
    pub out: String,
    args: Vec<String>,
}

impl BenchCli {
    /// Parse `std::env::args`, defaulting `--out` to `default_out`.
    /// Exits with status 2 when the label cannot be embedded in a JSON
    /// row verbatim — the row writer does no escaping, so a quote or
    /// backslash would corrupt the trajectory file for every later run.
    pub fn parse(default_out: &str) -> BenchCli {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let quick = args.iter().any(|a| a == "--quick");
        let fresh = args.iter().any(|a| a == "--fresh");
        let label = grab_from(&args, "--label", "run");
        let out = grab_from(&args, "--out", default_out);
        if label.is_empty() || label.chars().any(|c| c == '"' || c == '\\' || c.is_control()) {
            eprintln!(
                "--label {label:?} must be non-empty and free of quotes, backslashes and \
                 control characters (labels are embedded in JSON rows verbatim)"
            );
            std::process::exit(2);
        }
        BenchCli { quick, fresh, label, out, args }
    }

    /// Value following `flag`, or `default` when absent.
    pub fn grab(&self, flag: &str, default: &str) -> String {
        grab_from(&self.args, flag, default)
    }
}

fn grab_from(args: &[String], flag: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

// ---------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------

/// A parsed JSON value (enough of the grammar for trajectory files).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escape sequences are rejected — bench rows never need
    /// them, and rejecting beats silently mis-decoding).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let start = *pos;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                let s = std::str::from_utf8(&b[start..*pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?
                    .to_string();
                *pos += 1;
                return Ok(s);
            }
            b'\\' => return Err(format!("escape sequences unsupported (byte {})", *pos)),
            0x00..=0x1F => return Err(format!("control character in string (byte {})", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(&c) = b.get(*pos) {
        if matches!(c, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
            *pos += 1;
        } else {
            break;
        }
    }
    let s = std::str::from_utf8(&b[start..*pos]).expect("ASCII slice");
    // f64::parse is laxer than the JSON grammar (it accepts "+1", "01",
    // "1.", ".5", "inf"); a validator that lets those through would bless
    // files real JSON consumers reject, so check the grammar first.
    if !is_json_number(s) {
        return Err(format!("not a JSON number {s:?} at byte {start}"));
    }
    s.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number {s:?} at byte {start}"))
}

/// Exact JSON number grammar: `-? (0 | [1-9][0-9]*) (. [0-9]+)?
/// ([eE] [-+]? [0-9]+)?`.
fn is_json_number(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0;
    if b.get(i) == Some(&b'-') {
        i += 1;
    }
    match b.get(i) {
        Some(b'0') => i += 1,
        Some(b'1'..=b'9') => {
            while matches!(b.get(i), Some(b'0'..=b'9')) {
                i += 1;
            }
        }
        _ => return false,
    }
    if b.get(i) == Some(&b'.') {
        i += 1;
        if !matches!(b.get(i), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(b.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    if matches!(b.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'-' | b'+')) {
            i += 1;
        }
        if !matches!(b.get(i), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(b.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    i == b.len()
}

// ---------------------------------------------------------------------
// Trajectory schemas
// ---------------------------------------------------------------------

/// Which trajectory file layout a row must satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowSchema {
    /// `BENCH_core.json`: `{rev, label, bench, threads, cores,
    /// ops_per_sec, abort_ratio}`.
    Core,
    /// `BENCH_scenarios.json`: the core fields extended with latency
    /// quantiles `{p50_ns, p99_ns, p999_ns}`.
    Scenarios,
}

impl RowSchema {
    fn required_fields(self) -> &'static [&'static str] {
        match self {
            RowSchema::Core => {
                &["rev", "label", "bench", "threads", "cores", "ops_per_sec", "abort_ratio"]
            }
            RowSchema::Scenarios => &[
                "rev",
                "label",
                "bench",
                "threads",
                "cores",
                "ops_per_sec",
                "abort_ratio",
                "p50_ns",
                "p99_ns",
                "p999_ns",
            ],
        }
    }

    /// Fields a row *may* carry beyond the required set. The scenarios
    /// schema grew per-cause abort counts after the first batches were
    /// recorded, the kv (YCSB) family later added its read-hit ratio
    /// and key-space columns, and the HTAP family added scan-only
    /// latency quantiles and scan-abort counts, the durable-backend
    /// rows added the WAL / group-commit bucket, the `server-kv`
    /// family added its connection count and coalescing factor, and
    /// the span-tracing work added the per-layer wait decomposition
    /// (`wait_stm_ns`/`wait_wal_ns`/`wait_net_ns`) plus the traced
    /// runs' `trace_dropped` count. (The
    /// runner's core count started optional and was later promoted to
    /// required; old rows were backfilled.) Rows from before any
    /// extension stay valid.
    fn optional_fields(self) -> &'static [&'static str] {
        match self {
            RowSchema::Core => &[],
            RowSchema::Scenarios => &[
                "aborts_lock",
                "aborts_validation",
                "aborts_cut",
                "aborts_capacity",
                "aborts_unavailable",
                "found_ratio",
                "kv_space",
                "scan_p50_ns",
                "scan_p99_ns",
                "scan_p999_ns",
                "scan_aborts",
                "commits_durable",
                "group_commit_batches",
                "fsyncs",
                "wal_bytes",
                "fsyncs_per_sec",
                "conns",
                "batch_ops_per_commit",
                "wait_stm_ns",
                "wait_wal_ns",
                "wait_net_ns",
                "trace_dropped",
            ],
        }
    }

    /// Optional fields that must be integer counts when present (the
    /// rest have their own value rules in `validate_row`).
    fn optional_integer_fields(self) -> &'static [&'static str] {
        match self {
            RowSchema::Core => &[],
            RowSchema::Scenarios => &[
                "aborts_lock",
                "aborts_validation",
                "aborts_cut",
                "aborts_capacity",
                "aborts_unavailable",
                "kv_space",
                "scan_p50_ns",
                "scan_p99_ns",
                "scan_p999_ns",
                "scan_aborts",
                "commits_durable",
                "group_commit_batches",
                "fsyncs",
                "wal_bytes",
                "conns",
                "wait_stm_ns",
                "wait_wal_ns",
                "wait_net_ns",
                "trace_dropped",
            ],
        }
    }
}

fn field<'a>(row: &'a [(String, Json)], name: &str) -> Option<&'a Json> {
    row.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn nonneg_finite(row: &[(String, Json)], name: &str) -> Result<f64, String> {
    match field(row, name) {
        Some(Json::Num(v)) if v.is_finite() && *v >= 0.0 => Ok(*v),
        Some(Json::Num(v)) => Err(format!("{name} must be finite and >= 0, got {v}")),
        Some(_) => Err(format!("{name} must be a number")),
        None => unreachable!("presence checked before typing"),
    }
}

/// Validate one parsed row against `schema`. Returns the row's `rev`.
fn validate_row(row: &[(String, Json)], schema: RowSchema) -> Result<String, String> {
    let required = schema.required_fields();
    let optional = schema.optional_fields();
    for name in required {
        if field(row, name).is_none() {
            return Err(format!("missing field {name:?}"));
        }
    }
    for (k, _) in row {
        if !required.contains(&k.as_str()) && !optional.contains(&k.as_str()) {
            return Err(format!("unknown field {k:?}"));
        }
    }
    let mut keys: Vec<&str> = row.iter().map(|(k, _)| k.as_str()).collect();
    keys.sort_unstable();
    keys.dedup();
    if row.len() != keys.len() {
        return Err("duplicate field".into());
    }
    let rev = match field(row, "rev") {
        Some(Json::Str(s)) if !s.is_empty() => s.clone(),
        _ => return Err("rev must be a non-empty string".into()),
    };
    for name in ["label", "bench"] {
        match field(row, name) {
            Some(Json::Str(s)) if !s.is_empty() => {}
            _ => return Err(format!("{name} must be a non-empty string")),
        }
    }
    match field(row, "threads") {
        Some(Json::Num(v)) if *v >= 1.0 && v.fract() == 0.0 => {}
        _ => return Err("threads must be a positive integer".into()),
    }
    match field(row, "cores") {
        Some(Json::Num(v)) if *v >= 1.0 && v.fract() == 0.0 => {}
        _ => return Err("cores must be a positive integer".into()),
    }
    nonneg_finite(row, "ops_per_sec")?;
    nonneg_finite(row, "abort_ratio")?;
    if schema == RowSchema::Scenarios {
        let p50 = nonneg_finite(row, "p50_ns")?;
        let p99 = nonneg_finite(row, "p99_ns")?;
        let p999 = nonneg_finite(row, "p999_ns")?;
        for (name, v) in [("p50_ns", p50), ("p99_ns", p99), ("p999_ns", p999)] {
            if v.fract() != 0.0 {
                return Err(format!("{name} must be an integer nanosecond count"));
            }
        }
        if !(p50 <= p99 && p99 <= p999) {
            return Err(format!("latency quantiles out of order: p50={p50} p99={p99} p999={p999}"));
        }
        // The kv read-hit ratio is a fraction, not a count.
        if field(row, "found_ratio").is_some() {
            let v = nonneg_finite(row, "found_ratio")?;
            if v > 1.0 {
                return Err(format!("found_ratio must be a fraction in [0, 1], got {v}"));
            }
        }
        // HTAP scan quantiles obey the same ordering as the row's main
        // quantiles — but they travel together: a row carrying one
        // carries all three (scan_aborts may appear on its own; a
        // partially-emitted quantile triple is a writer bug).
        let scan_quantiles =
            ["scan_p50_ns", "scan_p99_ns", "scan_p999_ns"].map(|name| field(row, name).is_some());
        if scan_quantiles.iter().any(|&p| p) {
            if !scan_quantiles.iter().all(|&p| p) {
                return Err("scan latency quantiles must appear as a full triple".into());
            }
            let s50 = nonneg_finite(row, "scan_p50_ns")?;
            let s99 = nonneg_finite(row, "scan_p99_ns")?;
            let s999 = nonneg_finite(row, "scan_p999_ns")?;
            if !(s50 <= s99 && s99 <= s999) {
                return Err(format!(
                    "scan quantiles out of order: scan_p50={s50} scan_p99={s99} scan_p999={s999}"
                ));
            }
        }
        // Durable-backend columns travel as a bundle: the counts are
        // validated as integers above; the fsync rate is a derived
        // float and must come with them.
        let durability_cols =
            ["commits_durable", "group_commit_batches", "fsyncs", "wal_bytes", "fsyncs_per_sec"]
                .map(|name| field(row, name).is_some());
        if durability_cols.iter().any(|&p| p) {
            if !durability_cols.iter().all(|&p| p) {
                return Err("durability columns must appear as a full bundle".into());
            }
            nonneg_finite(row, "fsyncs_per_sec")?;
        }
        // Server (network front-end) columns travel as a pair: the
        // connection sweep axis and the derived coalescing factor.
        let server_cols = ["conns", "batch_ops_per_commit"].map(|name| field(row, name).is_some());
        if server_cols.iter().any(|&p| p) {
            if !server_cols.iter().all(|&p| p) {
                return Err("server columns (conns, batch_ops_per_commit) travel together".into());
            }
            let conns = nonneg_finite(row, "conns")?;
            if conns < 1.0 {
                return Err(format!("conns must be >= 1, got {conns}"));
            }
            nonneg_finite(row, "batch_ops_per_commit")?;
        }
        // The tail-latency wait decomposition travels as a triple: a
        // row that attributes wait time attributes it to every layer
        // (a zero component is written as 0, not omitted). They ride
        // on server rows, so the server pair must be there too.
        let wait_cols =
            ["wait_stm_ns", "wait_wal_ns", "wait_net_ns"].map(|name| field(row, name).is_some());
        if wait_cols.iter().any(|&p| p) {
            if !wait_cols.iter().all(|&p| p) {
                return Err(
                    "wait columns (wait_stm_ns, wait_wal_ns, wait_net_ns) travel together".into()
                );
            }
            if !server_cols.iter().all(|&p| p) {
                return Err("wait columns only appear on server rows (conns present)".into());
            }
        }
    }
    for name in schema.optional_integer_fields() {
        if field(row, name).is_some() {
            let v = nonneg_finite(row, name)?;
            if v.fract() != 0.0 {
                return Err(format!("{name} must be an integer count"));
            }
        }
    }
    Ok(rev)
}

/// Validate a whole trajectory file: JSON grammar, array-of-rows shape,
/// and per-row schema. With `schema: None` the schema is inferred from
/// the first row's fields (`p50_ns` present → [`RowSchema::Scenarios`])
/// and every row must then match it — the rows carry the schema, so the
/// file name never has to. Returns `(row_count, unique_revs, schema)`.
pub fn validate_trajectory(
    text: &str,
    schema: Option<RowSchema>,
) -> Result<(usize, BTreeSet<String>, RowSchema), String> {
    let doc = parse_json(text)?;
    let rows = match doc {
        Json::Arr(rows) => rows,
        _ => return Err("top level must be a JSON array of rows".into()),
    };
    let schema = match (schema, rows.first()) {
        (Some(s), _) => s,
        (None, Some(Json::Obj(fields))) => {
            if field(fields, "p50_ns").is_some() {
                RowSchema::Scenarios
            } else {
                RowSchema::Core
            }
        }
        // Empty or malformed first row: Core; row validation reports
        // the malformation itself.
        (None, _) => RowSchema::Core,
    };
    let mut revs = BTreeSet::new();
    for (i, row) in rows.iter().enumerate() {
        let fields = match row {
            Json::Obj(fields) => fields,
            _ => return Err(format!("row {i}: not an object")),
        };
        let rev = validate_row(fields, schema).map_err(|e| format!("row {i}: {e}"))?;
        revs.insert(rev);
    }
    Ok((rows.len(), revs, schema))
}

/// Is `rev` a commit that is an ancestor of (or equal to) `HEAD`?
/// `Err` carries the git failure mode for reporting.
pub fn rev_is_ancestor_of_head(rev: &str) -> Result<bool, String> {
    let out = std::process::Command::new("git")
        .args(["merge-base", "--is-ancestor", rev, "HEAD"])
        .output()
        .map_err(|e| format!("failed to spawn git: {e}"))?;
    match out.status.code() {
        Some(0) => Ok(true),
        Some(1) => Ok(false),
        _ => Err(format!(
            "git merge-base --is-ancestor {rev} HEAD failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_CORE: &str = "[\n  {\"rev\":\"abc1234\",\"label\":\"before\",\"bench\":\"b\",\
                             \"threads\":2,\"cores\":8,\"ops_per_sec\":123.4,\
                             \"abort_ratio\":0.01}\n]\n";

    const GOOD_SCEN: &str =
        "[\n  {\"rev\":\"abc1234\",\"label\":\"run\",\"bench\":\"hotspot/tx-list\",\
                             \"threads\":4,\"cores\":8,\"ops_per_sec\":9.5,\"abort_ratio\":0.0,\
                             \"p50_ns\":100,\"p99_ns\":2000,\"p999_ns\":50000}\n]\n";

    #[test]
    fn json_parser_roundtrips_scalars() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(parse_json("\"hi\"").unwrap(), Json::Str("hi".into()));
        assert_eq!(parse_json("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse_json("{}").unwrap(), Json::Obj(vec![]));
        assert!(parse_json("{\"a\":1}{").is_err(), "trailing data");
        assert!(parse_json("[1,]").is_err(), "trailing comma");
        assert!(parse_json("\"a\\nb\"").is_err(), "escapes rejected");
    }

    #[test]
    fn non_json_number_forms_are_rejected() {
        // f64::parse would accept all of these; the JSON grammar does
        // not, and neither may the validator.
        for bad in ["+1", "01", "1.", ".5", "1e", "1e+", "inf", "NaN", "-"] {
            assert!(parse_json(bad).is_err(), "{bad:?} must be rejected");
        }
        for good in ["0", "-0", "10", "1.5", "0.25", "1e3", "1.5E-7", "-2.5e+10"] {
            assert!(parse_json(good).is_ok(), "{good:?} must parse");
        }
    }

    #[test]
    fn good_files_validate() {
        let (n, revs, _) = validate_trajectory(GOOD_CORE, Some(RowSchema::Core)).unwrap();
        assert_eq!((n, revs.len()), (1, 1));
        let (n, _, _) = validate_trajectory(GOOD_SCEN, Some(RowSchema::Scenarios)).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn schema_is_inferred_from_row_content() {
        // The rows carry the schema — the file name is irrelevant.
        let (_, _, s) = validate_trajectory(GOOD_CORE, None).unwrap();
        assert_eq!(s, RowSchema::Core);
        let (_, _, s) = validate_trajectory(GOOD_SCEN, None).unwrap();
        assert_eq!(s, RowSchema::Scenarios);
        // Mixed-schema files fail whichever schema the first row sets.
        let mixed = format!(
            "{},{}",
            GOOD_SCEN.trim_end().trim_end_matches(']').trim_end(),
            GOOD_CORE.trim_start().trim_start_matches('[')
        );
        assert!(validate_trajectory(&mixed, None).unwrap_err().contains("p50_ns"));
    }

    #[test]
    fn optional_cause_fields_are_accepted_and_typed() {
        // Rows may carry the per-cause abort counts...
        let with_causes = GOOD_SCEN.replace(
            "\"p999_ns\":50000",
            "\"p999_ns\":50000,\"aborts_lock\":3,\"aborts_validation\":0,\
             \"aborts_cut\":12,\"aborts_capacity\":0",
        );
        let (n, _, s) = validate_trajectory(&with_causes, None).unwrap();
        assert_eq!((n, s), (1, RowSchema::Scenarios));
        // ...or any subset (older rows carry none), ...
        let partial = GOOD_SCEN.replace("\"p999_ns\":50000", "\"p999_ns\":50000,\"aborts_lock\":3");
        assert!(validate_trajectory(&partial, None).is_ok());
        // ...but present fields must be integer counts, ...
        let bad = with_causes.replace("\"aborts_cut\":12", "\"aborts_cut\":12.5");
        assert!(validate_trajectory(&bad, None).unwrap_err().contains("aborts_cut"));
        let bad = with_causes.replace("\"aborts_cut\":12", "\"aborts_cut\":-1");
        assert!(validate_trajectory(&bad, None).is_err());
        // ...and the core schema accepts none of them.
        let core_bad =
            GOOD_CORE.replace("\"abort_ratio\":0.01", "\"abort_ratio\":0.01,\"aborts_lock\":1");
        assert!(validate_trajectory(&core_bad, Some(RowSchema::Core))
            .unwrap_err()
            .contains("unknown"));
    }

    #[test]
    fn kv_fields_are_accepted_and_typed() {
        // A kv (YCSB) row carries the read-hit ratio and key space...
        let kv_row = GOOD_SCEN.replace(
            "\"p999_ns\":50000",
            "\"p999_ns\":50000,\"found_ratio\":0.98765,\"kv_space\":8192",
        );
        let (n, _, s) = validate_trajectory(&kv_row, None).unwrap();
        assert_eq!((n, s), (1, RowSchema::Scenarios));
        // ...or either alone (set rows carry neither), ...
        let ratio_only =
            GOOD_SCEN.replace("\"p999_ns\":50000", "\"p999_ns\":50000,\"found_ratio\":1");
        assert!(validate_trajectory(&ratio_only, None).is_ok());
        // ...but the ratio is a fraction, ...
        let bad = kv_row.replace("\"found_ratio\":0.98765", "\"found_ratio\":1.5");
        assert!(validate_trajectory(&bad, None).unwrap_err().contains("found_ratio"));
        let bad = kv_row.replace("\"found_ratio\":0.98765", "\"found_ratio\":-0.1");
        assert!(validate_trajectory(&bad, None).is_err());
        // ...the key space is an integer count, ...
        let bad = kv_row.replace("\"kv_space\":8192", "\"kv_space\":81.5");
        assert!(validate_trajectory(&bad, None).unwrap_err().contains("kv_space"));
        // ...and the core schema accepts neither.
        let core_bad =
            GOOD_CORE.replace("\"abort_ratio\":0.01", "\"abort_ratio\":0.01,\"found_ratio\":1");
        assert!(validate_trajectory(&core_bad, Some(RowSchema::Core))
            .unwrap_err()
            .contains("unknown"));
    }

    #[test]
    fn scan_fields_are_accepted_and_typed() {
        // An htap row carries the scan-only quantiles and abort count...
        let htap_row = GOOD_SCEN.replace(
            "\"p999_ns\":50000",
            "\"p999_ns\":50000,\"scan_p50_ns\":1000,\"scan_p99_ns\":40000,\
             \"scan_p999_ns\":90000,\"scan_aborts\":4",
        );
        let (n, _, s) = validate_trajectory(&htap_row, None).unwrap();
        assert_eq!((n, s), (1, RowSchema::Scenarios));
        // ...scan_aborts may appear alone (abort accounting without
        // latency recording), ...
        let aborts_only =
            GOOD_SCEN.replace("\"p999_ns\":50000", "\"p999_ns\":50000,\"scan_aborts\":2");
        assert!(validate_trajectory(&aborts_only, None).is_ok());
        // ...but a partial quantile triple is a writer bug, ...
        let partial =
            GOOD_SCEN.replace("\"p999_ns\":50000", "\"p999_ns\":50000,\"scan_p99_ns\":40000");
        assert!(validate_trajectory(&partial, None).unwrap_err().contains("full triple"));
        // ...the quantiles must be ordered, ...
        let bad = htap_row.replace("\"scan_p99_ns\":40000", "\"scan_p99_ns\":99999999");
        assert!(validate_trajectory(&bad, None).unwrap_err().contains("out of order"));
        // ...integer-valued, ...
        let bad = htap_row.replace("\"scan_aborts\":4", "\"scan_aborts\":4.5");
        assert!(validate_trajectory(&bad, None).unwrap_err().contains("scan_aborts"));
        // ...and the core schema accepts none of them.
        let core_bad =
            GOOD_CORE.replace("\"abort_ratio\":0.01", "\"abort_ratio\":0.01,\"scan_aborts\":1");
        assert!(validate_trajectory(&core_bad, Some(RowSchema::Core))
            .unwrap_err()
            .contains("unknown"));
    }

    #[test]
    fn durability_fields_are_accepted_and_typed() {
        // A durable-backend row carries the whole WAL bucket...
        let durable_row = GOOD_SCEN.replace(
            "\"p999_ns\":50000",
            "\"p999_ns\":50000,\"commits_durable\":800,\"group_commit_batches\":120,\
             \"fsyncs\":120,\"wal_bytes\":65536,\"fsyncs_per_sec\":400.0",
        );
        let (n, _, s) = validate_trajectory(&durable_row, None).unwrap();
        assert_eq!((n, s), (1, RowSchema::Scenarios));
        // ...rows from before the extension stay valid, ...
        assert!(validate_trajectory(GOOD_SCEN, None).is_ok());
        // ...the counts must be non-negative integers, ...
        let bad = durable_row.replace("\"fsyncs\":120", "\"fsyncs\":120.5");
        assert!(validate_trajectory(&bad, None).unwrap_err().contains("fsyncs"));
        let bad = durable_row.replace("\"wal_bytes\":65536", "\"wal_bytes\":-1");
        assert!(validate_trajectory(&bad, None).is_err());
        // ...the rate is any non-negative number, ...
        let bad = durable_row.replace("\"fsyncs_per_sec\":400.0", "\"fsyncs_per_sec\":-4");
        assert!(validate_trajectory(&bad, None).unwrap_err().contains("fsyncs_per_sec"));
        // ...a partial bundle is a writer bug, ...
        let partial = GOOD_SCEN.replace("\"p999_ns\":50000", "\"p999_ns\":50000,\"fsyncs\":120");
        assert!(validate_trajectory(&partial, None).unwrap_err().contains("bundle"));
        // ...and the core schema accepts none of them.
        let core_bad =
            GOOD_CORE.replace("\"abort_ratio\":0.01", "\"abort_ratio\":0.01,\"fsyncs\":1");
        assert!(validate_trajectory(&core_bad, Some(RowSchema::Core))
            .unwrap_err()
            .contains("unknown"));
    }

    #[test]
    fn server_fields_are_accepted_and_typed() {
        // A server-kv row carries the connection count and the mean
        // coalescing factor...
        let server_row = GOOD_SCEN.replace(
            "\"p999_ns\":50000",
            "\"p999_ns\":50000,\"conns\":4,\"batch_ops_per_commit\":3.125",
        );
        let (n, _, s) = validate_trajectory(&server_row, None).unwrap();
        assert_eq!((n, s), (1, RowSchema::Scenarios));
        // ...conns is a positive integer, ...
        let bad = server_row.replace("\"conns\":4", "\"conns\":0");
        assert!(validate_trajectory(&bad, None).unwrap_err().contains("conns"));
        let bad = server_row.replace("\"conns\":4", "\"conns\":4.5");
        assert!(validate_trajectory(&bad, None).unwrap_err().contains("conns"));
        // ...the coalescing factor is any non-negative number, ...
        let bad =
            server_row.replace("\"batch_ops_per_commit\":3.125", "\"batch_ops_per_commit\":-1");
        assert!(validate_trajectory(&bad, None).is_err());
        // ...the pair travels together, ...
        let partial = GOOD_SCEN.replace("\"p999_ns\":50000", "\"p999_ns\":50000,\"conns\":4");
        assert!(validate_trajectory(&partial, None).unwrap_err().contains("together"));
        // ...and the core schema accepts neither column.
        let core_bad =
            GOOD_CORE.replace("\"abort_ratio\":0.01", "\"abort_ratio\":0.01,\"conns\":4");
        assert!(validate_trajectory(&core_bad, Some(RowSchema::Core))
            .unwrap_err()
            .contains("unknown"));
    }

    #[test]
    fn wait_fields_are_accepted_and_typed() {
        // A traced server-kv row decomposes its wait time by layer...
        let wait_row = GOOD_SCEN.replace(
            "\"p999_ns\":50000",
            "\"p999_ns\":50000,\"conns\":4,\"batch_ops_per_commit\":3.125,\
             \"wait_stm_ns\":120000,\"wait_wal_ns\":450000,\"wait_net_ns\":0",
        );
        let (n, _, s) = validate_trajectory(&wait_row, None).unwrap();
        assert_eq!((n, s), (1, RowSchema::Scenarios));
        // ...the components are integer nanosecond counts, ...
        let bad = wait_row.replace("\"wait_wal_ns\":450000", "\"wait_wal_ns\":450000.5");
        assert!(validate_trajectory(&bad, None).unwrap_err().contains("wait_wal_ns"));
        let bad = wait_row.replace("\"wait_net_ns\":0", "\"wait_net_ns\":-1");
        assert!(validate_trajectory(&bad, None).is_err());
        // ...a partial triple is a writer bug (zero is written as 0,
        // never omitted), ...
        let partial = wait_row.replace(",\"wait_net_ns\":0", "");
        assert!(validate_trajectory(&partial, None).unwrap_err().contains("travel together"));
        // ...the triple only rides on server rows, ...
        let no_server = GOOD_SCEN.replace(
            "\"p999_ns\":50000",
            "\"p999_ns\":50000,\"wait_stm_ns\":1,\"wait_wal_ns\":2,\"wait_net_ns\":3",
        );
        assert!(validate_trajectory(&no_server, None).unwrap_err().contains("server rows"));
        // ...and the core schema accepts none of them.
        let core_bad =
            GOOD_CORE.replace("\"abort_ratio\":0.01", "\"abort_ratio\":0.01,\"wait_stm_ns\":1");
        assert!(validate_trajectory(&core_bad, Some(RowSchema::Core))
            .unwrap_err()
            .contains("unknown"));
    }

    #[test]
    fn trace_dropped_field_is_accepted_and_typed() {
        // A traced row records its per-run ring-drop delta (0 = the
        // trace is complete)...
        let traced =
            GOOD_SCEN.replace("\"p999_ns\":50000", "\"p999_ns\":50000,\"trace_dropped\":0");
        assert!(validate_trajectory(&traced, None).is_ok());
        // ...as an integer count...
        let bad = traced.replace("\"trace_dropped\":0", "\"trace_dropped\":0.5");
        assert!(validate_trajectory(&bad, None).unwrap_err().contains("trace_dropped"));
        let bad = traced.replace("\"trace_dropped\":0", "\"trace_dropped\":-3");
        assert!(validate_trajectory(&bad, None).is_err());
        // ...that the core schema does not accept.
        let core_bad =
            GOOD_CORE.replace("\"abort_ratio\":0.01", "\"abort_ratio\":0.01,\"trace_dropped\":0");
        assert!(validate_trajectory(&core_bad, Some(RowSchema::Core))
            .unwrap_err()
            .contains("unknown"));
    }

    #[test]
    fn cores_field_is_required_on_both_schemas() {
        // Rows missing the runner's core count are rejected outright...
        let core_missing = GOOD_CORE.replace("\"cores\":8,", "");
        assert!(validate_trajectory(&core_missing, Some(RowSchema::Core))
            .unwrap_err()
            .contains("cores"));
        let scen_missing = GOOD_SCEN.replace("\"cores\":8,", "");
        assert!(validate_trajectory(&scen_missing, Some(RowSchema::Scenarios))
            .unwrap_err()
            .contains("cores"));
        // ...and the value must be a positive integer on both schemas.
        let bad = GOOD_CORE.replace("\"cores\":8", "\"cores\":8.5");
        assert!(validate_trajectory(&bad, Some(RowSchema::Core)).unwrap_err().contains("cores"));
        let bad = GOOD_CORE.replace("\"cores\":8", "\"cores\":0");
        assert!(validate_trajectory(&bad, Some(RowSchema::Core)).unwrap_err().contains("cores"));
    }

    #[test]
    fn unavailable_abort_field_is_accepted_and_typed() {
        let row = GOOD_SCEN.replace(
            "\"p999_ns\":50000",
            "\"p999_ns\":50000,\"aborts_capacity\":1,\"aborts_unavailable\":2",
        );
        assert!(validate_trajectory(&row, None).is_ok());
        let bad = row.replace("\"aborts_unavailable\":2", "\"aborts_unavailable\":-2");
        assert!(validate_trajectory(&bad, None).is_err());
    }

    #[test]
    fn schema_violations_are_caught() {
        // Unknown field.
        let bad = GOOD_CORE.replace("\"abort_ratio\":0.01", "\"abort_ratio\":0.01,\"extra\":1");
        assert!(validate_trajectory(&bad, Some(RowSchema::Core)).unwrap_err().contains("unknown"));
        // Missing field.
        let bad = GOOD_CORE.replace(",\"abort_ratio\":0.01", "");
        assert!(validate_trajectory(&bad, Some(RowSchema::Core))
            .unwrap_err()
            .contains("abort_ratio"));
        // Core rows do not satisfy the scenarios schema.
        assert!(validate_trajectory(GOOD_CORE, Some(RowSchema::Scenarios)).is_err());
        // Scenario rows carry fields unknown to the core schema.
        assert!(validate_trajectory(GOOD_SCEN, Some(RowSchema::Core)).is_err());
        // Non-integer threads.
        let bad = GOOD_CORE.replace("\"threads\":2", "\"threads\":2.5");
        assert!(validate_trajectory(&bad, Some(RowSchema::Core)).is_err());
        // Negative throughput.
        let bad = GOOD_CORE.replace("123.4", "-1.0");
        assert!(validate_trajectory(&bad, Some(RowSchema::Core)).is_err());
        // Out-of-order quantiles.
        let bad = GOOD_SCEN.replace("\"p99_ns\":2000", "\"p99_ns\":99999999");
        assert!(validate_trajectory(&bad, Some(RowSchema::Scenarios))
            .unwrap_err()
            .contains("out of order"));
        // Malformed JSON.
        assert!(validate_trajectory("[{]", None).is_err());
        // Not an array.
        assert!(validate_trajectory("{}", None).is_err());
    }

    #[test]
    fn append_then_validate_roundtrip() {
        let dir = std::env::temp_dir().join(format!("polytm-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_scenarios.json");
        let path = path.to_str().unwrap();
        let row = |label: &str| {
            format!(
                "  {{\"rev\":\"deadbee\",\"label\":\"{label}\",\"bench\":\"s/b\",\"threads\":1,\
                 \"cores\":1,\"ops_per_sec\":10.0,\"abort_ratio\":0.00000,\"p50_ns\":1,\
                 \"p99_ns\":2,\"p999_ns\":3}}"
            )
        };
        append_rows(path, &[row("a")], true);
        append_rows(path, &[row("b")], false);
        let text = std::fs::read_to_string(path).unwrap();
        let (n, revs, schema) = validate_trajectory(&text, None).unwrap();
        assert_eq!(n, 2, "append preserved the existing row");
        assert_eq!(revs.len(), 1);
        assert_eq!(schema, RowSchema::Scenarios);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn committed_trajectories_stay_schema_valid() {
        // The repo's own perf history must always parse — this is the
        // in-tree twin of CI's benchlint step.
        for (file, schema) in
            [("BENCH_core.json", RowSchema::Core), ("BENCH_scenarios.json", RowSchema::Scenarios)]
        {
            let path = format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"));
            match std::fs::read_to_string(&path) {
                Ok(text) => {
                    let (n, _, inferred) =
                        validate_trajectory(&text, None).unwrap_or_else(|e| panic!("{file}: {e}"));
                    assert!(n > 0, "{file} must contain rows");
                    assert_eq!(inferred, schema, "{file}: wrong inferred schema");
                }
                Err(_) => {
                    // BENCH_scenarios.json does not exist until the first
                    // matrix run is committed; absence is not rot.
                }
            }
        }
    }
}
