//! E1–E10: one function per experiment in `DESIGN.md`, each returning its
//! rendered report. `EXPERIMENTS.md` records the expected shapes.

use std::sync::Arc;
use std::time::Duration;

use polytm::{
    Backoff, ConflictArbiter, Greedy, NestingPolicy, Semantics, Stm, StmConfig, Suicide, TxParams,
};
use polytm_schedule::{
    accepts, check_theorem1, check_theorem2, figure1_interleaving, figure1_lock_schedule,
    figure1_program, replay, Synchronization,
};
use polytm_structures::{TxCounter, TxList};
use polytm_workload::{run_workload, KeyDist, OpMix, Table, WorkloadSpec};

use crate::adapters::{make_hash_impl, make_list_impl, HASH_IMPLS, LIST_IMPLS};

/// Measurement profile: `quick` keeps the full suite under a minute;
/// set `POLYTM_BENCH_FULL=1` for longer, steadier windows.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Measured window per cell.
    pub duration: Duration,
    /// Warmup per cell.
    pub warmup: Duration,
    /// Thread counts swept.
    pub threads: Vec<usize>,
}

impl Profile {
    /// Profile from the environment (`POLYTM_BENCH_FULL=1` for the long
    /// version).
    pub fn from_env() -> Self {
        if std::env::var("POLYTM_BENCH_FULL").as_deref() == Ok("1") {
            Self {
                duration: Duration::from_millis(1000),
                warmup: Duration::from_millis(200),
                threads: vec![1, 2, 4, 8],
            }
        } else {
            Self {
                duration: Duration::from_millis(150),
                warmup: Duration::from_millis(30),
                threads: vec![1, 2, 4],
            }
        }
    }
}

fn spec(profile: &Profile, threads: usize, key_space: u64, update_pct: u32) -> WorkloadSpec {
    WorkloadSpec {
        threads,
        key_space,
        prefill: true,
        mix: OpMix::updates(update_pct).into(),
        dist: KeyDist::Uniform,
        scan_span: WorkloadSpec::default_scan_span(key_space),
        duration: profile.duration,
        warmup: profile.warmup,
        record_latency: false,
        seed: 0xC0FF_EE00 + u64::from(update_pct),
    }
}

/// E1 — Figure 1: analytic acceptance, the lock schedule's discipline,
/// and the replay through the real STM.
pub fn e1_figure1() -> String {
    let program = figure1_program();
    let inter = figure1_interleaving();
    let mut out = String::new();
    out.push_str("E1: the paper's Figure 1 schedule\n\n");
    out.push_str(&inter.render(&program));
    out.push('\n');

    let mut t = Table::new(
        "acceptance of the Figure 1 schedule",
        &["synchronization", "analytic checker", "real implementation (replay)"],
    );
    for (sync, name) in [
        (Synchronization::LockBased, "lock-based"),
        (Synchronization::Monomorphic, "monomorphic (all def)"),
        (Synchronization::Polymorphic, "polymorphic (p1 weak)"),
    ] {
        let analytic =
            if accepts(&program, &inter, sync).accepted { "accepted" } else { "REJECTED" };
        let replayed = match sync {
            Synchronization::LockBased => {
                // The explicit lock schedule stands in for a replay: it is
                // executable iff its discipline validates.
                match figure1_lock_schedule().validate() {
                    Ok(()) => "executable (discipline ok)".to_string(),
                    Err(e) => format!("INVALID: {e:?}"),
                }
            }
            _ => {
                let r = replay(&program, &inter, sync).expect("replayable");
                if r.accepted {
                    "all committed".to_string()
                } else {
                    format!(
                        "p{} aborted",
                        r.first_failure.as_ref().map(|(p, _)| p + 1).unwrap_or(0)
                    )
                }
            }
        };
        t.row(&[name.to_string(), analytic.to_string(), replayed]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\npaper: accepted by lock-based and polymorphic transactions, \
         not by monomorphic transactions.\n",
    );
    out
}

/// E2 — Theorem 1 (lock-based ≻ monomorphic).
pub fn e2_theorem1() -> String {
    format!("E2: {}\n", check_theorem1())
}

/// E3 — Theorem 2 (polymorphic ≻ monomorphic).
pub fn e3_theorem2() -> String {
    format!("E3: {}\n", check_theorem2())
}

/// E4 — sorted-list throughput across implementations, sizes, update
/// ratios and thread counts.
pub fn e4_list_throughput(profile: &Profile) -> String {
    let mut t = Table::new(
        "E4: sorted-list set throughput (ops/s)",
        &["impl", "size", "update%", "threads", "throughput"],
    );
    for &size in &[64u64, 512] {
        for &updates in &[0u32, 10, 50] {
            for &threads in &profile.threads {
                for name in LIST_IMPLS {
                    let (set, _stm) = make_list_impl(name);
                    let m = run_workload(set.as_ref(), &spec(profile, threads, size, updates));
                    t.row(&[
                        name.to_string(),
                        size.to_string(),
                        updates.to_string(),
                        threads.to_string(),
                        format!("{:.0}", m.throughput),
                    ]);
                }
            }
        }
    }
    t.render()
}

/// E5 — abort/cut accounting: elastic vs opaque traversals under update
/// pressure.
pub fn e5_abort_rates(profile: &Profile) -> String {
    let mut t = Table::new(
        "E5: commit/abort statistics, list workload (updates 20%)",
        &["impl", "size", "threads", "commits", "aborts", "abort/commit", "cuts", "extensions"],
    );
    let threads = *profile.threads.last().unwrap_or(&2);
    for &size in &[64u64, 512] {
        for name in ["tx-elastic", "tx-opaque"] {
            let (set, stm) = make_list_impl(name);
            let stm = stm.expect("transactional impl");
            stm.reset_stats();
            let _ = run_workload(set.as_ref(), &spec(profile, threads, size, 20));
            let s = stm.stats();
            t.row(&[
                name.to_string(),
                size.to_string(),
                threads.to_string(),
                s.commits.to_string(),
                s.aborts().to_string(),
                format!("{:.4}", s.abort_ratio()),
                s.elastic_cuts.to_string(),
                s.extensions.to_string(),
            ]);
        }
    }
    t.render()
}

/// E6 — hash-set throughput with growth pressure (the §1 motivating
/// example: resizable vs fixed tables).
pub fn e6_hash_throughput(profile: &Profile) -> String {
    let mut t = Table::new(
        "E6: hash set throughput under growth (initial 4 buckets, key space 8192)",
        &["impl", "update%", "threads", "throughput", "note"],
    );
    for &updates in &[10u32, 50] {
        for &threads in &profile.threads {
            for name in HASH_IMPLS {
                let (set, _stm) = make_hash_impl(name, 4);
                let m = run_workload(set.as_ref(), &spec(profile, threads, 8192, updates));
                let note = if *name == "michael-fixed" { "cannot resize" } else { "resizable" };
                t.row(&[
                    name.to_string(),
                    updates.to_string(),
                    threads.to_string(),
                    format!("{:.0}", m.throughput),
                    note.to_string(),
                ]);
            }
        }
    }
    t.render()
}

/// E7 — polymorphism ablation: sweep the fraction of weak (elastic)
/// transactions in a fixed list workload.
pub fn e7_semantics_mix(profile: &Profile) -> String {
    use polytm_workload::{ConcurrentSet, SplitMix64};

    /// A TxList whose per-op semantics is drawn per call: `pct_weak`% of
    /// operations run `start(weak)`, the rest `start(def)`.
    struct MixedList {
        elastic: TxList,
        opaque: TxList,
        pct_weak: u32,
        rng: std::sync::Mutex<SplitMix64>,
    }

    impl ConcurrentSet for MixedList {
        fn contains(&self, key: u64) -> bool {
            if self.pick() {
                self.elastic.contains(key as i64)
            } else {
                self.opaque.contains(key as i64)
            }
        }
        fn insert(&self, key: u64) -> bool {
            if self.pick() {
                self.elastic.insert(key as i64)
            } else {
                self.opaque.insert(key as i64)
            }
        }
        fn remove(&self, key: u64) -> bool {
            if self.pick() {
                self.elastic.remove(key as i64)
            } else {
                self.opaque.remove(key as i64)
            }
        }
    }

    impl MixedList {
        fn pick(&self) -> bool {
            self.rng.lock().unwrap().next_below(100) < u64::from(self.pct_weak)
        }
    }

    let mut t = Table::new(
        "E7: fraction of weak transactions vs throughput (list size 512, updates 20%)",
        &["weak%", "threads", "throughput", "commits", "aborts"],
    );
    let threads = *profile.threads.last().unwrap_or(&2);
    for &pct in &[0u32, 25, 50, 75, 100] {
        let stm = Arc::new(Stm::new());
        let list = TxList::new(Arc::clone(&stm));
        let set = MixedList {
            opaque: list.clone_with_semantics(Semantics::Opaque),
            elastic: list,
            pct_weak: pct,
            rng: std::sync::Mutex::new(SplitMix64::new(77)),
        };
        stm.reset_stats();
        let m = run_workload(&set, &spec(profile, threads, 512, 20));
        let s = stm.stats();
        t.row(&[
            pct.to_string(),
            threads.to_string(),
            format!("{:.0}", m.throughput),
            s.commits.to_string(),
            s.aborts().to_string(),
        ]);
    }
    t.render()
}

/// E8 — nesting-policy ablation: an opaque updater whose traversal is a
/// nested weak block, under the three composition policies.
pub fn e8_nesting_policies(profile: &Profile) -> String {
    let mut t = Table::new(
        "E8: nested weak-in-def traversal under each composition policy (list 256, 20% updates)",
        &["policy", "threads", "txns/s", "aborts", "cuts"],
    );
    let threads = *profile.threads.last().unwrap_or(&2);
    for (policy, name) in [
        (NestingPolicy::Parameter, "Parameter (honour weak)"),
        (NestingPolicy::Parent, "Parent (stay def)"),
        (NestingPolicy::Strongest, "Strongest (def wins)"),
    ] {
        let stm = Arc::new(Stm::with_config(StmConfig {
            nesting_policy: policy,
            ..StmConfig::default()
        }));
        let list = TxList::new(Arc::clone(&stm));
        for k in (0..256).step_by(2) {
            list.insert(k);
        }
        stm.reset_stats();
        let stop = std::sync::atomic::AtomicBool::new(false);
        let done_ops = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for tid in 0..threads {
                let stm = &stm;
                let list = &list;
                let stop = &stop;
                let done_ops = &done_ops;
                s.spawn(move || {
                    let mut rng = polytm_workload::SplitMix64::for_thread(42, tid);
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let k = rng.next_below(256) as i64;
                        let write = rng.next_below(100) < 20;
                        stm.run(TxParams::default(), |tx| {
                            // Nested weak traversal inside a def parent —
                            // the paper's §3 scenario.
                            let present = tx
                                .nested(Semantics::elastic(), |inner| list.contains_in(inner, k))?;
                            if write {
                                if present {
                                    list.remove_in(tx, k)?;
                                } else {
                                    list.insert_in(tx, k)?;
                                }
                            }
                            Ok(())
                        });
                        done_ops.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
            std::thread::sleep(profile.warmup + profile.duration);
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        let s = stm.stats();
        let rate = done_ops.load(std::sync::atomic::Ordering::Relaxed) as f64
            / (profile.warmup + profile.duration).as_secs_f64();
        t.row(&[
            name.to_string(),
            threads.to_string(),
            format!("{rate:.0}"),
            s.aborts().to_string(),
            s.elastic_cuts.to_string(),
        ]);
    }
    t.render()
}

/// E9 — snapshot vs opaque read-only scans against a write-hot counter.
pub fn e9_snapshot_scans(profile: &Profile) -> String {
    let mut t = Table::new(
        "E9: read-only scans concurrent with writers (16-stripe counter)",
        &["scan semantics", "scans done", "scan aborts", "writer commits"],
    );
    for (sem, name) in [(Semantics::Snapshot, "snapshot"), (Semantics::Opaque, "opaque (def)")] {
        let stm = Arc::new(Stm::with_config(StmConfig {
            // Keep the opaque scanner honest: no irrevocable rescue.
            irrevocable_fallback_after: None,
            ..StmConfig::default()
        }));
        let counter = TxCounter::new(Arc::clone(&stm), 16);
        stm.reset_stats();
        let stop = std::sync::atomic::AtomicBool::new(false);
        let scans = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for w in 0..2usize {
                let counter = &counter;
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        counter.add_for(w, 1);
                    }
                });
            }
            {
                let counter = &counter;
                let stop = &stop;
                let scans = &scans;
                let stm = &stm;
                s.spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let _ = stm.run(TxParams::new(sem), |tx| counter.sum_in(tx));
                        scans.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
            std::thread::sleep(profile.duration);
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        let stats = stm.stats();
        let scan_aborts = stats.aborts_read_conflict
            + stats.aborts_validation
            + stats.aborts_capacity
            + stats.aborts_unavailable
            + stats.aborts_locked;
        t.row(&[
            name.to_string(),
            scans.load(std::sync::atomic::Ordering::Relaxed).to_string(),
            // Writer aborts are possible too but rare (stripes are
            // disjoint); attribute conflicts to the scanner.
            scan_aborts.to_string(),
            stats.commits.to_string(),
        ]);
    }
    t.render()
}

/// E10 — contention-manager ablation on a hot counter.
pub fn e10_contention_managers(profile: &Profile) -> String {
    let mut t = Table::new(
        "E10: contention managers, single hot TVar, 4 threads",
        &["manager", "commits", "aborts", "abort/commit", "throughput"],
    );
    for arbiter in [
        ConflictArbiter::Suicide(Suicide),
        ConflictArbiter::Backoff(Backoff::default()),
        ConflictArbiter::Greedy(Greedy::default()),
    ] {
        let stm = Stm::with_config(StmConfig { arbiter, ..StmConfig::default() });
        let hot = stm.new_tvar(0u64);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stm = &stm;
                let hot = &hot;
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        stm.run(TxParams::default(), |tx| hot.modify(tx, |v| v + 1));
                    }
                });
            }
            std::thread::sleep(profile.duration);
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        let s = stm.stats();
        t.row(&[
            arbiter.label().to_string(),
            s.commits.to_string(),
            s.aborts().to_string(),
            format!("{:.3}", s.abort_ratio()),
            format!("{:.0}/s", s.commits as f64 / profile.duration.as_secs_f64()),
        ]);
    }
    t.render()
}

/// Run one experiment by id ("e1".."e10") or "all"; returns the report.
pub fn run_experiment(id: &str, profile: &Profile) -> Option<String> {
    let out = match id {
        "e1" => e1_figure1(),
        "e2" => e2_theorem1(),
        "e3" => e3_theorem2(),
        "e4" => e4_list_throughput(profile),
        "e5" => e5_abort_rates(profile),
        "e6" => e6_hash_throughput(profile),
        "e7" => e7_semantics_mix(profile),
        "e8" => e8_nesting_policies(profile),
        "e9" => e9_snapshot_scans(profile),
        "e10" => e10_contention_managers(profile),
        "all" => {
            let mut all = String::new();
            for id in ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"] {
                all.push_str(&run_experiment(id, profile).expect("known id"));
                all.push('\n');
            }
            all
        }
        _ => return None,
    };
    Some(out)
}
