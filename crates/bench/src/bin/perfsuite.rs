//! Reproducible perf harness: a fixed, pinned-duration subset of the
//! E4/E6/E9 workloads plus single-thread op-latency microbenches, written
//! as machine-readable rows to `BENCH_core.json`.
//!
//! Every row is `{rev, label, bench, threads, cores, ops_per_sec, abort_ratio}`;
//! the file is a JSON array with one row per line, so successive runs
//! (e.g. a "before" and an "after" of a perf PR) append rows and stay
//! trivially diffable. This file is the perf trajectory every later
//! performance PR is judged against.
//!
//! ```text
//! cargo run --release -p polytm-bench --bin perfsuite -- --label after
//! cargo run --release -p polytm-bench --bin perfsuite -- --quick --out /tmp/smoke.json
//! cargo run --release -p polytm-bench --bin perfsuite -- --quick --trace /tmp/run.trace
//! ```
//!
//! `--trace <path>` installs the `polytm-obs` ring tracer before any
//! measurement and writes the ring dump to `<path>` at exit — the
//! "tracing on" arm of the overhead comparison CI runs (`perfgate`
//! judges the two arms; `traceview` decodes the dump).
//!
//! `--quick` shrinks every measured window so the whole suite finishes in
//! a few seconds (the CI `perf-smoke` job runs this mode; the numbers are
//! noisy but the harness itself is exercised end to end).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use polytm::{Semantics, Stm, StmConfig, TxParams};
use polytm_bench::make_hash_impl;
use polytm_bench::make_list_impl;
use polytm_bench::report::{append_rows, git_rev, BenchCli};
use polytm_structures::TxCounter;
use polytm_workload::{run_workload_with, KeyDist, OpMix, WorkloadSpec};

/// One output row of the suite.
struct Row {
    bench: &'static str,
    threads: usize,
    ops_per_sec: f64,
    abort_ratio: f64,
}

/// Measurement windows for the two modes.
struct Knobs {
    micro: Duration,
    sweep: Duration,
    warmup: Duration,
    threads: &'static [usize],
}

impl Knobs {
    fn new(quick: bool) -> Self {
        if quick {
            Self {
                micro: Duration::from_millis(200),
                sweep: Duration::from_millis(120),
                warmup: Duration::from_millis(25),
                threads: &[1, 2],
            }
        } else {
            Self {
                micro: Duration::from_millis(1500),
                sweep: Duration::from_millis(700),
                warmup: Duration::from_millis(150),
                threads: &[1, 2, 4],
            }
        }
    }
}

/// Run `op` single-threaded for `dur` and return completed ops/second.
fn time_ops(dur: Duration, warmup: Duration, mut op: impl FnMut()) -> f64 {
    let wstart = Instant::now();
    while wstart.elapsed() < warmup {
        op();
    }
    let start = Instant::now();
    let mut ops = 0u64;
    // Check the clock in batches so the timer read does not dominate
    // sub-microsecond operations.
    loop {
        for _ in 0..64 {
            op();
        }
        ops += 64;
        if start.elapsed() >= dur {
            break;
        }
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

fn micro_rows(k: &Knobs, rows: &mut Vec<Row>) {
    // Transaction begin/commit floor under each begin-relevant semantics.
    for (bench, sem) in [
        ("st_empty_txn_opaque", Semantics::Opaque),
        ("st_empty_txn_irrevocable", Semantics::Irrevocable),
    ] {
        let stm = Stm::new();
        let ops = time_ops(k.micro, k.warmup, || {
            stm.run(TxParams::new(sem), |_tx| Ok(std::hint::black_box(0u64)));
        });
        rows.push(Row { bench, threads: 1, ops_per_sec: ops, abort_ratio: 0.0 });
    }

    // Per-read cost: a 32-read chain under the read-rule semantics.
    for (bench, sem) in [
        ("st_read32_opaque", Semantics::Opaque),
        ("st_read32_elastic8", Semantics::Elastic { window: 8 }),
        ("st_read32_snapshot", Semantics::Snapshot),
    ] {
        let stm = Stm::new();
        let vars: Vec<_> = (0..32).map(|i| stm.new_tvar(i as i64)).collect();
        let ops = time_ops(k.micro, k.warmup, || {
            stm.run(TxParams::new(sem), |tx| {
                let mut acc = 0i64;
                for v in &vars {
                    acc += v.read(tx)?;
                }
                Ok(std::hint::black_box(acc))
            });
        });
        rows.push(Row { bench, threads: 1, ops_per_sec: ops, abort_ratio: 0.0 });
    }

    // Per-write + commit cost: single-var RMW and a 16-location commit.
    {
        let stm = Stm::new();
        let x = stm.new_tvar(0u64);
        let ops = time_ops(k.micro, k.warmup, || {
            stm.run(TxParams::default(), |tx| x.modify(tx, |v| v + 1));
        });
        rows.push(Row { bench: "st_rmw_single", threads: 1, ops_per_sec: ops, abort_ratio: 0.0 });
    }
    {
        let stm = Stm::new();
        let vars: Vec<_> = (0..16).map(|_| stm.new_tvar(0i64)).collect();
        let ops = time_ops(k.micro, k.warmup, || {
            stm.run(TxParams::default(), |tx| {
                for v in &vars {
                    v.modify(tx, |x| x + 1)?;
                }
                Ok(())
            });
        });
        rows.push(Row {
            bench: "st_write16_commit",
            threads: 1,
            ops_per_sec: ops,
            abort_ratio: 0.0,
        });
    }
}

fn sweep_spec(k: &Knobs, threads: usize, key_space: u64, update_pct: u32) -> WorkloadSpec {
    WorkloadSpec {
        threads,
        key_space,
        // Prefill is done by hand before stats reset, so measured
        // abort ratios cover only the steady-state window.
        prefill: false,
        mix: OpMix::updates(update_pct).into(),
        dist: KeyDist::Uniform,
        scan_span: WorkloadSpec::default_scan_span(key_space),
        duration: k.sweep,
        warmup: k.warmup,
        record_latency: false,
        seed: 0xBE2C_0000 + u64::from(update_pct),
    }
}

/// E4-style: sorted-list set sweeps, elastic vs opaque per-op semantics.
fn e4_rows(k: &Knobs, rows: &mut Vec<Row>) {
    for (bench, name) in [("e4_list_elastic", "tx-elastic"), ("e4_list_opaque", "tx-opaque")] {
        for &threads in k.threads {
            let (set, stm) = make_list_impl(name);
            let stm = stm.expect("transactional impl carries an Stm");
            for key in (0..512).step_by(2) {
                set.insert(key);
            }
            // Stats reset at window start: abort_ratio then covers the
            // same interval as the throughput column.
            let m = run_workload_with(set.as_ref(), &sweep_spec(k, threads, 512, 20), || {
                stm.reset_stats()
            });
            let s = stm.stats();
            rows.push(Row {
                bench,
                threads,
                ops_per_sec: m.throughput,
                abort_ratio: s.abort_ratio(),
            });
        }
    }
}

/// E6-style: hash set under growth pressure (starts at 4 buckets).
fn e6_rows(k: &Knobs, rows: &mut Vec<Row>) {
    for &threads in k.threads {
        let (set, stm) = make_hash_impl("tx-hash-elastic", 4);
        let stm = stm.expect("transactional impl carries an Stm");
        let m = run_workload_with(
            set.as_ref(),
            &{
                let mut s = sweep_spec(k, threads, 8192, 50);
                s.prefill = true; // growth pressure IS the workload here
                s
            },
            || stm.reset_stats(),
        );
        let s = stm.stats();
        rows.push(Row {
            bench: "e6_hash_growth",
            threads,
            ops_per_sec: m.throughput,
            abort_ratio: s.abort_ratio(),
        });
    }
}

/// E9-style: snapshot scans against hot writers. `threads` counts the
/// writers; one scanner thread runs alongside, and the reported rate is
/// scans/second.
fn e9_rows(k: &Knobs, rows: &mut Vec<Row>) {
    for &threads in k.threads {
        let stm = Arc::new(Stm::with_config(StmConfig {
            irrevocable_fallback_after: None,
            ..StmConfig::default()
        }));
        let counter = TxCounter::new(Arc::clone(&stm), 16);
        stm.reset_stats();
        let stop = AtomicBool::new(false);
        let scans = AtomicU64::new(0);
        std::thread::scope(|s| {
            for w in 0..threads {
                let counter = &counter;
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        counter.add_for(w, 1);
                    }
                });
            }
            {
                let counter = &counter;
                let stop = &stop;
                let scans = &scans;
                let stm = &stm;
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let _ =
                            stm.run(TxParams::new(Semantics::Snapshot), |tx| counter.sum_in(tx));
                        scans.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            std::thread::sleep(k.sweep);
            stop.store(true, Ordering::Relaxed);
        });
        let s = stm.stats();
        rows.push(Row {
            bench: "e9_snapshot_scan",
            threads,
            ops_per_sec: scans.load(Ordering::Relaxed) as f64 / k.sweep.as_secs_f64(),
            abort_ratio: s.abort_ratio(),
        });
    }
}

fn render_row(rev: &str, label: &str, cores: usize, r: &Row) -> String {
    format!(
        "  {{\"rev\":\"{rev}\",\"label\":\"{label}\",\"bench\":\"{}\",\"threads\":{},\
         \"cores\":{cores},\"ops_per_sec\":{:.1},\"abort_ratio\":{:.5}}}",
        r.bench, r.threads, r.ops_per_sec, r.abort_ratio
    )
}

fn main() {
    let cli = BenchCli::parse("BENCH_core.json");
    let trace_out = cli.grab("--trace", "");
    let tracer = if trace_out.is_empty() {
        None
    } else {
        // 64Ki events per thread: enough for a quick run's hot loops
        // to show shape; overflow is counted, not blocking.
        Some(polytm_obs::RingTracer::install(1 << 16).expect("a trace sink is already installed"))
    };

    let knobs = Knobs::new(cli.quick);
    let rev = git_rev();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "perfsuite: rev {rev}, label {:?}, mode {}, cores {cores}, out {}",
        cli.label,
        if cli.quick { "quick" } else { "full" },
        cli.out
    );

    let mut rows = Vec::new();
    micro_rows(&knobs, &mut rows);
    e4_rows(&knobs, &mut rows);
    e6_rows(&knobs, &mut rows);
    e9_rows(&knobs, &mut rows);

    for r in &rows {
        eprintln!(
            "  {:<28} t={:<2} {:>12.0} ops/s  abort_ratio {:.4}",
            r.bench, r.threads, r.ops_per_sec, r.abort_ratio
        );
    }
    let lines: Vec<String> = rows.iter().map(|r| render_row(&rev, &cli.label, cores, r)).collect();
    append_rows(&cli.out, &lines, cli.fresh);
    eprintln!("perfsuite: wrote {} rows to {}", lines.len(), cli.out);

    if let Some(t) = tracer {
        let dump = t.drain();
        let events: usize = dump.rings.iter().map(|r| r.events.len()).sum();
        dump.write_file(&trace_out).expect("write trace dump");
        eprintln!(
            "perfsuite: traced {events} events across {} rings ({} dropped) to {trace_out}",
            dump.rings.len(),
            dump.dropped_total()
        );
    }
}
