//! The scenario-matrix engine: every registered backend (transactional,
//! lock-based, lock-free) × every workload scenario × a thread sweep,
//! reporting throughput, latency quantiles and (for tx backends) abort
//! ratios as machine-readable rows in `BENCH_scenarios.json`.
//!
//! ```text
//! cargo run --release -p polytm-bench --bin scenarios -- --label after
//! cargo run --release -p polytm-bench --bin scenarios -- --quick --out /tmp/smoke.json
//! ```
//!
//! Rows share `BENCH_core.json`'s shape, extended with latency
//! quantiles and per-cause abort counts over the measured window:
//!
//! ```text
//! {rev, label, bench, threads, ops_per_sec, abort_ratio, p50_ns, p99_ns, p999_ns,
//!  aborts_lock, aborts_validation, aborts_cut, aborts_capacity}
//! ```
//!
//! `bench` is `scenario/backend` (e.g. `hotspot/tx-list`). `--quick`
//! shrinks the measured windows so CI can exercise the whole matrix in
//! seconds; only rows from a quiet machine are trajectory data.

use std::time::Duration;

use polytm_bench::report::{append_rows, git_rev, BenchCli};
use polytm_bench::{Backend, Shape, BACKENDS};
use polytm_workload::{run_scenario_with, KeyDist, MixSchedule, OpMix, WorkloadSpec};

/// One output row.
struct Row {
    bench: String,
    threads: usize,
    ops_per_sec: f64,
    abort_ratio: f64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    /// Aborts by cause over the measured window (all 0 for
    /// non-transactional backends): lock-conflict, validation, elastic
    /// cut, snapshot capacity.
    aborts_by_cause: [u64; 4],
}

/// Measurement windows for the two modes.
struct Knobs {
    sweep: Duration,
    warmup: Duration,
    threads: &'static [usize],
}

impl Knobs {
    fn new(quick: bool) -> Self {
        if quick {
            Self {
                sweep: Duration::from_millis(80),
                warmup: Duration::from_millis(20),
                threads: &[1, 2],
            }
        } else {
            Self {
                sweep: Duration::from_millis(300),
                warmup: Duration::from_millis(60),
                threads: &[1, 2, 4],
            }
        }
    }
}

/// One workload scenario: a named (mix, distribution) pair, scaled to
/// the backend's key space.
struct Scenario {
    name: &'static str,
    mix: fn() -> MixSchedule,
    dist: fn(u64) -> KeyDist,
}

/// The scenario axis. Each entry stresses a different regime — see
/// DESIGN.md "The scenario matrix" for what each one is meant to
/// surface.
const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "read-dominated",
        mix: || OpMix::updates(10).into(),
        dist: |_| KeyDist::Uniform,
    },
    Scenario { name: "write-heavy", mix: || OpMix::updates(80).into(), dist: |_| KeyDist::Uniform },
    Scenario { name: "zipf-skew", mix: || OpMix::updates(20).into(), dist: |_| KeyDist::Zipf(1.1) },
    Scenario {
        name: "hotspot",
        mix: || OpMix::updates(20).into(),
        dist: |space| KeyDist::Hotspot { hot_fraction: 0.8, hot_keys: (space / 64).max(1) },
    },
    Scenario {
        // Named after the schedule constructor; earlier trajectory rows
        // carry the old name `phased` for the same cell.
        name: "phased_burst",
        // Read-heavy cruising interrupted by write bursts, cycling
        // deterministically by per-thread op index.
        mix: || MixSchedule::phased_burst(5, 2000, 90, 500),
        dist: |_| KeyDist::Uniform,
    },
    Scenario {
        name: "snapshot-scan",
        // Point updates against whole-range readers: the regime where
        // snapshot semantics (tx) vs best-effort scans (locks/lock-free)
        // differ the most.
        mix: || OpMix::with_scans(20, 10).into(),
        dist: |_| KeyDist::Uniform,
    },
];

/// Key space per backend shape: O(n)-traversal structures get the E4
/// size, O(1) tables the E6 size.
fn key_space(shape: Shape) -> u64 {
    match shape {
        Shape::Ordered => 512,
        Shape::Hash => 8192,
    }
}

fn run_cell(backend: &Backend, scenario: &Scenario, threads: usize, k: &Knobs) -> Row {
    let space = key_space(backend.shape);
    let instance = backend.make();
    // Prefill by hand (not via the spec); stats reset at window start
    // below, so the abort ratio covers the same interval as the
    // throughput and latency columns — not prefill, not warmup.
    for key in (0..space).step_by(2) {
        instance.set.insert(key);
    }
    let spec = WorkloadSpec {
        threads,
        key_space: space,
        prefill: false,
        mix: (scenario.mix)(),
        dist: (scenario.dist)(space),
        scan_span: WorkloadSpec::default_scan_span(space),
        duration: k.sweep,
        warmup: k.warmup,
        record_latency: true,
        seed: 0x5CE2_A210 ^ (threads as u64) << 32 ^ space,
    };
    let m = run_scenario_with(instance.set.as_ref(), &spec, || {
        if let Some(stm) = &instance.stm {
            stm.reset_stats();
        }
    });
    let stats = instance.stm.as_ref().map(|stm| stm.stats());
    let abort_ratio = stats.as_ref().map_or(0.0, |s| s.abort_ratio());
    let aborts_by_cause =
        stats.as_ref().map_or([0; 4], |s| s.aborts_by_cause().map(|(_label, count)| count));
    Row {
        bench: format!("{}/{}", scenario.name, backend.name),
        threads,
        ops_per_sec: m.throughput,
        abort_ratio,
        p50_ns: m.latency.p50(),
        p99_ns: m.latency.p99(),
        p999_ns: m.latency.p999(),
        aborts_by_cause,
    }
}

fn render_row(rev: &str, label: &str, r: &Row) -> String {
    let [lock, validation, cut, capacity] = r.aborts_by_cause;
    format!(
        "  {{\"rev\":\"{rev}\",\"label\":\"{label}\",\"bench\":\"{}\",\"threads\":{},\
         \"ops_per_sec\":{:.1},\"abort_ratio\":{:.5},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\
         \"aborts_lock\":{lock},\"aborts_validation\":{validation},\"aborts_cut\":{cut},\
         \"aborts_capacity\":{capacity}}}",
        r.bench, r.threads, r.ops_per_sec, r.abort_ratio, r.p50_ns, r.p99_ns, r.p999_ns
    )
}

/// Does `backend` match the `--backend` filter? Exact name
/// (`tx-list`) or exact family label (`tx` / `lock` / `lockfree`) —
/// never a substring, so `--backend lock` cannot drag in `lockfree-*`.
fn backend_matches(backend: &Backend, filter: &str) -> bool {
    filter.is_empty() || backend.name == filter || backend.family.label() == filter
}

fn main() {
    let cli = BenchCli::parse("BENCH_scenarios.json");
    // Optional axis filters (exact matches) for focused reruns.
    let only_backend = cli.grab("--backend", "");
    let only_scenario = cli.grab("--scenario", "");

    let knobs = Knobs::new(cli.quick);
    let rev = git_rev();
    eprintln!(
        "scenarios: rev {rev}, label {:?}, mode {}, out {}",
        cli.label,
        if cli.quick { "quick" } else { "full" },
        cli.out
    );

    let mut rows = Vec::new();
    for scenario in SCENARIOS {
        if !only_scenario.is_empty() && scenario.name != only_scenario {
            continue;
        }
        for backend in BACKENDS {
            if !backend_matches(backend, &only_backend) {
                continue;
            }
            for &threads in knobs.threads {
                let row = run_cell(backend, scenario, threads, &knobs);
                eprintln!(
                    "  {:<32} t={:<2} {:>12.0} ops/s  abort {:.4}  p50 {:>7}ns  p99 {:>8}ns  \
                     p999 {:>8}ns",
                    row.bench,
                    row.threads,
                    row.ops_per_sec,
                    row.abort_ratio,
                    row.p50_ns,
                    row.p99_ns,
                    row.p999_ns
                );
                rows.push(row);
            }
        }
    }

    if rows.is_empty() {
        eprintln!("scenarios: filters matched nothing; no rows written");
        std::process::exit(2);
    }
    let lines: Vec<String> = rows.iter().map(|r| render_row(&rev, &cli.label, r)).collect();
    append_rows(&cli.out, &lines, cli.fresh);
    eprintln!("scenarios: wrote {} rows to {}", lines.len(), cli.out);
}
