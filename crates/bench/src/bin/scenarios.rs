//! The scenario-matrix engine: every registered backend (transactional,
//! lock-based, lock-free) × every workload scenario × a thread sweep,
//! reporting throughput, latency quantiles and (for tx backends) abort
//! ratios as machine-readable rows in `BENCH_scenarios.json`. The
//! matrix has four wings: the set-shaped scenarios over `BACKENDS`,
//! the YCSB-style record-store family (`ycsb-*`) over `KV_BACKENDS`,
//! the HTAP family (`htap`) — long analytical scans concurrent with
//! YCSB-A-style writers — over both registries, and the network
//! front-end family (`server-kv`) — an open-loop pipelined wire
//! workload against a loopback `polytm-server` — over
//! `SERVER_BACKENDS`.
//!
//! ```text
//! cargo run --release -p polytm-bench --bin scenarios -- --label after
//! cargo run --release -p polytm-bench --bin scenarios -- --quick --out /tmp/smoke.json
//! cargo run --release -p polytm-bench --bin scenarios -- --scenario htap --backend kv-sharded
//! cargo run --release -p polytm-bench --bin scenarios -- --quick --trace /tmp/run.trace
//! ```
//!
//! `--trace <path>` installs the `polytm-obs` ring tracer before any
//! cell runs and writes the ring dump to `<path>` at exit; decode it
//! with `traceview`.
//!
//! Rows share `BENCH_core.json`'s shape, extended with latency
//! quantiles, per-cause abort counts over the measured window and the
//! runner's core count; kv rows additionally carry their read-hit
//! ratio and key space; htap rows carry scan-only latency quantiles
//! and the number of scan-starving aborts:
//!
//! ```text
//! {rev, label, bench, threads, cores, ops_per_sec, abort_ratio,
//!  p50_ns, p99_ns, p999_ns,
//!  aborts_lock, aborts_validation, aborts_cut, aborts_capacity, aborts_unavailable
//!  [, found_ratio, kv_space]
//!  [, scan_p50_ns, scan_p99_ns, scan_p999_ns, scan_aborts]
//!  [, conns, batch_ops_per_commit, wait_stm_ns, wait_wal_ns, wait_net_ns]
//!  [, trace_dropped]}
//! ```
//!
//! `server-kv` rows decompose where commits waited: `wait_stm_ns`
//! (era gate + arbitration + backoff), `wait_wal_ns` (group-commit
//! durability), `wait_net_ns` (reply backpressure) — the same
//! components `traceview --waterfall` attributes per request. Traced
//! runs (`--trace`) add `trace_dropped`, the events each cell shed
//! from its rings (CI fails the quick traced sweep if any cell
//! dropped), and install the slow-request flight recorder
//! (`--slow-us`, default 500).
//!
//! `bench` is `scenario/backend` (e.g. `hotspot/tx-list`,
//! `ycsb-a/kv-sharded`, `htap/kv-adaptive`,
//! `server-kv/kv-durable-async`). For `htap/*` rows the
//! `threads` column is the *writer* count (the sweep axis); one
//! dedicated scanner thread runs alongside. For `server-kv/*` rows
//! `threads` is the client *connection* count swept at a fixed total
//! offered rate, and latency is the wire round trip measured from
//! each request's intended (open-loop) send time. `--quick` shrinks the
//! measured windows so CI can exercise the whole matrix in seconds;
//! only rows from a quiet machine are trajectory data.

use std::sync::Arc;
use std::time::Duration;

use polytm_bench::report::{append_rows, git_rev, BenchCli};
use polytm_bench::{
    Backend, Family, KvBackend, ServerBackend, Shape, BACKENDS, KV_BACKENDS, SERVER_BACKENDS,
};
use polytm_workload::{
    run_htap_kv, run_htap_set, run_kv_scenario_with, run_scenario_with, HtapSpec, KeyDist, KvMix,
    KvSpec, MixSchedule, OpMix, WorkloadSpec,
};

/// Scan-side columns of an HTAP row: scan-only latency quantiles plus
/// the aborts that starve scans (registry capacity + history
/// truncation) over the measured window.
struct ScanFields {
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    aborts: u64,
}

/// Durability columns of a row whose backend commits through a WAL:
/// the group-commit bucket over the measured window, plus the fsync
/// rate the window implies.
struct DurabilityFields {
    commits_durable: u64,
    group_commit_batches: u64,
    fsyncs: u64,
    wal_bytes: u64,
    fsyncs_per_sec: f64,
}

/// Durability columns from the measured window's stats, when the
/// backend logged anything (non-durable backends report all-zero
/// buckets and get no columns).
fn durability_fields(
    stats: Option<&polytm::StatsSnapshot>,
    window: Duration,
) -> Option<DurabilityFields> {
    let s = stats?;
    if s.commits_durable == 0 && s.fsyncs == 0 {
        return None;
    }
    Some(DurabilityFields {
        commits_durable: s.commits_durable,
        group_commit_batches: s.group_commit_batches,
        fsyncs: s.fsyncs,
        wal_bytes: s.wal_bytes,
        fsyncs_per_sec: s.fsyncs as f64 / window.as_secs_f64().max(f64::EPSILON),
    })
}

/// One output row.
struct Row {
    bench: String,
    threads: usize,
    ops_per_sec: f64,
    abort_ratio: f64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    /// Aborts by cause over the measured window (all 0 for
    /// non-transactional backends): lock-conflict, validation, elastic
    /// cut, snapshot-registry capacity, history-unavailable.
    aborts_by_cause: [u64; 5],
    /// KV rows only: `(found_ratio, key_space)`.
    kv: Option<(f64, u64)>,
    /// HTAP rows only: the scan-side columns.
    scan: Option<ScanFields>,
    /// Durable-backend rows only: the WAL / group-commit columns.
    durability: Option<DurabilityFields>,
    /// `server-kv` rows only: connection count and the mean number of
    /// wire write requests coalesced into one STM commit.
    server: Option<ServerFields>,
    /// Traced runs only: events this cell shed from the ring tracer
    /// (nonzero means the cell's trace is incomplete — CI's perf-smoke
    /// fails on it).
    trace_dropped: Option<u64>,
}

/// The network-front-end columns (`server-kv` rows).
struct ServerFields {
    conns: usize,
    batch_ops_per_commit: f64,
    /// Nanoseconds the window's commits spent blocked inside the STM
    /// (era gate + arbitrated lock waits + contention backoff).
    wait_stm_ns: u64,
    /// Nanoseconds the window's commits spent blocked on WAL
    /// durability (group-commit leader + follower waits).
    wait_wal_ns: u64,
    /// Nanoseconds connections spent excluded from reads by reply
    /// backpressure over the window.
    wait_net_ns: u64,
}

/// Measurement windows for the two modes.
struct Knobs {
    sweep: Duration,
    warmup: Duration,
    threads: &'static [usize],
    /// `server-kv` wing: the connection sweep (its `threads` axis).
    server_conns: &'static [usize],
    /// `server-kv` wing: total offered load (ops/s) split across the
    /// connections, so the sweep varies coalescing opportunity at
    /// constant demand rather than demand itself.
    server_rate: f64,
}

impl Knobs {
    fn new(quick: bool) -> Self {
        if quick {
            Self {
                sweep: Duration::from_millis(80),
                warmup: Duration::from_millis(20),
                threads: &[1, 2],
                server_conns: &[1, 2],
                server_rate: 6_000.0,
            }
        } else {
            Self {
                sweep: Duration::from_millis(300),
                warmup: Duration::from_millis(60),
                threads: &[1, 2, 4],
                server_conns: &[1, 4, 16],
                server_rate: 20_000.0,
            }
        }
    }
}

/// One workload scenario: a named (mix, distribution) pair, scaled to
/// the backend's key space.
struct Scenario {
    name: &'static str,
    mix: fn() -> MixSchedule,
    dist: fn(u64) -> KeyDist,
}

/// The scenario axis. Each entry stresses a different regime — see
/// DESIGN.md "The scenario matrix" for what each one is meant to
/// surface.
const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "read-dominated",
        mix: || OpMix::updates(10).into(),
        dist: |_| KeyDist::Uniform,
    },
    Scenario { name: "write-heavy", mix: || OpMix::updates(80).into(), dist: |_| KeyDist::Uniform },
    Scenario { name: "zipf-skew", mix: || OpMix::updates(20).into(), dist: |_| KeyDist::Zipf(1.1) },
    Scenario {
        name: "hotspot",
        mix: || OpMix::updates(20).into(),
        dist: |space| KeyDist::Hotspot { hot_fraction: 0.8, hot_keys: (space / 64).max(1) },
    },
    Scenario {
        // Named after the schedule constructor; earlier trajectory rows
        // carry the old name `phased` for the same cell.
        name: "phased_burst",
        // Read-heavy cruising interrupted by write bursts, cycling
        // deterministically by per-thread op index.
        mix: || MixSchedule::phased_burst(5, 2000, 90, 500),
        dist: |_| KeyDist::Uniform,
    },
    Scenario {
        name: "snapshot-scan",
        // Point updates against whole-range readers: the regime where
        // snapshot semantics (tx) vs best-effort scans (locks/lock-free)
        // differ the most.
        mix: || OpMix::with_scans(20, 10).into(),
        dist: |_| KeyDist::Uniform,
    },
];

/// Key space per backend shape: O(n)-traversal structures get the E4
/// size, O(1) tables the E6 size.
fn key_space(shape: Shape) -> u64 {
    match shape {
        Shape::Ordered => 512,
        Shape::Hash => 8192,
    }
}

/// One YCSB-style record-store scenario over the KV backends.
struct KvScenario {
    name: &'static str,
    mix: fn() -> KvMix,
    dist: fn() -> KeyDist,
}

/// Key population for the YCSB family (hash-shaped stores).
const KV_KEY_SPACE: u64 = 8192;

/// The YCSB core-workload axis. A/B/C/F draw Zipf(0.99) keys (the YCSB
/// default skew); D reads the latest-inserted records behind a growing
/// frontier.
const KV_SCENARIOS: &[KvScenario] = &[
    KvScenario { name: "ycsb-a", mix: KvMix::ycsb_a, dist: || KeyDist::Zipf(0.99) },
    KvScenario { name: "ycsb-b", mix: KvMix::ycsb_b, dist: || KeyDist::Zipf(0.99) },
    KvScenario { name: "ycsb-c", mix: KvMix::ycsb_c, dist: || KeyDist::Zipf(0.99) },
    KvScenario { name: "ycsb-d", mix: KvMix::ycsb_d, dist: || KeyDist::Latest(0.99) },
    KvScenario { name: "ycsb-f", mix: KvMix::ycsb_f, dist: || KeyDist::Zipf(0.99) },
];

/// The HTAP scenario name (its writer mix is fixed: YCSB-A-shaped
/// churn; the analytical side is one dedicated scanner thread).
const HTAP_SCENARIO: &str = "htap";

/// The network-front-end scenario name: an open-loop, pipelined wire
/// workload against a loopback `polytm-server`, sweeping connections
/// at a fixed total offered rate.
const SERVER_SCENARIO: &str = "server-kv";

/// Key population for the server wing (matches the YCSB family).
const SERVER_KEY_SPACE: u64 = 8192;

/// Scanners per HTAP cell (the `threads` sweep varies writers).
const HTAP_SCANNERS: usize = 1;

/// HTAP scans are *long*: a quarter of the key space per scan, not the
/// point-mix default of 1/32nd.
fn htap_scan_span(space: u64) -> u64 {
    (space / 4).max(1)
}

fn htap_spec(writers: usize, space: u64, dist: KeyDist, k: &Knobs) -> HtapSpec {
    HtapSpec {
        writers,
        scanners: HTAP_SCANNERS,
        key_space: space,
        prefill: true,
        dist,
        scan_span: htap_scan_span(space),
        duration: k.sweep,
        warmup: k.warmup,
        record_latency: true,
        seed: 0x117A_90F1 ^ (writers as u64) << 32 ^ space,
    }
}

fn run_kv_cell(backend: &KvBackend, scenario: &KvScenario, threads: usize, k: &Knobs) -> Row {
    let instance = backend.make();
    let spec = KvSpec {
        threads,
        key_space: KV_KEY_SPACE,
        prefill: true,
        mix: (scenario.mix)(),
        dist: (scenario.dist)(),
        scan_span: WorkloadSpec::default_scan_span(KV_KEY_SPACE),
        duration: k.sweep,
        warmup: k.warmup,
        record_latency: true,
        seed: 0x7C5B_A210 ^ (threads as u64) << 32,
    };
    let m = run_kv_scenario_with(instance.table.as_ref(), &spec, || {
        if let Some(stm) = &instance.stm {
            stm.reset_stats();
        }
    });
    let stats = instance.stm.as_ref().map(|stm| stm.stats());
    let abort_ratio = stats.as_ref().map_or(0.0, |s| s.abort_ratio());
    let aborts_by_cause =
        stats.as_ref().map_or([0; 5], |s| s.aborts_by_cause().map(|(_label, count)| count));
    Row {
        bench: format!("{}/{}", scenario.name, backend.name),
        threads,
        ops_per_sec: m.measurement.throughput,
        abort_ratio,
        p50_ns: m.measurement.latency.p50(),
        p99_ns: m.measurement.latency.p99(),
        p999_ns: m.measurement.latency.p999(),
        aborts_by_cause,
        kv: Some((m.found_ratio(), KV_KEY_SPACE)),
        scan: None,
        durability: durability_fields(stats.as_ref(), k.sweep),
        server: None,
        trace_dropped: None,
    }
}

fn run_cell(backend: &Backend, scenario: &Scenario, threads: usize, k: &Knobs) -> Row {
    let space = key_space(backend.shape);
    let instance = backend.make();
    // Prefill by hand (not via the spec); stats reset at window start
    // below, so the abort ratio covers the same interval as the
    // throughput and latency columns — not prefill, not warmup.
    for key in (0..space).step_by(2) {
        instance.set.insert(key);
    }
    let spec = WorkloadSpec {
        threads,
        key_space: space,
        prefill: false,
        mix: (scenario.mix)(),
        dist: (scenario.dist)(space),
        scan_span: WorkloadSpec::default_scan_span(space),
        duration: k.sweep,
        warmup: k.warmup,
        record_latency: true,
        seed: 0x5CE2_A210 ^ (threads as u64) << 32 ^ space,
    };
    let m = run_scenario_with(instance.set.as_ref(), &spec, || {
        if let Some(stm) = &instance.stm {
            stm.reset_stats();
        }
    });
    let stats = instance.stm.as_ref().map(|stm| stm.stats());
    let abort_ratio = stats.as_ref().map_or(0.0, |s| s.abort_ratio());
    let aborts_by_cause =
        stats.as_ref().map_or([0; 5], |s| s.aborts_by_cause().map(|(_label, count)| count));
    Row {
        bench: format!("{}/{}", scenario.name, backend.name),
        threads,
        ops_per_sec: m.throughput,
        abort_ratio,
        p50_ns: m.latency.p50(),
        p99_ns: m.latency.p99(),
        p999_ns: m.latency.p999(),
        aborts_by_cause,
        kv: None,
        scan: None,
        durability: None,
        server: None,
        trace_dropped: None,
    }
}

/// Assemble the HTAP row shared by both backend families. The
/// `threads` column records the writer count (the sweep axis); the
/// standard latency columns equal the scan quantiles because the HTAP
/// driver samples scans only.
fn htap_row(
    bench: String,
    writers: usize,
    m: &polytm_workload::HtapMeasurement,
    stats: Option<&polytm::StatsSnapshot>,
    window: Duration,
) -> Row {
    let abort_ratio = stats.map_or(0.0, |s| s.abort_ratio());
    let aborts_by_cause =
        stats.map_or([0; 5], |s| s.aborts_by_cause().map(|(_label, count)| count));
    // The aborts that kill or delay scans: registry capacity and
    // history truncation (both "the snapshot side is starving").
    let scan_aborts = stats.map_or(0, |s| s.aborts_capacity + s.aborts_unavailable);
    let lat = &m.measurement.latency;
    Row {
        bench,
        threads: writers,
        ops_per_sec: m.measurement.throughput,
        abort_ratio,
        p50_ns: lat.p50(),
        p99_ns: lat.p99(),
        p999_ns: lat.p999(),
        aborts_by_cause,
        kv: None,
        scan: Some(ScanFields {
            p50_ns: lat.p50(),
            p99_ns: lat.p99(),
            p999_ns: lat.p999(),
            aborts: scan_aborts,
        }),
        durability: durability_fields(stats, window),
        server: None,
        trace_dropped: None,
    }
}

fn run_htap_set_cell(backend: &Backend, writers: usize, k: &Knobs) -> Row {
    let space = key_space(backend.shape);
    let instance = backend.make();
    // Half-updates point churn against the long scans; uniform keys so
    // the churn sweeps the whole scanned range.
    let spec = htap_spec(writers, space, KeyDist::Uniform, k);
    let m = run_htap_set(instance.set.as_ref(), OpMix::updates(50), &spec, || {
        if let Some(stm) = &instance.stm {
            stm.reset_stats();
        }
    });
    let stats = instance.stm.as_ref().map(|stm| stm.stats());
    htap_row(format!("{HTAP_SCENARIO}/{}", backend.name), writers, &m, stats.as_ref(), k.sweep)
}

fn run_htap_kv_cell(backend: &KvBackend, writers: usize, k: &Knobs) -> Row {
    let instance = backend.make();
    // YCSB-A churn (50/50 read/update, Zipf skew) under the scanner.
    let spec = htap_spec(writers, KV_KEY_SPACE, KeyDist::Zipf(0.99), k);
    let m = run_htap_kv(instance.table.as_ref(), KvMix::ycsb_a(), &spec, || {
        if let Some(stm) = &instance.stm {
            stm.reset_stats();
        }
    });
    let stats = instance.stm.as_ref().map(|stm| stm.stats());
    htap_row(format!("{HTAP_SCENARIO}/{}", backend.name), writers, &m, stats.as_ref(), k.sweep)
}

/// One `server-kv` cell: spawn a loopback server over the backend's
/// store, prefill through the coalescing path, then drive the
/// open-loop load generator at a fixed *total* rate split across
/// `conns` connections. The `threads` column records the connection
/// count (the sweep axis); latency quantiles are wire round-trip
/// times measured from each request's *intended* send time
/// (coordinated-omission safe), so they include any server-side
/// queueing the offered load induces.
fn run_server_cell(backend: &ServerBackend, conns: usize, k: &Knobs) -> Row {
    let instance = backend.make();
    let handle = polytm_server::Server::spawn(
        Arc::clone(&instance.store),
        "127.0.0.1:0",
        polytm_server::ServerConfig::default(),
    )
    .expect("spawn loopback server");

    // Prefill even keys through the server's own coalescing path so
    // the measured window starts on a warm store.
    let prefill: Vec<polytm_server::WriteRequest> = (0..SERVER_KEY_SPACE)
        .step_by(2)
        .map(|key| polytm_server::WriteRequest::Put { key, value: vec![0xAB; 12] })
        .collect();
    for chunk in prefill.chunks(64) {
        instance
            .store
            .commit_writes(chunk, polytm_server::BatchTag::UNTAGGED)
            .expect("prefill commit");
    }

    instance.stm.reset_stats();
    let spec = polytm_server::LoadSpec {
        conns,
        rate: k.server_rate,
        duration: k.sweep,
        warmup: k.warmup,
        key_space: SERVER_KEY_SPACE,
        seed: 0x5E2_0E2 ^ (conns as u64) << 32,
        ..Default::default()
    };
    let m = polytm_server::run_load(handle.local_addr(), &spec).expect("loopback load run");
    let stats = instance.stm.stats();
    // The stats window spans warmup + sweep (reset precedes warmup),
    // so derive the fsync rate over that same span.
    let window = k.warmup + k.sweep;
    let server = ServerFields {
        conns,
        batch_ops_per_commit: handle.stats().batch_ops_per_commit(),
        wait_stm_ns: stats.stm_wait_ns(),
        wait_wal_ns: stats.wal_wait_ns,
        wait_net_ns: handle
            .stats()
            .backpressure_stalled_ns
            .load(std::sync::atomic::Ordering::Relaxed),
    };
    handle.shutdown();
    Row {
        bench: format!("{SERVER_SCENARIO}/{}", backend.name),
        threads: conns,
        ops_per_sec: m.throughput(),
        abort_ratio: stats.abort_ratio(),
        p50_ns: m.hist.p50(),
        p99_ns: m.hist.p99(),
        p999_ns: m.hist.p999(),
        aborts_by_cause: stats.aborts_by_cause().map(|(_label, count)| count),
        kv: None,
        scan: None,
        durability: durability_fields(Some(&stats), window),
        server: Some(server),
        trace_dropped: None,
    }
}

fn render_row(rev: &str, label: &str, cores: usize, r: &Row) -> String {
    let [lock, validation, cut, capacity, unavailable] = r.aborts_by_cause;
    let kv_fields =
        r.kv.map(|(found_ratio, space)| {
            format!(",\"found_ratio\":{found_ratio:.5},\"kv_space\":{space}")
        })
        .unwrap_or_default();
    let scan_fields = r
        .scan
        .as_ref()
        .map(|s| {
            format!(
                ",\"scan_p50_ns\":{},\"scan_p99_ns\":{},\"scan_p999_ns\":{},\"scan_aborts\":{}",
                s.p50_ns, s.p99_ns, s.p999_ns, s.aborts
            )
        })
        .unwrap_or_default();
    let durability_fields = r
        .durability
        .as_ref()
        .map(|d| {
            format!(
                ",\"commits_durable\":{},\"group_commit_batches\":{},\"fsyncs\":{},\
                 \"wal_bytes\":{},\"fsyncs_per_sec\":{:.1}",
                d.commits_durable, d.group_commit_batches, d.fsyncs, d.wal_bytes, d.fsyncs_per_sec
            )
        })
        .unwrap_or_default();
    let server_fields = r
        .server
        .as_ref()
        .map(|s| {
            format!(
                ",\"conns\":{},\"batch_ops_per_commit\":{:.3},\"wait_stm_ns\":{},\
                 \"wait_wal_ns\":{},\"wait_net_ns\":{}",
                s.conns, s.batch_ops_per_commit, s.wait_stm_ns, s.wait_wal_ns, s.wait_net_ns
            )
        })
        .unwrap_or_default();
    let trace_fields =
        r.trace_dropped.map(|dropped| format!(",\"trace_dropped\":{dropped}")).unwrap_or_default();
    format!(
        "  {{\"rev\":\"{rev}\",\"label\":\"{label}\",\"bench\":\"{}\",\"threads\":{},\
         \"cores\":{cores},\
         \"ops_per_sec\":{:.1},\"abort_ratio\":{:.5},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\
         \"aborts_lock\":{lock},\"aborts_validation\":{validation},\"aborts_cut\":{cut},\
         \"aborts_capacity\":{capacity},\"aborts_unavailable\":{unavailable}\
         {kv_fields}{scan_fields}{durability_fields}{server_fields}{trace_fields}}}",
        r.bench, r.threads, r.ops_per_sec, r.abort_ratio, r.p50_ns, r.p99_ns, r.p999_ns
    )
}

/// Does a backend named `name` in `family` match the `--backend`
/// filter? Exact name (`tx-list`) or exact family label (`tx` /
/// `lock` / `lockfree`) — never a substring, so `--backend lock`
/// cannot drag in `lockfree-*`. Shared by both registries.
fn matches_filter(name: &str, family: Family, filter: &str) -> bool {
    filter.is_empty() || name == filter || family.label() == filter
}

/// Run one cell, attributing ring-tracer sheds during the cell to its
/// row. Deltas, not totals — a cell late in the matrix must not
/// inherit earlier cells' drops.
fn with_drop_delta(
    tracer: Option<&'static polytm_obs::RingTracer>,
    cell: impl FnOnce() -> Row,
) -> Row {
    let before = tracer.map(|t| t.dropped_total());
    let mut row = cell();
    if let (Some(t), Some(before)) = (tracer, before) {
        row.trace_dropped = Some(t.dropped_total().saturating_sub(before));
    }
    row
}

fn main() {
    let cli = BenchCli::parse("BENCH_scenarios.json");
    // Optional axis filters (exact matches) for focused reruns.
    let only_backend = cli.grab("--backend", "");
    let only_scenario = cli.grab("--scenario", "");
    let trace_out = cli.grab("--trace", "");
    let slow_us: u64 =
        cli.grab("--slow-us", "500").parse().expect("--slow-us takes whole microseconds");
    let tracer = if trace_out.is_empty() {
        None
    } else {
        // The slow-request flight recorder rides along with tracing:
        // coalesced commits whose window exceeds --slow-us are retained
        // and summarized at exit.
        polytm_obs::flight::install(slow_us * 1_000, 64);
        Some(polytm_obs::RingTracer::install(1 << 16).expect("a trace sink is already installed"))
    };

    let knobs = Knobs::new(cli.quick);
    let rev = git_rev();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "scenarios: rev {rev}, label {:?}, mode {}, cores {cores}, out {}",
        cli.label,
        if cli.quick { "quick" } else { "full" },
        cli.out
    );

    let mut rows = Vec::new();
    for scenario in SCENARIOS {
        if !only_scenario.is_empty() && scenario.name != only_scenario {
            continue;
        }
        for backend in BACKENDS {
            if !matches_filter(backend.name, backend.family, &only_backend) {
                continue;
            }
            for &threads in knobs.threads {
                let row = with_drop_delta(tracer, || run_cell(backend, scenario, threads, &knobs));
                eprintln!(
                    "  {:<32} t={:<2} {:>12.0} ops/s  abort {:.4}  p50 {:>7}ns  p99 {:>8}ns  \
                     p999 {:>8}ns",
                    row.bench,
                    row.threads,
                    row.ops_per_sec,
                    row.abort_ratio,
                    row.p50_ns,
                    row.p99_ns,
                    row.p999_ns
                );
                rows.push(row);
            }
        }
    }

    // The record-store (YCSB) wing of the matrix.
    for scenario in KV_SCENARIOS {
        if !only_scenario.is_empty() && scenario.name != only_scenario {
            continue;
        }
        for backend in KV_BACKENDS {
            if !matches_filter(backend.name, backend.family, &only_backend) {
                continue;
            }
            for &threads in knobs.threads {
                let row =
                    with_drop_delta(tracer, || run_kv_cell(backend, scenario, threads, &knobs));
                let (found, _) = row.kv.expect("kv cell rows carry kv fields");
                eprintln!(
                    "  {:<32} t={:<2} {:>12.0} ops/s  abort {:.4}  p50 {:>7}ns  p99 {:>8}ns  \
                     found {:.3}",
                    row.bench,
                    row.threads,
                    row.ops_per_sec,
                    row.abort_ratio,
                    row.p50_ns,
                    row.p99_ns,
                    found
                );
                rows.push(row);
            }
        }
    }

    // The HTAP wing: long scans under write churn, over both
    // registries. `threads` sweeps the writer count.
    if only_scenario.is_empty() || only_scenario == HTAP_SCENARIO {
        let mut htap_rows = Vec::new();
        for backend in BACKENDS {
            if !matches_filter(backend.name, backend.family, &only_backend) {
                continue;
            }
            for &writers in knobs.threads {
                htap_rows
                    .push(with_drop_delta(tracer, || run_htap_set_cell(backend, writers, &knobs)));
            }
        }
        for backend in KV_BACKENDS {
            if !matches_filter(backend.name, backend.family, &only_backend) {
                continue;
            }
            for &writers in knobs.threads {
                htap_rows
                    .push(with_drop_delta(tracer, || run_htap_kv_cell(backend, writers, &knobs)));
            }
        }
        for row in htap_rows {
            let scan = row.scan.as_ref().expect("htap rows carry scan fields");
            eprintln!(
                "  {:<32} w={:<2} {:>12.0} ops/s  abort {:.4}  scan p50 {:>9}ns  p99 {:>9}ns  \
                 scan-aborts {}",
                row.bench,
                row.threads,
                row.ops_per_sec,
                row.abort_ratio,
                scan.p50_ns,
                scan.p99_ns,
                scan.aborts
            );
            rows.push(row);
        }
    }

    // The network-front-end wing: the open-loop wire workload against
    // a loopback server. `threads` sweeps the connection count at
    // fixed total offered rate.
    if only_scenario.is_empty() || only_scenario == SERVER_SCENARIO {
        for backend in SERVER_BACKENDS {
            if !matches_filter(backend.name, backend.family, &only_backend) {
                continue;
            }
            for &conns in knobs.server_conns {
                let row = with_drop_delta(tracer, || run_server_cell(backend, conns, &knobs));
                let server = row.server.as_ref().expect("server rows carry server fields");
                eprintln!(
                    "  {:<32} c={:<2} {:>12.0} ops/s  abort {:.4}  p50 {:>7}ns  p99 {:>8}ns  \
                     batch {:.2} ops/commit",
                    row.bench,
                    server.conns,
                    row.ops_per_sec,
                    row.abort_ratio,
                    row.p50_ns,
                    row.p99_ns,
                    server.batch_ops_per_commit
                );
                rows.push(row);
            }
        }
    }

    if rows.is_empty() {
        eprintln!("scenarios: filters matched nothing; no rows written");
        std::process::exit(2);
    }
    let lines: Vec<String> = rows.iter().map(|r| render_row(&rev, &cli.label, cores, r)).collect();
    append_rows(&cli.out, &lines, cli.fresh);
    eprintln!("scenarios: wrote {} rows to {}", lines.len(), cli.out);

    if let Some(t) = tracer {
        let dump = t.drain();
        let events: usize = dump.rings.iter().map(|r| r.events.len()).sum();
        dump.write_file(&trace_out).expect("write trace dump");
        eprintln!(
            "scenarios: traced {events} events across {} rings ({} dropped) to {trace_out}",
            dump.rings.len(),
            dump.dropped_total()
        );
    }
    if let Some(recorder) = polytm_obs::flight::get() {
        let spans = recorder.snapshot();
        eprintln!(
            "scenarios: flight recorder retained {} of {} slow spans (threshold {}us)",
            spans.len(),
            recorder.recorded_total(),
            recorder.threshold_ns() / 1_000
        );
        for s in spans.iter().rev().take(5) {
            eprintln!(
                "  conn {} seq [{},{}] ops {}: total {}us (commit {}us)",
                s.conn,
                s.first_seq,
                s.last_seq,
                s.ops,
                s.total_ns / 1_000,
                s.commit_ns / 1_000
            );
        }
    }
}
