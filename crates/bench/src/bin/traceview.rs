//! Decode and analyze a `polytm-obs` trace dump.
//!
//! ```text
//! cargo run --release -p polytm-bench --bin traceview -- /tmp/run.trace
//! cargo run --release -p polytm-bench --bin traceview -- /tmp/run.trace --top 20
//! cargo run --release -p polytm-bench --bin traceview -- /tmp/run.trace --waterfall
//! ```
//!
//! The input is the `PTRC` ring-dump file a traced run writes
//! (`scenarios --trace <path>`, `perfsuite --trace <path>`, or any
//! embedder calling `RingTracer::drain().write_file(..)`). The output
//! is the four-view report from [`polytm_bench::analyze`]: per-class
//! timelines, abort attribution by address, WAL group-commit
//! histograms, and per-connection coalescing efficiency.
//!
//! Flags:
//!
//! * `--waterfall` — additionally join causal request spans
//!   ([`polytm_bench::waterfall`]) and print per-request tail-latency
//!   decomposition: which layer (batch wait, STM gate/arbitration/
//!   backoff, WAL, everything else) the p50/p99/p999 went to.
//! * `--deny-drops` — exit nonzero if the traced run shed any events
//!   (a dump with drops is an *incomplete* trace; CI uses this so a
//!   waterfall is never built from a stream with holes).
//! * `--top N` — widen the top-k lists (default 10).
//!
//! Exit status: `0` on a useful report; `1` when the dump is
//! unreadable, corrupt (bad magic, truncated, version mismatch,
//! trailing garbage) or contains no events at all; `2` on usage
//! errors; `3` when `--deny-drops` found shed events.

use polytm_bench::analyze::{analyze, render};
use polytm_bench::waterfall;
use polytm_obs::TraceDump;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = match args.iter().find(|a| !a.starts_with("--")) {
        Some(p) => p.clone(),
        None => {
            eprintln!("usage: traceview <dump.trace> [--top N] [--waterfall] [--deny-drops]");
            std::process::exit(2);
        }
    };
    let top: usize = args
        .iter()
        .position(|a| a == "--top")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let want_waterfall = args.iter().any(|a| a == "--waterfall");
    let deny_drops = args.iter().any(|a| a == "--deny-drops");

    let dump = match TraceDump::read_file(std::path::Path::new(&path)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("traceview: {path}: {e}");
            std::process::exit(1);
        }
    };
    let events = dump.merged_events();
    if events.is_empty() {
        eprintln!(
            "traceview: {path}: dump decodes but holds no events ({} rings, capacity {}); \
             was the tracer installed before the run?",
            dump.rings.len(),
            dump.capacity
        );
        std::process::exit(1);
    }
    let dropped = dump.dropped_total();
    eprintln!(
        "traceview: {path}: {} rings (capacity {}), {} events, {} dropped",
        dump.rings.len(),
        dump.capacity,
        events.len(),
        dropped
    );
    print!("{}", render(&analyze(&events), top));
    if want_waterfall {
        print!("{}", waterfall::render(&waterfall::join(&dump), top));
    }
    if deny_drops && dropped > 0 {
        eprintln!(
            "traceview: {path}: {dropped} events dropped — trace is incomplete \
             (raise the ring capacity or shorten the traced window)"
        );
        std::process::exit(3);
    }
}
