//! Decode and analyze a `polytm-obs` trace dump.
//!
//! ```text
//! cargo run --release -p polytm-bench --bin traceview -- /tmp/run.trace
//! cargo run --release -p polytm-bench --bin traceview -- /tmp/run.trace --top 20
//! ```
//!
//! The input is the `PTRC` ring-dump file a traced run writes
//! (`scenarios --trace <path>`, `perfsuite --trace <path>`, or any
//! embedder calling `RingTracer::drain().write_file(..)`). The output
//! is the four-view report from [`polytm_bench::analyze`]: per-class
//! timelines, abort attribution by address, WAL group-commit
//! histograms, and per-connection coalescing efficiency.

use polytm_bench::analyze::{analyze, render};
use polytm_obs::TraceDump;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = match args.iter().find(|a| !a.starts_with("--")) {
        Some(p) => p.clone(),
        None => {
            eprintln!("usage: traceview <dump.trace> [--top N]");
            std::process::exit(2);
        }
    };
    let top: usize = args
        .iter()
        .position(|a| a == "--top")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);

    let dump = match TraceDump::read_file(std::path::Path::new(&path)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("traceview: {path}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "traceview: {path}: {} rings (capacity {}), {} dropped",
        dump.rings.len(),
        dump.capacity,
        dump.dropped_total()
    );
    let events = dump.merged_events();
    print!("{}", render(&analyze(&events), top));
}
