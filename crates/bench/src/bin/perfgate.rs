//! Compare two perf trajectory files and gate on aggregate regression.
//!
//! ```text
//! perfgate <before.json> <after.json> [--max-loss 0.10]
//!          [--before-label L] [--after-label L]
//! ```
//!
//! Rows are matched on `(bench, threads)`; when a file holds several
//! runs of the same cell, the **last** row wins (trajectory files
//! append, so the last row is the most recent). The gate is the
//! **geometric mean** of the per-cell `after/before` throughput
//! ratios: per-cell thresholds would make the fastest microbenches
//! (tens of ns per op, where even a relaxed counter increment is
//! visible) un-gateable, while the geomean answers the question the
//! acceptance criterion actually asks — "did the suite as a whole get
//! more than X% slower?". Exit status 0 = within budget, 1 = regression
//! beyond `--max-loss`, 2 = usage/matching error.

use polytm_bench::report::{parse_json, Json};

/// `(bench, threads) -> ops_per_sec`, last row per key wins.
fn load_cells(
    path: &str,
    label: &str,
) -> Result<std::collections::BTreeMap<(String, u64), f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let rows = match parse_json(&text).map_err(|e| format!("{path}: {e}"))? {
        Json::Arr(rows) => rows,
        _ => return Err(format!("{path}: top level must be an array of rows")),
    };
    let mut cells = std::collections::BTreeMap::new();
    for row in rows {
        let Json::Obj(fields) = row else {
            return Err(format!("{path}: non-object row"));
        };
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        if !label.is_empty() {
            match get("label") {
                Some(Json::Str(l)) if l == label => {}
                _ => continue,
            }
        }
        let (Some(Json::Str(bench)), Some(Json::Num(threads)), Some(Json::Num(ops))) =
            (get("bench"), get("threads"), get("ops_per_sec"))
        else {
            return Err(format!("{path}: row missing bench/threads/ops_per_sec"));
        };
        cells.insert((bench.clone(), *threads as u64), *ops);
    }
    Ok(cells)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && (*i == 0
                    || !matches!(
                        args[i - 1].as_str(),
                        "--max-loss" | "--before-label" | "--after-label"
                    ))
        })
        .map(|(_, a)| a)
        .collect();
    let grab = |flag: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    let [before_path, after_path] = positional.as_slice() else {
        eprintln!(
            "usage: perfgate <before.json> <after.json> [--max-loss 0.10] \
             [--before-label L] [--after-label L]"
        );
        std::process::exit(2);
    };
    let max_loss: f64 = grab("--max-loss", "0.10").parse().unwrap_or_else(|_| {
        eprintln!("--max-loss must be a fraction like 0.10");
        std::process::exit(2);
    });

    let before = load_cells(before_path, &grab("--before-label", "")).unwrap_or_else(|e| {
        eprintln!("perfgate: {e}");
        std::process::exit(2);
    });
    let after = load_cells(after_path, &grab("--after-label", "")).unwrap_or_else(|e| {
        eprintln!("perfgate: {e}");
        std::process::exit(2);
    });

    let mut log_sum = 0.0f64;
    let mut matched = 0usize;
    for ((bench, threads), b) in &before {
        let Some(a) = after.get(&(bench.clone(), *threads)) else {
            continue;
        };
        if *b <= 0.0 || *a <= 0.0 {
            eprintln!("perfgate: skipping {bench} t={threads}: non-positive throughput");
            continue;
        }
        let ratio = a / b;
        log_sum += ratio.ln();
        matched += 1;
        eprintln!("  {bench:<28} t={threads:<2} before {b:>12.0}  after {a:>12.0}  x{ratio:.3}");
    }
    if matched == 0 {
        eprintln!("perfgate: no (bench, threads) cells matched between the two files");
        std::process::exit(2);
    }
    let geomean = (log_sum / matched as f64).exp();
    let floor = 1.0 - max_loss;
    eprintln!(
        "perfgate: geomean x{geomean:.4} over {matched} cells (floor x{floor:.4}, \
         max loss {:.1}%)",
        max_loss * 100.0
    );
    if geomean < floor {
        eprintln!("perfgate: FAIL — aggregate regression beyond budget");
        std::process::exit(1);
    }
    eprintln!("perfgate: OK");
}
