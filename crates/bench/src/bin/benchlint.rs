//! Schema validator for the perf trajectory files — the CI tripwire
//! that keeps `BENCH_core.json` / `BENCH_scenarios.json` from silently
//! rotting.
//!
//! ```text
//! cargo run -p polytm-bench --bin benchlint -- BENCH_core.json BENCH_scenarios.json
//! cargo run -p polytm-bench --bin benchlint -- --no-git /tmp/smoke.json
//! ```
//!
//! For every file: parse the whole document (strict JSON), check each
//! row against the file's schema (core or scenarios, inferred from the
//! first row's fields — `p50_ns` present means scenarios; rows must
//! carry exactly the known fields with sane values), and verify that
//! every recorded `rev` names a commit that is an ancestor of `HEAD` —
//! a row citing a revision outside the history means the trajectory was
//! edited by hand or survived a rewrite, and fails the lint. `--no-git`
//! skips the ancestry check (for validating artifacts outside a
//! repository); `--schema core|scenarios` pins the schema instead of
//! inferring it.

use polytm_bench::report::{rev_is_ancestor_of_head, validate_trajectory, RowSchema};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let no_git = args.iter().any(|a| a == "--no-git");
    let forced_schema =
        args.iter().position(|a| a == "--schema").and_then(|i| args.get(i + 1)).map(|s| {
            match s.as_str() {
                "core" => RowSchema::Core,
                "scenarios" => RowSchema::Scenarios,
                other => {
                    eprintln!("benchlint: unknown schema {other:?} (core|scenarios)");
                    std::process::exit(2);
                }
            }
        });
    let files: Vec<&String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if *a == "--schema" {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .collect()
    };
    if files.is_empty() {
        eprintln!("usage: benchlint [--no-git] [--schema core|scenarios] <file.json>...");
        std::process::exit(2);
    }

    let mut failed = false;
    for path in files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("benchlint: {path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        let (count, revs, schema) = match validate_trajectory(&text, forced_schema) {
            Ok(ok) => ok,
            Err(e) => {
                eprintln!("benchlint: {path}: {e}");
                failed = true;
                continue;
            }
        };
        let mut bad_revs = Vec::new();
        if !no_git {
            for rev in &revs {
                match rev_is_ancestor_of_head(rev) {
                    Ok(true) => {}
                    Ok(false) => bad_revs.push(format!("{rev} (not an ancestor of HEAD)")),
                    Err(e) => bad_revs.push(format!("{rev} ({e})")),
                }
            }
        }
        if bad_revs.is_empty() {
            eprintln!(
                "benchlint: {path}: OK ({count} rows, {} revs{}, schema {schema:?})",
                revs.len(),
                if no_git { ", ancestry unchecked" } else { "" }
            );
        } else {
            for bad in &bad_revs {
                eprintln!("benchlint: {path}: bad rev {bad}");
            }
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
