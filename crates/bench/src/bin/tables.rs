//! Regenerate the experiment tables (E1–E10 in DESIGN.md).
//!
//! ```text
//! cargo run --release -p polytm-bench --bin tables -- all
//! cargo run --release -p polytm-bench --bin tables -- e1 e4
//! POLYTM_BENCH_FULL=1 cargo run --release -p polytm-bench --bin tables -- all
//! ```

use polytm_bench::experiments::{run_experiment, Profile};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<String> = if args.is_empty() { vec!["all".to_string()] } else { args };
    let profile = Profile::from_env();
    eprintln!(
        "profile: {:?} measure, {:?} warmup, threads {:?} (set POLYTM_BENCH_FULL=1 for longer runs)",
        profile.duration, profile.warmup, profile.threads
    );
    for id in &ids {
        match run_experiment(id, &profile) {
            Some(report) => println!("{report}"),
            None => {
                eprintln!("unknown experiment {id:?}; valid: e1..e10, all");
                std::process::exit(2);
            }
        }
    }
}
