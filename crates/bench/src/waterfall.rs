//! Per-request latency waterfalls: joining causal request spans out of
//! a trace dump, offline.
//!
//! ## Why joining is allocation-free at capture time
//!
//! The server executes a request's whole life on the worker thread
//! that owns its connection: decode (`REQ_RECV`), admission
//! (`BATCH_ENQUEUE`), the STM commit and its waits (`WAIT_*`), the WAL
//! durability wait (`WAL_FOLLOWER_WAIT`), the commit point
//! (`BATCH_COMMIT`) and the response (`REQ_DONE`) all land on **one**
//! per-thread ring, in program order. So the hot path never materializes
//! a span — it pushes the same 32-byte events it always pushed — and
//! this module reconstructs every request's waterfall after the fact by
//! replaying each ring in order:
//!
//! * `REQ_RECV (conn, seq)` opens a request.
//! * `WAIT_GATE` / `WAIT_ARBITRATE` / `WAIT_CLOCK` /
//!   `WAL_FOLLOWER_WAIT` / `WAL_LINGER` / `WAL_FSYNC` accumulate into
//!   the ring's *pending commit* bucket.
//! * `BATCH_COMMIT (conn, [first, last])` assigns the bucket, in full,
//!   to every open request of that connection whose `seq` lies in the
//!   range, then resets the bucket. (A batch's waits are shared — every
//!   request in the batch waited through them.)
//! * `REQ_DONE (conn, seq)` closes the request: `total = done − recv`,
//!   and whatever the components don't explain is `other` (decode,
//!   execute, encode — the remainder is what makes the parts sum to
//!   the whole).
//!
//! Rings are replayed independently — merging them by timestamp would
//! interleave unrelated connections and break the positional
//! attribution. Garbage streams (truncated rings, shed events,
//! interleavings the server never produces) degrade into the
//! `unmatched_*` health counters; they never panic.

use std::collections::BTreeMap;

use polytm::trace::{code, unpack_seq_range, TraceEvent};
use polytm_obs::TraceDump;

/// Open requests a single ring tracks at once. Real traces need a few
/// dozen (one batch window's worth); the cap only matters for garbage
/// inputs, where it bounds memory instead of trusting the stream.
const MAX_OPEN_PER_RING: usize = 4096;

/// One joined request span: a wire request's end-to-end latency split
/// into the layers it waited on. All components are nanoseconds;
/// `batch_wait_ns + stm_ns() + wal_ns + other_ns == total_ns` except
/// for the rare overflow spans counted by
/// [`WaterfallReport::overflowed`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestSpan {
    /// Connection the request arrived on.
    pub conn: u64,
    /// Wire sequence number.
    pub seq: u32,
    /// Request opcode.
    pub opcode: u8,
    /// Ring (worker thread) that served it.
    pub ring: u32,
    /// `REQ_DONE − REQ_RECV`: decode to response-buffered.
    pub total_ns: u64,
    /// Admission to commit, net of the commit's own measured waits:
    /// time spent waiting for the batch window to fill with other
    /// requests. Zero for barrier requests (they commit alone).
    pub batch_wait_ns: u64,
    /// Era-gate waits during the batch's commit (all gate sites).
    pub stm_gate_ns: u64,
    /// Arbitrated lock waits during the batch's commit.
    pub stm_arbitrate_ns: u64,
    /// Contention-backoff sleeps between the batch's attempts.
    pub stm_backoff_ns: u64,
    /// WAL durability wait (leader or follower) for the batch.
    pub wal_ns: u64,
    /// Group-window linger observed while this batch committed
    /// (informational: already inside `wal_ns` when this thread led
    /// the flush — not added into the sum).
    pub wal_linger_ns: u64,
    /// Fsync time observed while this batch committed (informational,
    /// inside `wal_ns` like the linger).
    pub wal_fsync_ns: u64,
    /// The remainder: decode, execute, reply encode, and anything the
    /// instrumented waits don't cover.
    pub other_ns: u64,
    /// Highest attempt ordinal seen among the batch's wait events
    /// (0 = committed first try, as far as the waits show).
    pub retries: u32,
    /// Write requests the batch carried (0 = barrier request).
    pub batch_ops: u32,
}

impl RequestSpan {
    /// Total STM wait: gate + arbitration + backoff.
    pub fn stm_ns(&self) -> u64 {
        self.stm_gate_ns.saturating_add(self.stm_arbitrate_ns).saturating_add(self.stm_backoff_ns)
    }

    /// Sum of the decomposed components (equals `total_ns` except for
    /// overflow spans).
    pub fn components_ns(&self) -> u64 {
        self.batch_wait_ns
            .saturating_add(self.stm_ns())
            .saturating_add(self.wal_ns)
            .saturating_add(self.other_ns)
    }
}

/// The joined view of a dump, plus join-health counters. The counters
/// matter: a waterfall whose health counters are nonzero is built from
/// an incomplete or corrupt stream, and the quantiles below it inherit
/// that asterisk.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WaterfallReport {
    /// Every request that both opened and closed, in close order.
    pub requests: Vec<RequestSpan>,
    /// `REQ_DONE` events with no matching open request (shed `REQ_RECV`
    /// or a truncated ring head).
    pub unmatched_done: u64,
    /// Requests still open when their ring ended (shed `REQ_DONE` or a
    /// truncated ring tail).
    pub unclosed_recv: u64,
    /// `BATCH_COMMIT` events (conn ≠ 0) covering no open request.
    pub orphan_commits: u64,
    /// Open requests evicted by the per-ring cap (garbage input).
    pub shed_open: u64,
    /// Spans whose measured waits exceeded their end-to-end time
    /// (cross-batch leakage after a failed commit; the span keeps its
    /// components, clamped, and is counted here).
    pub overflowed: u64,
}

/// A request between `REQ_RECV` and `REQ_DONE` on one ring.
struct OpenReq {
    conn: u64,
    seq: u32,
    opcode: u8,
    recv_ts: u64,
    enqueue_ts: Option<u64>,
    /// Set by `BATCH_COMMIT`: the commit's wait bucket plus commit
    /// timestamp and batch size.
    committed: Option<(PendingCommit, u64, u32)>,
}

/// Wait events accumulated since the last `BATCH_COMMIT` on a ring.
#[derive(Clone, Copy, Default)]
struct PendingCommit {
    gate_ns: u64,
    arbitrate_ns: u64,
    backoff_ns: u64,
    wal_ns: u64,
    linger_ns: u64,
    fsync_ns: u64,
    retries: u32,
}

/// Join one ring's events (in ring order) into `report`.
fn join_ring(ring: u32, events: &[TraceEvent], report: &mut WaterfallReport) {
    let mut open: Vec<OpenReq> = Vec::new();
    let mut pending = PendingCommit::default();

    for ev in events {
        match ev.code {
            code::REQ_RECV => {
                if open.len() >= MAX_OPEN_PER_RING {
                    open.remove(0);
                    report.shed_open += 1;
                }
                open.push(OpenReq {
                    conn: ev.a,
                    seq: ev.n,
                    opcode: ev.sub,
                    recv_ts: ev.ts_ns,
                    enqueue_ts: None,
                    committed: None,
                });
            }
            code::BATCH_ENQUEUE => {
                if let Some(req) = open.iter_mut().rev().find(|r| r.conn == ev.a && r.seq == ev.n) {
                    req.enqueue_ts = Some(ev.ts_ns);
                }
            }
            code::WAIT_GATE => {
                pending.gate_ns = pending.gate_ns.saturating_add(ev.a);
                pending.retries = pending.retries.max(ev.n);
            }
            code::WAIT_ARBITRATE => {
                pending.arbitrate_ns = pending.arbitrate_ns.saturating_add(ev.a);
                pending.retries = pending.retries.max(ev.n);
            }
            code::WAIT_CLOCK => {
                pending.backoff_ns = pending.backoff_ns.saturating_add(ev.a);
                pending.retries = pending.retries.max(ev.n);
            }
            code::WAL_FOLLOWER_WAIT => pending.wal_ns = pending.wal_ns.saturating_add(ev.a),
            code::WAL_LINGER => pending.linger_ns = pending.linger_ns.saturating_add(ev.a),
            code::WAL_FSYNC => pending.fsync_ns = pending.fsync_ns.saturating_add(ev.a),
            code::BATCH_COMMIT => {
                let conn = ev.a;
                if conn != 0 {
                    let (first, last) = unpack_seq_range(ev.b);
                    let mut hit = false;
                    for req in open.iter_mut().filter(|r| {
                        r.conn == conn && first <= r.seq && r.seq <= last && r.committed.is_none()
                    }) {
                        req.committed = Some((pending, ev.ts_ns, ev.n));
                        hit = true;
                    }
                    if !hit {
                        report.orphan_commits += 1;
                    }
                }
                pending = PendingCommit::default();
            }
            code::REQ_DONE => {
                let Some(at) = open.iter().position(|r| r.conn == ev.a && r.seq == ev.n) else {
                    report.unmatched_done += 1;
                    continue;
                };
                let req = open.remove(at);
                let total_ns = ev.ts_ns.saturating_sub(req.recv_ts);
                let mut span = RequestSpan {
                    conn: req.conn,
                    seq: req.seq,
                    opcode: req.opcode,
                    ring,
                    total_ns,
                    ..RequestSpan::default()
                };
                if let Some((commit, commit_ts, ops)) = req.committed {
                    span.stm_gate_ns = commit.gate_ns;
                    span.stm_arbitrate_ns = commit.arbitrate_ns;
                    span.stm_backoff_ns = commit.backoff_ns;
                    span.wal_ns = commit.wal_ns;
                    span.wal_linger_ns = commit.linger_ns;
                    span.wal_fsync_ns = commit.fsync_ns;
                    span.retries = commit.retries;
                    span.batch_ops = ops;
                    let measured = span.stm_ns() + span.wal_ns;
                    let enq = req.enqueue_ts.unwrap_or(req.recv_ts);
                    span.batch_wait_ns = commit_ts.saturating_sub(enq).saturating_sub(measured);
                }
                let explained =
                    span.batch_wait_ns.saturating_add(span.stm_ns()).saturating_add(span.wal_ns);
                if explained > total_ns {
                    report.overflowed += 1;
                }
                span.other_ns = total_ns.saturating_sub(explained);
                report.requests.push(span);
            }
            _ => {}
        }
    }
    report.unclosed_recv += open.len() as u64;
}

/// Join a sequence of `(ring, events)` slices, each in its ring's FIFO
/// order. The pure core of [`join`], so tests can feed synthetic
/// streams without building a [`TraceDump`].
pub fn join_rings<'a>(rings: impl IntoIterator<Item = (u32, &'a [TraceEvent])>) -> WaterfallReport {
    let mut report = WaterfallReport::default();
    for (ring, events) in rings {
        join_ring(ring, events, &mut report);
    }
    report
}

/// Join every ring of a dump into per-request waterfalls.
pub fn join(dump: &TraceDump) -> WaterfallReport {
    join_rings(dump.rings.iter().map(|r| (r.ring, r.events.as_slice())))
}

/// The `q`-per-mille quantile (500 = p50, 999 = p999) of a sorted
/// slice; 0 when empty.
fn quantile(sorted: &[u64], q: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as u64 * q).div_euclid(1000) as usize;
    sorted[rank]
}

/// One layer's attribution row: its latency quantiles across all
/// joined requests plus its share of total latency.
struct LayerRow {
    name: &'static str,
    p50: u64,
    p99: u64,
    p999: u64,
    sum: u64,
}

fn layer_row(name: &'static str, mut values: Vec<u64>) -> LayerRow {
    values.sort_unstable();
    LayerRow {
        name,
        p50: quantile(&values, 500),
        p99: quantile(&values, 990),
        p999: quantile(&values, 999),
        sum: values.iter().fold(0u64, |acc, v| acc.saturating_add(*v)),
    }
}

/// Render the waterfall section `traceview --waterfall` prints:
/// per-layer p50/p99/p999 attribution, the slowest requests'
/// decompositions, per-connection summaries, and the join-health line.
pub fn render(report: &WaterfallReport, top: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let reqs = &report.requests;
    let _ = writeln!(out, "== request waterfall ({} requests joined) ==", reqs.len());
    if reqs.is_empty() {
        let _ =
            writeln!(out, "(no request spans: not a server-kv trace, or REQ_* events were shed)");
    } else {
        let rows = [
            layer_row("total", reqs.iter().map(|r| r.total_ns).collect()),
            layer_row("batch_wait", reqs.iter().map(|r| r.batch_wait_ns).collect()),
            layer_row("stm.gate", reqs.iter().map(|r| r.stm_gate_ns).collect()),
            layer_row("stm.arbitrate", reqs.iter().map(|r| r.stm_arbitrate_ns).collect()),
            layer_row("stm.backoff", reqs.iter().map(|r| r.stm_backoff_ns).collect()),
            layer_row("wal", reqs.iter().map(|r| r.wal_ns).collect()),
            layer_row("other", reqs.iter().map(|r| r.other_ns).collect()),
        ];
        let total_sum = rows[0].sum.max(1);
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>12} {:>12} {:>7}",
            "layer (ns)", "p50", "p99", "p999", "share"
        );
        for row in &rows {
            let _ = writeln!(
                out,
                "{:<14} {:>12} {:>12} {:>12} {:>6.1}%",
                row.name,
                row.p50,
                row.p99,
                row.p999,
                row.sum as f64 * 100.0 / total_sum as f64
            );
        }

        let mut slowest: Vec<&RequestSpan> = reqs.iter().collect();
        slowest.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
        let _ = writeln!(out, "slowest requests:");
        for r in slowest.iter().take(top.min(5)) {
            let _ = writeln!(
                out,
                "  conn {} seq {} op {}: total {}ns = batch_wait {} + stm {} + wal {} + other {} \
                 (retries {}, batch {} ops, ring {})",
                r.conn,
                r.seq,
                r.opcode,
                r.total_ns,
                r.batch_wait_ns,
                r.stm_ns(),
                r.wal_ns,
                r.other_ns,
                r.retries,
                r.batch_ops,
                r.ring
            );
        }

        let mut per_conn: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for r in reqs {
            let e = per_conn.entry(r.conn).or_default();
            e.0 += 1;
            e.1 = e.1.saturating_add(r.total_ns);
        }
        let _ = writeln!(out, "per-connection:");
        for (conn, (n, sum)) in per_conn.iter().take(top) {
            let _ = writeln!(out, "  conn {conn}: {n} requests, mean {}ns", sum / n.max(&1));
        }
    }
    let _ = writeln!(
        out,
        "join health: unmatched_done {}  unclosed_recv {}  orphan_commits {}  shed_open {}  \
         overflowed {}",
        report.unmatched_done,
        report.unclosed_recv,
        report.orphan_commits,
        report.shed_open,
        report.overflowed
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use polytm::trace::{pack_seq_range, NO_CLASS};

    fn ev(code: u8, sub: u8, n: u32, a: u64, b: u64, ts: u64) -> TraceEvent {
        let mut e = TraceEvent::new(code, sub, NO_CLASS, n, a, b);
        e.ts_ns = ts;
        e
    }

    /// The deterministic oracle: a ring with two coalesced writes and a
    /// barrier read, with known waits, joins into spans whose
    /// components sum exactly to their end-to-end times.
    #[test]
    fn oracle_joins_batch_and_barrier() {
        let conn = 7;
        let events = vec![
            ev(code::REQ_RECV, 1, 10, conn, 32, 1_000),
            ev(code::BATCH_ENQUEUE, 1, 10, conn, 1, 1_100),
            ev(code::REQ_RECV, 1, 11, conn, 32, 1_200),
            ev(code::BATCH_ENQUEUE, 1, 11, conn, 2, 1_300),
            // The commit's waits: gate 100ns on attempt 0, arbitrate
            // 200ns on attempt 1, backoff 300ns, WAL wait 400ns.
            ev(code::WAIT_GATE, 1, 0, 100, 0, 2_000),
            ev(code::WAIT_ARBITRATE, 0, 1, 200, 0xAB, 2_100),
            ev(code::WAIT_CLOCK, 0, 1, 300, 0, 2_200),
            ev(code::WAL_FOLLOWER_WAIT, 0, 0, 400, 2, 2_800),
            ev(code::BATCH_COMMIT, 0, 2, conn, pack_seq_range(10, 11), 3_000),
            ev(code::REQ_DONE, 1, 10, conn, 16, 3_100),
            ev(code::REQ_DONE, 1, 11, conn, 16, 3_200),
            // A barrier read: recv → done, no batch events.
            ev(code::REQ_RECV, 2, 12, conn, 16, 4_000),
            ev(code::REQ_DONE, 2, 12, conn, 64, 4_500),
        ];
        let r = join_rings([(0, events.as_slice())]);
        assert_eq!(r.requests.len(), 3);
        assert_eq!(
            (r.unmatched_done, r.unclosed_recv, r.orphan_commits, r.overflowed),
            (0, 0, 0, 0)
        );

        let s10 = &r.requests[0];
        assert_eq!((s10.conn, s10.seq, s10.total_ns), (conn, 10, 2_100));
        assert_eq!((s10.stm_gate_ns, s10.stm_arbitrate_ns, s10.stm_backoff_ns), (100, 200, 300));
        assert_eq!(s10.wal_ns, 400);
        assert_eq!(s10.retries, 1);
        assert_eq!(s10.batch_ops, 2);
        // enqueue 1_100 → commit 3_000 is 1_900ns; minus 1_000ns of
        // measured waits leaves 900ns of batch filling.
        assert_eq!(s10.batch_wait_ns, 900);
        assert_eq!(s10.components_ns(), s10.total_ns, "components sum to the whole");

        let s11 = &r.requests[1];
        assert_eq!(s11.total_ns, 2_000);
        assert_eq!(s11.components_ns(), s11.total_ns);
        // Both batch members inherit the full shared waits.
        assert_eq!(s11.stm_ns(), 600);

        let s12 = &r.requests[2];
        assert_eq!((s12.total_ns, s12.batch_ops), (500, 0));
        assert_eq!(s12.other_ns, 500, "a barrier span is all remainder");

        let text = render(&r, 10);
        assert!(text.contains("3 requests joined"));
        assert!(text.contains("stm.arbitrate"));
        assert!(text.contains("conn 7"));
    }

    /// Every `REQ_RECV` is closed by exactly one `REQ_DONE`: a done
    /// without a recv and a recv without a done both land in the health
    /// counters, not in the spans.
    #[test]
    fn unmatched_events_become_health_counters() {
        let events = vec![
            ev(code::REQ_DONE, 1, 99, 5, 16, 100),
            ev(code::REQ_RECV, 1, 10, 5, 32, 200),
            ev(code::BATCH_COMMIT, 0, 1, 6, pack_seq_range(1, 1), 300),
        ];
        let r = join_rings([(0, events.as_slice())]);
        assert!(r.requests.is_empty());
        assert_eq!(r.unmatched_done, 1);
        assert_eq!(r.unclosed_recv, 1);
        assert_eq!(r.orphan_commits, 1, "commit for conn 6 covers nothing");
    }

    /// Rings join independently: the same (conn, seq) on two rings are
    /// two different requests (conn ids are process-unique in real
    /// traces; garbage inputs must still not cross-contaminate).
    #[test]
    fn rings_are_joined_independently() {
        let a = vec![ev(code::REQ_RECV, 1, 1, 9, 0, 10), ev(code::REQ_DONE, 1, 1, 9, 0, 30)];
        let b = vec![ev(code::REQ_RECV, 1, 1, 9, 0, 100), ev(code::REQ_DONE, 1, 1, 9, 0, 150)];
        let r = join_rings([(0, a.as_slice()), (1, b.as_slice())]);
        assert_eq!(r.requests.len(), 2);
        assert_eq!(r.requests[0].total_ns, 20);
        assert_eq!(r.requests[1].total_ns, 50);
        assert_eq!(r.requests[0].ring, 0);
        assert_eq!(r.requests[1].ring, 1);
    }

    #[test]
    fn untagged_commits_reset_the_bucket_without_attribution() {
        // A prefill-style commit (conn 0) between two requests must
        // clear accumulated waits so they don't leak into the next
        // tagged batch.
        let events = vec![
            ev(code::WAIT_GATE, 0, 0, 5_000, 0, 50),
            ev(code::BATCH_COMMIT, 0, 8, 0, 0, 60),
            ev(code::REQ_RECV, 1, 1, 3, 0, 100),
            ev(code::BATCH_ENQUEUE, 1, 1, 3, 1, 110),
            ev(code::BATCH_COMMIT, 0, 1, 3, pack_seq_range(1, 1), 200),
            ev(code::REQ_DONE, 1, 1, 3, 0, 250),
        ];
        let r = join_rings([(0, events.as_slice())]);
        assert_eq!(r.requests.len(), 1);
        assert_eq!(r.requests[0].stm_ns(), 0, "prefill waits stayed with the prefill");
        assert_eq!(r.orphan_commits, 0, "conn-0 commits are not orphans");
    }

    use proptest::prelude::*;

    /// Byte-soup events: mostly-valid codes with small field values
    /// (so requests sometimes match up) mixed with fully arbitrary
    /// fields (so ranges, conns, and timestamps are absurd).
    fn arb_event() -> impl Strategy<Value = TraceEvent> {
        (
            (0u8..24, any::<u8>()),
            (
                prop_oneof![Just(0u32), 0u32..16, any::<u32>()],
                prop_oneof![Just(0u64), 0u64..8, any::<u64>()],
            ),
            (any::<u64>(), any::<u64>()),
        )
            .prop_map(|((c, sub), (n, a), (b, ts))| {
                let mut e = TraceEvent::new(c, sub, NO_CLASS, n, a, b);
                e.ts_ns = ts;
                e
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Satellite: the joiner is total over garbage. Wrong codes,
        /// absurd ranges, interleavings the server never produces —
        /// all must join into *some* report without panicking, with
        /// health counters that balance the books (every REQ_RECV is
        /// either closed, still open, or shed).
        #[test]
        fn garbage_streams_never_panic(
            rings in prop::collection::vec(
                (0u32..3, prop::collection::vec(arb_event(), 0..200)),
                0..4,
            )
        ) {
            let report =
                join_rings(rings.iter().map(|(ring, events)| (*ring, events.as_slice())));
            let recvs: u64 = rings
                .iter()
                .flat_map(|(_, evs)| evs.iter())
                .filter(|e| e.code == code::REQ_RECV)
                .count() as u64;
            prop_assert_eq!(
                report.requests.len() as u64 + report.unclosed_recv + report.shed_open,
                recvs,
                "every REQ_RECV is accounted for"
            );
            // `other` is the saturating remainder, so whenever nothing
            // overflowed the parts must reassemble into the whole.
            if report.overflowed == 0 {
                for r in &report.requests {
                    prop_assert_eq!(r.components_ns(), r.total_ns);
                }
            }
            let _ = render(&report, 3);
        }
    }

    #[test]
    fn quantile_ranks() {
        let v: Vec<u64> = (1..=1000).collect();
        assert_eq!(quantile(&v, 500), 500);
        assert_eq!(quantile(&v, 999), 999);
        assert_eq!(quantile(&[], 500), 0);
        assert_eq!(quantile(&[42], 999), 42);
    }
}
