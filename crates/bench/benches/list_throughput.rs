//! Criterion companion to experiment E4: single-operation latency on the
//! sorted-list implementations at a fixed population. (The multi-thread
//! throughput sweep lives in the `tables` binary; criterion measures the
//! per-op cost precisely.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use polytm_bench::{make_list_impl, LIST_IMPLS};

const SIZE: u64 = 512;

/// Short measurement windows: the full suite must finish in minutes on a
/// single-core CI box. Bump these for publication-quality numbers.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

fn prefilled(name: &str) -> Box<dyn polytm_workload::ConcurrentSet + Send + Sync> {
    let (set, _stm) = make_list_impl(name);
    for k in (0..SIZE).step_by(2) {
        set.insert(k);
    }
    set
}

fn bench_contains(c: &mut Criterion) {
    let mut g = c.benchmark_group("list_contains_512");
    for name in LIST_IMPLS {
        let set = prefilled(name);
        let mut k = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                k = (k + 7) % SIZE;
                black_box(set.contains(k))
            })
        });
    }
    g.finish();
}

fn bench_insert_remove(c: &mut Criterion) {
    let mut g = c.benchmark_group("list_insert_remove_512");
    for name in LIST_IMPLS {
        let set = prefilled(name);
        let mut k = 1u64;
        g.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                k = (k + 2) % SIZE;
                // Toggle: insert if odd key absent, else remove.
                if !set.insert(k) {
                    set.remove(k);
                }
            })
        });
    }
    g.finish();
}

fn bench_traversal_tail(c: &mut Criterion) {
    // Worst-case traversal: membership of the largest key (full walk for
    // the list-shaped structures). This is where elastic windows vs
    // opaque read sets differ most in memory footprint.
    let mut g = c.benchmark_group("list_contains_tail_512");
    for name in ["tx-elastic", "tx-opaque", "hoh-lock", "harris-michael"] {
        let set = prefilled(name);
        g.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| black_box(set.contains(SIZE - 2)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_contains, bench_insert_remove, bench_traversal_tail
}
criterion_main!(benches);
