//! Benchmarks of the formal-model machinery: acceptance checking and
//! interleaving enumeration (E2/E3's inner loops), plus the STM replayer.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use polytm_schedule::{
    accepts, enumerate_interleavings, figure1_interleaving, figure1_program, replay,
    Synchronization,
};

/// Short measurement windows: the full suite must finish in minutes on a
/// single-core CI box. Bump these for publication-quality numbers.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

fn bench_accepts_figure1(c: &mut Criterion) {
    let program = figure1_program();
    let inter = figure1_interleaving();
    let mut g = c.benchmark_group("accepts_figure1");
    for (name, sync) in [
        ("lock", Synchronization::LockBased),
        ("mono", Synchronization::Monomorphic),
        ("poly", Synchronization::Polymorphic),
    ] {
        g.bench_function(name, |b| b.iter(|| black_box(accepts(&program, &inter, sync).accepted)));
    }
    g.finish();
}

fn bench_enumerate(c: &mut Criterion) {
    let program = figure1_program();
    c.bench_function("enumerate_figure1_interleavings_420", |b| {
        b.iter(|| black_box(enumerate_interleavings(&program).len()))
    });
}

fn bench_sweep_all_interleavings(c: &mut Criterion) {
    // The Theorem-2 inner loop on the Figure 1 program: check all 420
    // interleavings under both synchronizations.
    let program = figure1_program();
    let inters = enumerate_interleavings(&program);
    c.bench_function("sweep_420_interleavings_mono_vs_poly", |b| {
        b.iter(|| {
            let mut accepted = (0u32, 0u32);
            for i in &inters {
                if accepts(&program, i, Synchronization::Monomorphic).accepted {
                    accepted.0 += 1;
                }
                if accepts(&program, i, Synchronization::Polymorphic).accepted {
                    accepted.1 += 1;
                }
            }
            black_box(accepted)
        })
    });
}

fn bench_replay_figure1(c: &mut Criterion) {
    let program = figure1_program();
    let inter = figure1_interleaving();
    let mut g = c.benchmark_group("replay_figure1");
    g.sample_size(30);
    g.bench_function("polymorphic", |b| {
        b.iter(|| {
            black_box(replay(&program, &inter, Synchronization::Polymorphic).unwrap().accepted)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets =
    bench_accepts_figure1,
    bench_enumerate,
    bench_sweep_all_interleavings,
    bench_replay_figure1

}
criterion_main!(benches);
