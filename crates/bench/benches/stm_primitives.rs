//! Microbenchmarks of the STM primitives: transaction start/commit
//! overhead, per-read and per-write cost under each semantics.
//! Complements E4/E6 (which measure whole data structures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use polytm::{Semantics, Stm, TxParams};

/// Short measurement windows: the full suite must finish in minutes on a
/// single-core CI box. Bump these for publication-quality numbers.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

fn bench_empty_transaction(c: &mut Criterion) {
    let mut g = c.benchmark_group("empty_txn");
    for (name, sem) in [
        ("opaque", Semantics::Opaque),
        ("elastic", Semantics::elastic()),
        ("snapshot", Semantics::Snapshot),
        ("irrevocable", Semantics::Irrevocable),
    ] {
        let stm = Stm::new();
        g.bench_function(name, |b| {
            b.iter(|| stm.run(TxParams::new(sem), |_tx| Ok(black_box(0u64))))
        });
    }
    g.finish();
}

fn bench_read_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("read_chain_32");
    for (name, sem) in [
        ("opaque", Semantics::Opaque),
        ("elastic_w2", Semantics::elastic()),
        ("elastic_w8", Semantics::Elastic { window: 8 }),
        ("snapshot", Semantics::Snapshot),
    ] {
        let stm = Stm::new();
        let vars: Vec<_> = (0..32).map(|i| stm.new_tvar(i as i64)).collect();
        g.bench_function(name, |b| {
            b.iter(|| {
                stm.run(TxParams::new(sem), |tx| {
                    let mut acc = 0i64;
                    for v in &vars {
                        acc += v.read(tx)?;
                    }
                    Ok(black_box(acc))
                })
            })
        });
    }
    g.finish();
}

fn bench_write_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("write_commit");
    for n in [1usize, 4, 16] {
        let stm = Stm::new();
        let vars: Vec<_> = (0..n).map(|_| stm.new_tvar(0i64)).collect();
        g.bench_with_input(BenchmarkId::new("opaque", n), &n, |b, _| {
            b.iter(|| {
                stm.run(TxParams::default(), |tx| {
                    for v in &vars {
                        v.modify(tx, |x| x + 1)?;
                    }
                    Ok(())
                })
            })
        });
    }
    g.finish();
}

fn bench_uncontended_counter(c: &mut Criterion) {
    let stm = Stm::new();
    let x = stm.new_tvar(0u64);
    c.bench_function("rmw_single_var", |b| {
        b.iter(|| stm.run(TxParams::default(), |tx| x.modify(tx, |v| v + 1)))
    });
}

fn bench_nontransactional_read(c: &mut Criterion) {
    let stm = Stm::new();
    let x = stm.new_tvar(7u64);
    c.bench_function("load_committed", |b| b.iter(|| black_box(x.load_committed())));
}

criterion_group! {
    name = benches;
    config = quick();
    targets =
    bench_empty_transaction,
    bench_read_chain,
    bench_write_commit,
    bench_uncontended_counter,
    bench_nontransactional_read

}
criterion_main!(benches);
