//! Criterion companion to experiment E6: per-operation latency of the
//! hash-set implementations, including the cost of a full transactional
//! resize.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use polytm::Stm;
use polytm_bench::{make_hash_impl, HASH_IMPLS};
use polytm_structures::TxHashSet;

/// Short measurement windows: the full suite must finish in minutes on a
/// single-core CI box. Bump these for publication-quality numbers.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

fn bench_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_ops_prefilled_4k");
    for name in HASH_IMPLS {
        let (set, _stm) = make_hash_impl(name, 64);
        for k in 0..4096u64 {
            set.insert(k);
        }
        let mut k = 0u64;
        g.bench_with_input(BenchmarkId::new("contains", name), name, |b, _| {
            b.iter(|| {
                k = (k + 13) % 8192;
                black_box(set.contains(k))
            })
        });
        let mut j = 1u64;
        g.bench_with_input(BenchmarkId::new("toggle", name), name, |b, _| {
            b.iter(|| {
                j = (j + 31) % 8192;
                if !set.insert(j) {
                    set.remove(j);
                }
            })
        });
    }
    g.finish();
}

fn bench_transactional_resize(c: &mut Criterion) {
    // The §1 motivating operation: how expensive is an atomic full-table
    // resize, as a function of the table's population?
    let mut g = c.benchmark_group("tx_resize");
    g.sample_size(20);
    for &n in &[256u64, 1024, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_with_setup(
                || {
                    let stm = Arc::new(Stm::new());
                    // max_load high enough that inserts never auto-resize.
                    let h = TxHashSet::new(stm, 8, usize::MAX / 2);
                    for k in 0..n {
                        h.insert(k);
                    }
                    h
                },
                |h| {
                    // Force the precondition: resize only acts when a
                    // bucket overflows, so rebuild through the public
                    // explicit API.
                    black_box(h.resize());
                },
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_ops, bench_transactional_resize
}
criterion_main!(benches);
