//! Transactional skip-list set with deterministic tower heights.
//!
//! The elastic-transactions evaluation (the systems companion to this
//! paper) used a skip list as its O(log n) search structure; this is the
//! transactional equivalent. Tower heights derive from a hash of the key,
//! keeping the structure deterministic for reproducible benchmarks.
//! Like [`crate::txlist::TxList`], single-key operations default to the
//! paper's `weak` (elastic) semantics; aggregates run opaque/snapshot.

use std::sync::Arc;

use polytm::{Semantics, Stm, TVar, Transaction, TxParams, TxResult};

const MAX_LEVEL: usize = 16;

type Link = Option<Arc<Node>>;

struct Node {
    key: i64,
    /// `next[l]` is the successor at level `l`; the tower's height is
    /// `next.len()`.
    next: Vec<TVar<Link>>,
}

/// Height of `key`'s tower: geometric(1/2) via trailing zeros of a mixed
/// hash, deterministic per key.
fn height_of(key: i64) -> usize {
    let mut h = key as u64;
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
    h ^= h >> 31;
    ((h.trailing_zeros() as usize) + 1).min(MAX_LEVEL)
}

/// Sorted transactional set of `i64` keys with O(log n) expected
/// traversals. Cloning shares the structure.
#[derive(Clone)]
pub struct TxSkipList {
    stm: Arc<Stm>,
    /// Head tower: `head[l]` is the first node at level `l`.
    head: Arc<Vec<TVar<Link>>>,
    op_semantics: Semantics,
}

impl TxSkipList {
    /// Empty set, single-key operations elastic.
    pub fn new(stm: Arc<Stm>) -> Self {
        Self::with_op_semantics(stm, Semantics::elastic())
    }

    /// Empty set with explicit per-key-operation semantics.
    pub fn with_op_semantics(stm: Arc<Stm>, op_semantics: Semantics) -> Self {
        let head = Arc::new((0..MAX_LEVEL).map(|_| stm.new_tvar(None)).collect::<Vec<_>>());
        Self { stm, head, op_semantics }
    }

    /// The STM this skip list lives in.
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    /// Walk the tower structure; returns per-level predecessors (`None` =
    /// the head tower) and the candidate node at level 0.
    #[allow(clippy::type_complexity)]
    fn find_preds(
        &self,
        tx: &mut Transaction<'_>,
        key: i64,
    ) -> TxResult<(Vec<Option<Arc<Node>>>, Link)> {
        let mut preds: Vec<Option<Arc<Node>>> = vec![None; MAX_LEVEL];
        let mut pred: Option<Arc<Node>> = None;
        for level in (0..MAX_LEVEL).rev() {
            loop {
                let link = match &pred {
                    Some(p) => p.next[level].read(tx)?,
                    None => self.head[level].read(tx)?,
                };
                match link {
                    Some(ref n) if n.key < key => pred = Some(Arc::clone(n)),
                    _ => break,
                }
            }
            preds[level] = pred.clone();
        }
        let candidate = match &pred {
            Some(p) => p.next[0].read(tx)?,
            None => self.head[0].read(tx)?,
        };
        Ok((preds, candidate))
    }

    /// Transaction-composable membership test.
    pub fn contains_in(&self, tx: &mut Transaction<'_>, key: i64) -> TxResult<bool> {
        let (_, candidate) = self.find_preds(tx, key)?;
        Ok(matches!(candidate, Some(n) if n.key == key))
    }

    /// Transaction-composable insert; `false` if present.
    ///
    /// When `tx` runs elastic semantics, its window must cover the whole
    /// tower (>= `MAX_LEVEL + 2`, see `write_semantics`): a narrower
    /// window cuts predecessor-link reads this insert later writes
    /// against, which can lose a concurrent insert.
    pub fn insert_in(&self, tx: &mut Transaction<'_>, key: i64) -> TxResult<bool> {
        let (preds, candidate) = self.find_preds(tx, key)?;
        if matches!(candidate, Some(ref n) if n.key == key) {
            return Ok(false);
        }
        let h = height_of(key);
        let mut levels = Vec::with_capacity(h);
        #[allow(clippy::needless_range_loop)] // parallel towers/arrays indexed together
        for level in 0..h {
            let succ = match &preds[level] {
                Some(p) => p.next[level].read(tx)?,
                None => self.head[level].read(tx)?,
            };
            levels.push(self.stm.new_tvar(succ));
        }
        let node = Arc::new(Node { key, next: levels });
        #[allow(clippy::needless_range_loop)] // parallel towers/arrays indexed together
        for level in 0..h {
            match &preds[level] {
                Some(p) => p.next[level].write(tx, Some(Arc::clone(&node)))?,
                None => self.head[level].write(tx, Some(Arc::clone(&node)))?,
            }
        }
        Ok(true)
    }

    /// Transaction-composable remove; `false` if absent.
    pub fn remove_in(&self, tx: &mut Transaction<'_>, key: i64) -> TxResult<bool> {
        let (preds, candidate) = self.find_preds(tx, key)?;
        let node = match candidate {
            Some(n) if n.key == key => n,
            _ => return Ok(false),
        };
        #[allow(clippy::needless_range_loop)] // parallel towers/arrays indexed together
        for level in 0..node.next.len() {
            // The predecessor at this level may not point at `node` (its
            // tower may be taller than where we found it); re-walk if so.
            let succ = node.next[level].read(tx)?;
            match &preds[level] {
                Some(p) => {
                    let cur = p.next[level].read(tx)?;
                    if matches!(cur, Some(ref c) if Arc::ptr_eq(c, &node)) {
                        p.next[level].write(tx, succ)?;
                    }
                }
                None => {
                    let cur = self.head[level].read(tx)?;
                    if matches!(cur, Some(ref c) if Arc::ptr_eq(c, &node)) {
                        self.head[level].write(tx, succ)?;
                    }
                }
            }
        }
        Ok(true)
    }

    /// Semantics for operations that *write* tower links. An elastic
    /// window must keep every link the operation later writes against
    /// live (cut reads are never validated); `insert_in` re-reads up to
    /// `MAX_LEVEL + 1` successor links before its first write, so the
    /// narrow search window of [`Semantics::elastic`] would let a
    /// concurrent insert through the same predecessor be silently
    /// overwritten (a lost node). Search operations keep the narrow
    /// window — they write nothing, so cutting stays sound.
    fn write_semantics(&self) -> Semantics {
        match self.op_semantics {
            Semantics::Elastic { .. } => Semantics::Elastic { window: MAX_LEVEL + 2 },
            other => other,
        }
    }

    /// Is `key` in the set?
    pub fn contains(&self, key: i64) -> bool {
        self.stm.run(TxParams::new(self.op_semantics), |tx| self.contains_in(tx, key))
    }

    /// Insert `key`; `false` if present.
    pub fn insert(&self, key: i64) -> bool {
        self.stm.run(TxParams::new(self.write_semantics()), |tx| self.insert_in(tx, key))
    }

    /// Remove `key`; `false` if absent.
    pub fn remove(&self, key: i64) -> bool {
        self.stm.run(TxParams::new(self.write_semantics()), |tx| self.remove_in(tx, key))
    }

    /// Number of keys (opaque, walks level 0).
    pub fn len(&self) -> usize {
        self.stm.run(TxParams::new(Semantics::Opaque), |tx| {
            let mut n = 0;
            let mut link = self.head[0].read(tx)?;
            while let Some(node) = link {
                n += 1;
                link = node.next[0].read(tx)?;
            }
            Ok(n)
        })
    }

    /// True when empty (opaque).
    pub fn is_empty(&self) -> bool {
        self.stm.run(TxParams::new(Semantics::Opaque), |tx| Ok(self.head[0].read(tx)?.is_none()))
    }

    /// Number of keys in `[lo, hi)` under **snapshot** semantics: an
    /// O(log n) tower descent to `lo`, then a level-0 walk to `hi`,
    /// observing one consistent cut without ever aborting.
    pub fn range_count_snapshot(&self, lo: i64, hi: i64) -> usize {
        self.stm.snapshot(|tx| {
            let (_, mut link) = self.find_preds(tx, lo)?;
            let mut n = 0usize;
            while let Some(node) = link {
                if node.key >= hi {
                    break;
                }
                n += 1;
                link = node.next[0].read(tx)?;
            }
            Ok(n)
        })
    }

    /// Sorted snapshot of the keys (opaque).
    pub fn to_vec(&self) -> Vec<i64> {
        self.stm.run(TxParams::new(Semantics::Opaque), |tx| {
            let mut out = Vec::new();
            let mut link = self.head[0].read(tx)?;
            while let Some(node) = link {
                out.push(node.key);
                link = node.next[0].read(tx)?;
            }
            Ok(out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> TxSkipList {
        TxSkipList::new(Arc::new(Stm::new()))
    }

    #[test]
    fn set_semantics_roundtrip() {
        let s = fresh();
        assert!(s.is_empty());
        for k in [5, 1, 9, 3, 7] {
            assert!(s.insert(k));
        }
        assert!(!s.insert(5));
        assert_eq!(s.to_vec(), vec![1, 3, 5, 7, 9]);
        assert!(s.contains(7) && !s.contains(8));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert_eq!(s.to_vec(), vec![1, 3, 7, 9]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn range_count_snapshot_matches_reference() {
        let s = fresh();
        let keys: Vec<i64> = (0..200).map(|i| (i * 13) % 500).collect();
        for &k in &keys {
            s.insert(k);
        }
        let sorted = s.to_vec();
        for (lo, hi) in [(0, 500), (100, 300), (250, 250), (499, 500), (300, 100)] {
            let expect = sorted.iter().filter(|&&k| lo <= k && k < hi).count();
            assert_eq!(s.range_count_snapshot(lo, hi), expect, "[{lo}, {hi})");
        }
    }

    #[test]
    fn larger_population_stays_sorted() {
        let s = fresh();
        let mut keys: Vec<i64> = (0..300).map(|i| (i * 37) % 1000).collect();
        keys.sort_unstable();
        keys.dedup();
        for &k in &keys {
            s.insert(k);
        }
        assert_eq!(s.to_vec(), keys);
    }

    #[test]
    fn towers_are_deterministic() {
        assert_eq!(height_of(42), height_of(42));
        // Heights are geometric: the vast majority of keys are short.
        let tall = (0..1000).filter(|&k| height_of(k) > 4).count();
        assert!(tall < 200, "too many tall towers: {tall}");
    }

    #[test]
    fn remove_tall_tower_keeps_structure() {
        let s = fresh();
        for k in 0..64 {
            s.insert(k);
        }
        // Find a tall key and remove it.
        let tall = (0..64).max_by_key(|&k| height_of(k)).unwrap();
        assert!(s.remove(tall));
        assert!(!s.contains(tall));
        let v = s.to_vec();
        assert_eq!(v.len(), 63);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let s = fresh();
        std::thread::scope(|sc| {
            for t in 0..4 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..100i64 {
                        assert!(s.insert(i * 4 + t));
                    }
                });
            }
        });
        assert_eq!(s.len(), 400);
        let v = s.to_vec();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn concurrent_churn_stays_consistent() {
        let s = fresh();
        for k in 0..32 {
            s.insert(k);
        }
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let s = &s;
                sc.spawn(move || {
                    let mut seed = 11u64 + t;
                    for _ in 0..200 {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = ((seed >> 33) % 48) as i64;
                        if seed & 1 == 0 {
                            s.insert(k);
                        } else {
                            s.remove(k);
                        }
                    }
                });
            }
        });
        let v = s.to_vec();
        assert!(v.windows(2).all(|w| w[0] < w[1]), "sorted unique: {v:?}");
    }
}
