//! Striped transactional counter: opaque increments on per-thread
//! stripes, snapshot reads that never abort.
//!
//! Demonstrates "one liveness guarantee per transaction" (the paper's
//! first suggested application of polymorphism): writers get optimistic
//! opaque transactions, readers get wait-free-style snapshot
//! transactions, and an irrevocable `set` is available for when a caller
//! must not retry.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use polytm::{Semantics, Stm, TVar, Transaction, TxParams, TxResult};

/// Striped `i64` counter. Cloning shares the counter.
///
/// ```
/// use std::sync::Arc;
/// use polytm::Stm;
/// use polytm_structures::TxCounter;
///
/// let c = TxCounter::new(Arc::new(Stm::new()), 4);
/// c.add(10);
/// c.add(-3);
/// assert_eq!(c.get(), 7);       // snapshot read: never aborts
/// assert_eq!(c.set(0), 7);      // irrevocable reset returns the old total
/// ```
#[derive(Clone)]
pub struct TxCounter {
    stm: Arc<Stm>,
    stripes: Arc<Vec<TVar<i64>>>,
    /// Round-robin stripe assignment for callers without an id.
    next_stripe: Arc<AtomicUsize>,
}

impl TxCounter {
    /// A counter with `stripes` independent cells (≥ 1). More stripes =
    /// fewer write conflicts, slower reads.
    pub fn new(stm: Arc<Stm>, stripes: usize) -> Self {
        let cells = Arc::new((0..stripes.max(1)).map(|_| stm.new_tvar(0i64)).collect::<Vec<_>>());
        Self { stm, stripes: cells, next_stripe: Arc::new(AtomicUsize::new(0)) }
    }

    /// The STM this counter lives in.
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Transaction-composable add on an explicit stripe.
    pub fn add_in(&self, tx: &mut Transaction<'_>, stripe: usize, delta: i64) -> TxResult<()> {
        self.stripes[stripe % self.stripes.len()].modify(tx, |v| v + delta)
    }

    /// Add `delta` (one opaque transaction on a round-robin stripe).
    pub fn add(&self, delta: i64) {
        let stripe = self.next_stripe.fetch_add(1, Ordering::Relaxed);
        self.stm.run(TxParams::new(Semantics::Opaque), |tx| self.add_in(tx, stripe, delta));
    }

    /// Add `delta` on the stripe owned by `worker` (stable assignment =
    /// near-zero contention).
    pub fn add_for(&self, worker: usize, delta: i64) {
        self.stm.run(TxParams::new(Semantics::Opaque), |tx| self.add_in(tx, worker, delta));
    }

    /// Transaction-composable sum of all stripes.
    pub fn sum_in(&self, tx: &mut Transaction<'_>) -> TxResult<i64> {
        let mut sum = 0;
        for s in self.stripes.iter() {
            sum += s.read(tx)?;
        }
        Ok(sum)
    }

    /// Current value under **snapshot** semantics: a consistent sum that
    /// never aborts regardless of concurrent writers.
    pub fn get(&self) -> i64 {
        self.stm.run(TxParams::new(Semantics::Snapshot), |tx| self.sum_in(tx))
    }

    /// Current value under opaque semantics (serializes against writers;
    /// used by E9 to contrast abort behaviour with [`TxCounter::get`]).
    pub fn get_atomic(&self) -> i64 {
        self.stm.run(TxParams::new(Semantics::Opaque), |tx| self.sum_in(tx))
    }

    /// Reset to `value`, irrevocably (guaranteed single execution — safe
    /// to pair with side effects like logging the old total).
    pub fn set(&self, value: i64) -> i64 {
        self.stm.run(TxParams::new(Semantics::Irrevocable), |tx| {
            let old = self.sum_in(tx)?;
            for (i, s) in self.stripes.iter().enumerate() {
                s.write(tx, if i == 0 { value } else { 0 })?;
            }
            Ok(old)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let c = TxCounter::new(Arc::new(Stm::new()), 4);
        c.add(5);
        c.add(-2);
        assert_eq!(c.get(), 3);
        assert_eq!(c.get_atomic(), 3);
    }

    #[test]
    fn set_returns_old_total() {
        let c = TxCounter::new(Arc::new(Stm::new()), 4);
        c.add(10);
        assert_eq!(c.set(100), 10);
        assert_eq!(c.get(), 100);
    }

    #[test]
    fn concurrent_adds_sum_exactly() {
        let c = TxCounter::new(Arc::new(Stm::new()), 8);
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add_for(t, 1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn snapshot_reads_never_abort_under_write_pressure() {
        let c = TxCounter::new(Arc::new(Stm::new()), 2);
        std::thread::scope(|s| {
            let c2 = c.clone();
            s.spawn(move || {
                for _ in 0..2000 {
                    c2.add_for(0, 1);
                }
            });
            let mut last = 0;
            for _ in 0..200 {
                let v = c.get();
                assert!(v >= last, "monotone counter went backwards: {v} < {last}");
                last = v;
            }
        });
        assert_eq!(c.get(), 2000);
    }

    #[test]
    fn single_stripe_still_works() {
        let c = TxCounter::new(Arc::new(Stm::new()), 1);
        c.add(1);
        c.add(1);
        assert_eq!(c.get(), 2);
    }
}
