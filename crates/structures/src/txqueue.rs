//! Transactional two-stack FIFO queue.
//!
//! Every operation here is a genuine read-modify-write on the queue ends,
//! so there is **no sound weaker semantics**: all operations run `def`
//! (opaque). The queue exists partly as the counter-example in the test
//! suite and documentation — polymorphism is about *choice*, and the
//! correct choice for a queue is the strong default.

use std::sync::Arc;

use polytm::{Semantics, Stm, TVar, Transaction, TxParams, TxResult};

/// Persistent (functional) stack node.
struct SNode<T> {
    value: T,
    next: Stack<T>,
}

type Stack<T> = Option<Arc<SNode<T>>>;

fn push<T>(stack: &Stack<T>, value: T) -> Stack<T> {
    Some(Arc::new(SNode { value, next: stack.clone() }))
}

/// FIFO queue of `T` values over two functional stacks.
///
/// Cloning shares the queue.
///
/// ```
/// use std::sync::Arc;
/// use polytm::Stm;
/// use polytm_structures::TxQueue;
///
/// let q = TxQueue::new(Arc::new(Stm::new()));
/// q.enqueue('a');
/// q.enqueue('b');
/// assert_eq!(q.dequeue(), Some('a'));
/// assert_eq!(q.dequeue(), Some('b'));
/// assert_eq!(q.dequeue(), None);
/// ```
#[derive(Clone)]
pub struct TxQueue<T: Clone + Send + Sync + 'static> {
    stm: Arc<Stm>,
    /// Dequeue end (in order).
    front: TVar<Stack<T>>,
    /// Enqueue end (reversed).
    back: TVar<Stack<T>>,
}

impl<T: Clone + Send + Sync + 'static> TxQueue<T> {
    /// Empty queue.
    pub fn new(stm: Arc<Stm>) -> Self {
        let front = stm.new_tvar(None);
        let back = stm.new_tvar(None);
        Self { stm, front, back }
    }

    /// The STM this queue lives in.
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    /// Transaction-composable enqueue.
    pub fn enqueue_in(&self, tx: &mut Transaction<'_>, value: T) -> TxResult<()> {
        let back = self.back.read(tx)?;
        self.back.write(tx, push(&back, value))
    }

    /// Transaction-composable dequeue; `None` when empty.
    pub fn dequeue_in(&self, tx: &mut Transaction<'_>) -> TxResult<Option<T>> {
        if let Some(node) = self.front.read(tx)? {
            self.front.write(tx, node.next.clone())?;
            return Ok(Some(node.value.clone()));
        }
        // Front empty: reverse the back stack into the front.
        let mut back = self.back.read(tx)?;
        if back.is_none() {
            return Ok(None);
        }
        let mut reversed: Stack<T> = None;
        while let Some(node) = back {
            reversed = push(&reversed, node.value.clone());
            back = node.next.clone();
        }
        let head = reversed.expect("non-empty back reversed into non-empty front");
        self.back.write(tx, None)?;
        self.front.write(tx, head.next.clone())?;
        Ok(Some(head.value.clone()))
    }

    /// Enqueue `value` (one opaque transaction).
    pub fn enqueue(&self, value: T) {
        self.stm.run(TxParams::new(Semantics::Opaque), |tx| self.enqueue_in(tx, value.clone()));
    }

    /// Dequeue the oldest value, `None` when empty.
    pub fn dequeue(&self) -> Option<T> {
        self.stm.run(TxParams::new(Semantics::Opaque), |tx| self.dequeue_in(tx))
    }

    /// Number of queued values (snapshot semantics: consistent and
    /// non-aborting).
    pub fn len(&self) -> usize {
        self.stm.run(TxParams::new(Semantics::Snapshot), |tx| {
            let mut n = 0usize;
            let mut cur = self.front.read(tx)?;
            while let Some(node) = cur {
                n += 1;
                cur = node.next.clone();
            }
            let mut cur = self.back.read(tx)?;
            while let Some(node) = cur {
                n += 1;
                cur = node.next.clone();
            }
            Ok(n)
        })
    }

    /// True when the queue holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q = TxQueue::new(Arc::new(Stm::new()));
        for i in 0..10 {
            q.enqueue(i);
        }
        for i in 0..10 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn interleaved_enqueue_dequeue() {
        let q = TxQueue::new(Arc::new(Stm::new()));
        q.enqueue("a");
        q.enqueue("b");
        assert_eq!(q.dequeue(), Some("a"));
        q.enqueue("c");
        assert_eq!(q.dequeue(), Some("b"));
        assert_eq!(q.dequeue(), Some("c"));
        assert!(q.is_empty());
    }

    #[test]
    fn len_counts_both_stacks() {
        let q = TxQueue::new(Arc::new(Stm::new()));
        q.enqueue(1);
        q.enqueue(2);
        q.dequeue(); // forces the flip
        q.enqueue(3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn concurrent_producers_consumers_conserve_items() {
        let q = TxQueue::new(Arc::new(Stm::new()));
        let consumed = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..200u64 {
                        q.enqueue(t * 1000 + i);
                    }
                });
            }
            for _ in 0..2 {
                let q = &q;
                let consumed = &consumed;
                s.spawn(move || {
                    let mut got = Vec::new();
                    while got.len() < 200 {
                        if let Some(v) = q.dequeue() {
                            got.push(v);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    consumed.lock().unwrap().extend(got);
                });
            }
        });
        let mut all = consumed.into_inner().unwrap();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400, "every enqueued item dequeued exactly once");
        assert!(q.is_empty());
    }

    #[test]
    fn per_producer_order_is_preserved() {
        // FIFO per producer: a single producer's items come out in order.
        let q = TxQueue::new(Arc::new(Stm::new()));
        for i in 0..50 {
            q.enqueue(i);
        }
        let mut last = -1i64;
        while let Some(v) = q.dequeue() {
            assert!(v > last);
            last = v;
        }
    }
}
