//! Transactional sorted linked-list set — the paper's running example.
//!
//! `contains(z)` is the operation of Figure 1: a traversal
//! `r(x), r(y), r(z)` whose semantics assigns consecutive pairs to
//! critical steps. Under [`Semantics::elastic`] the traversal tolerates
//! concurrent updates behind its sliding window; under
//! [`Semantics::Opaque`] (a monomorphic TM) the same traversal aborts
//! whenever any visited node is overwritten — experiment E4/E5 measures
//! exactly that gap.

use std::sync::Arc;

use polytm::{Semantics, Stm, TVar, Transaction, TxParams, TxResult};

/// A link: `None` is the end of the list.
type Link = Option<Arc<Node>>;

/// An immutable-key node; only the `next` link is transactional.
struct Node {
    key: i64,
    next: TVar<Link>,
}

/// Sorted transactional set of `i64` keys.
///
/// Cloning shares the same underlying list.
///
/// ```
/// use std::sync::Arc;
/// use polytm::Stm;
/// use polytm_structures::TxList;
///
/// let list = TxList::new(Arc::new(Stm::new()));
/// assert!(list.insert(2));
/// assert!(list.insert(1));
/// assert!(!list.insert(2), "duplicate");
/// assert!(list.contains(1));
/// assert_eq!(list.to_vec(), vec![1, 2]);
/// ```
#[derive(Clone)]
pub struct TxList {
    stm: Arc<Stm>,
    head: TVar<Link>,
    /// `start(p)` parameters for read operations (`contains`).
    read_params: TxParams,
    /// `start(p)` parameters for updates (`insert`/`remove`).
    update_params: TxParams,
    /// `start(p)` parameters for range scans
    /// ([`TxList::range_count_snapshot`]); snapshot by default.
    scan_params: TxParams,
}

impl TxList {
    /// Empty set on the given STM, single-key operations elastic.
    pub fn new(stm: Arc<Stm>) -> Self {
        Self::with_op_semantics(stm, Semantics::elastic())
    }

    /// Empty set whose single-key operations use `semantics` — pass
    /// [`Semantics::Opaque`] to emulate a monomorphic TM (the baseline in
    /// E4/E5).
    pub fn with_op_semantics(stm: Arc<Stm>, semantics: Semantics) -> Self {
        Self::with_op_params(
            stm,
            TxParams::new(semantics),
            TxParams::new(semantics),
            TxParams::new(Semantics::Snapshot),
        )
    }

    /// Empty set with full per-operation-kind `start(p)` parameters:
    /// `read` drives `contains`, `update` drives `insert`/`remove`,
    /// `scan` drives [`TxList::range_count_snapshot`]. Tagging the
    /// parameters with distinct [`polytm::ClassId`]s (and installing an
    /// advisor on the STM) makes the list *adaptively* polymorphic: the
    /// runtime learns each operation kind's best semantics.
    ///
    /// # Panics
    /// Panics when `update` requests read-only semantics (updates
    /// write; they would abort forever).
    pub fn with_op_params(stm: Arc<Stm>, read: TxParams, update: TxParams, scan: TxParams) -> Self {
        assert!(
            !update.semantics.is_read_only(),
            "update operations write; read-only semantics cannot commit them"
        );
        let head = stm.new_tvar(None);
        Self { stm, head, read_params: read, update_params: update, scan_params: scan }
    }

    /// The STM this list lives in.
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    /// A handle to the *same* underlying list whose single-key operations
    /// run under `semantics` — polymorphism at the handle level (used by
    /// the semantics-mix ablation E7). For a read-only (snapshot) handle
    /// use [`TxList::clone_with_params`] with a writable update
    /// semantics.
    ///
    /// # Panics
    /// Panics on read-only semantics (the handle's updates would retry
    /// forever).
    pub fn clone_with_semantics(&self, semantics: Semantics) -> TxList {
        self.clone_with_params(TxParams::new(semantics), TxParams::new(semantics), self.scan_params)
    }

    /// A handle to the *same* underlying list with different
    /// per-operation parameters (see [`TxList::with_op_params`]).
    pub fn clone_with_params(&self, read: TxParams, update: TxParams, scan: TxParams) -> TxList {
        assert!(
            !update.semantics.is_read_only(),
            "update operations write; read-only semantics cannot commit them"
        );
        TxList {
            stm: Arc::clone(&self.stm),
            head: self.head.clone(),
            read_params: read,
            update_params: update,
            scan_params: scan,
        }
    }

    /// Transaction-composable membership test.
    pub fn contains_in(&self, tx: &mut Transaction<'_>, key: i64) -> TxResult<bool> {
        let mut link = self.head.read(tx)?;
        while let Some(node) = link {
            if node.key >= key {
                return Ok(node.key == key);
            }
            link = node.next.read(tx)?;
        }
        Ok(false)
    }

    /// Transaction-composable insert; `false` if present.
    pub fn insert_in(&self, tx: &mut Transaction<'_>, key: i64) -> TxResult<bool> {
        // Walk to the insertion point, remembering the incoming link.
        let mut pred: Option<Arc<Node>> = None;
        let mut link = self.head.read(tx)?;
        loop {
            match link {
                Some(ref node) if node.key < key => {
                    let next = node.next.read(tx)?;
                    pred = Some(Arc::clone(node));
                    link = next;
                }
                Some(ref node) if node.key == key => return Ok(false),
                _ => break,
            }
        }
        let new_node = Arc::new(Node { key, next: self.stm.new_tvar(link) });
        match pred {
            Some(p) => p.next.write(tx, Some(new_node))?,
            None => self.head.write(tx, Some(new_node))?,
        }
        Ok(true)
    }

    /// Transaction-composable remove; `false` if absent.
    pub fn remove_in(&self, tx: &mut Transaction<'_>, key: i64) -> TxResult<bool> {
        let mut pred: Option<Arc<Node>> = None;
        let mut link = self.head.read(tx)?;
        loop {
            match link {
                Some(ref node) if node.key < key => {
                    let next = node.next.read(tx)?;
                    pred = Some(Arc::clone(node));
                    link = next;
                }
                Some(ref node) if node.key == key => {
                    let after = node.next.read(tx)?;
                    match pred {
                        Some(p) => p.next.write(tx, after)?,
                        None => self.head.write(tx, after)?,
                    }
                    return Ok(true);
                }
                _ => return Ok(false),
            }
        }
    }

    /// Is `key` in the set? Runs one transaction under the list's
    /// read-operation parameters (`start(weak)` by default — Figure 1's
    /// p1).
    pub fn contains(&self, key: i64) -> bool {
        self.stm.run(self.read_params, |tx| self.contains_in(tx, key))
    }

    /// Insert `key`; `false` if present.
    pub fn insert(&self, key: i64) -> bool {
        self.stm.run(self.update_params, |tx| self.insert_in(tx, key))
    }

    /// Remove `key`; `false` if absent.
    pub fn remove(&self, key: i64) -> bool {
        self.stm.run(self.update_params, |tx| self.remove_in(tx, key))
    }

    /// Number of keys — an *atomic* aggregate, so it runs `def` (opaque):
    /// the whole traversal is one critical step. This is the polymorphism
    /// pitch: one structure, different semantics per operation.
    pub fn len(&self) -> usize {
        self.stm.run(TxParams::new(Semantics::Opaque), |tx| {
            let mut n = 0usize;
            let mut link = self.head.read(tx)?;
            while let Some(node) = link {
                n += 1;
                link = node.next.read(tx)?;
            }
            Ok(n)
        })
    }

    /// True when the set is empty (opaque).
    pub fn is_empty(&self) -> bool {
        self.stm.run(TxParams::new(Semantics::Opaque), |tx| Ok(self.head.read(tx)?.is_none()))
    }

    /// Sum of all keys under **snapshot** semantics: an O(n) read-only
    /// aggregate that never aborts, however hot the list is.
    pub fn sum_snapshot(&self) -> i64 {
        self.stm.run(TxParams::new(Semantics::Snapshot), |tx| {
            let mut sum = 0i64;
            let mut link = self.head.read(tx)?;
            while let Some(node) = link {
                sum += node.key;
                link = node.next.read(tx)?;
            }
            Ok(sum)
        })
    }

    /// Number of keys in `[lo, hi)` under the list's scan parameters —
    /// **snapshot** semantics by default, where the scan observes one
    /// consistent cut of the list and never aborts, however hot the
    /// list is (the scenario matrix's range-scan operation). Handles
    /// built with weaker scan parameters trade that consistency the
    /// same way the lock-based scans do.
    pub fn range_count_snapshot(&self, lo: i64, hi: i64) -> usize {
        self.stm.run(self.scan_params, |tx| {
            let mut n = 0usize;
            let mut link = self.head.read(tx)?;
            while let Some(node) = link {
                if node.key >= hi {
                    break;
                }
                if node.key >= lo {
                    n += 1;
                }
                link = node.next.read(tx)?;
            }
            Ok(n)
        })
    }

    /// Sorted snapshot of the keys (opaque, atomic).
    pub fn to_vec(&self) -> Vec<i64> {
        self.stm.run(TxParams::new(Semantics::Opaque), |tx| {
            let mut out = Vec::new();
            let mut link = self.head.read(tx)?;
            while let Some(node) = link {
                out.push(node.key);
                link = node.next.read(tx)?;
            }
            Ok(out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> TxList {
        TxList::new(Arc::new(Stm::new()))
    }

    #[test]
    fn set_semantics_roundtrip() {
        let l = fresh();
        assert!(l.is_empty());
        assert!(l.insert(5));
        assert!(l.insert(1));
        assert!(l.insert(9));
        assert!(!l.insert(5));
        assert!(l.contains(5) && !l.contains(7));
        assert_eq!(l.to_vec(), vec![1, 5, 9]);
        assert!(l.remove(5));
        assert!(!l.remove(5));
        assert_eq!(l.to_vec(), vec![1, 9]);
        assert_eq!(l.len(), 2);
        assert_eq!(l.sum_snapshot(), 10);
    }

    #[test]
    fn range_count_snapshot_counts_half_open_ranges() {
        let l = fresh();
        for k in [1, 3, 5, 7, 9] {
            l.insert(k);
        }
        assert_eq!(l.range_count_snapshot(3, 8), 3); // 3, 5, 7
        assert_eq!(l.range_count_snapshot(0, 100), 5);
        assert_eq!(l.range_count_snapshot(3, 3), 0, "empty range");
        assert_eq!(l.range_count_snapshot(4, 5), 0, "gap");
        assert_eq!(l.range_count_snapshot(9, 10), 1, "upper bound exclusive");
    }

    #[test]
    fn insert_at_head_middle_tail() {
        let l = fresh();
        l.insert(50);
        l.insert(10); // head
        l.insert(30); // middle
        l.insert(90); // tail
        assert_eq!(l.to_vec(), vec![10, 30, 50, 90]);
        assert!(l.remove(10), "remove head");
        assert!(l.remove(90), "remove tail");
        assert_eq!(l.to_vec(), vec![30, 50]);
    }

    #[test]
    fn elastic_traversal_cuts_are_visible_in_stats() {
        let l = fresh();
        for k in 0..32 {
            l.insert(k);
        }
        l.stm().reset_stats();
        assert!(l.contains(31)); // traverses the whole list elastically
        let stats = l.stm().stats();
        assert!(stats.elastic_cuts > 20, "long elastic traversal must cut: {stats:?}");
    }

    #[test]
    fn opaque_variant_performs_no_cuts() {
        let stm = Arc::new(Stm::new());
        let l = TxList::with_op_semantics(Arc::clone(&stm), Semantics::Opaque);
        for k in 0..32 {
            l.insert(k);
        }
        stm.reset_stats();
        assert!(l.contains(31));
        assert_eq!(stm.stats().elastic_cuts, 0);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let l = fresh();
        std::thread::scope(|s| {
            for t in 0..4 {
                let l = &l;
                s.spawn(move || {
                    for i in 0..100i64 {
                        assert!(l.insert(i * 4 + t));
                    }
                });
            }
        });
        assert_eq!(l.len(), 400);
        let v = l.to_vec();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn concurrent_churn_keeps_sorted_unique() {
        let l = fresh();
        for k in 0..32 {
            l.insert(k);
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let l = &l;
                s.spawn(move || {
                    let mut seed = 3u64 + t;
                    for _ in 0..300 {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = ((seed >> 33) % 48) as i64;
                        if seed & 1 == 0 {
                            l.insert(k);
                        } else {
                            l.remove(k);
                        }
                    }
                });
            }
        });
        let v = l.to_vec();
        assert!(v.windows(2).all(|w| w[0] < w[1]), "sorted unique: {v:?}");
    }

    #[test]
    fn composed_atomic_move_between_lists() {
        // The reusability pitch: build a new atomic operation out of two
        // structures with zero extra synchronization code.
        let stm = Arc::new(Stm::new());
        let a = TxList::new(Arc::clone(&stm));
        let b = TxList::new(Arc::clone(&stm));
        a.insert(7);
        let moved = stm.run(TxParams::default(), |tx| {
            if a.remove_in(tx, 7)? {
                b.insert_in(tx, 7)?;
                Ok(true)
            } else {
                Ok(false)
            }
        });
        assert!(moved);
        assert!(!a.contains(7));
        assert!(b.contains(7));
    }

    #[test]
    fn snapshot_sum_during_writes_is_consistent() {
        // Writers keep the sum invariant (always remove+insert the same
        // key, so the multiset only grows by round values); the snapshot
        // summer must never see a half-applied move.
        let stm = Arc::new(Stm::new());
        let l = TxList::new(Arc::clone(&stm));
        l.insert(100);
        l.insert(200);
        std::thread::scope(|s| {
            let l2 = l.clone();
            s.spawn(move || {
                for _ in 0..300 {
                    // Atomic swap 100 <-> 101 keeping sum in {300, 301}.
                    l2.stm().run(TxParams::default(), |tx| {
                        if l2.remove_in(tx, 100)? {
                            l2.insert_in(tx, 101)?;
                        } else if l2.remove_in(tx, 101)? {
                            l2.insert_in(tx, 100)?;
                        }
                        Ok(())
                    });
                }
            });
            for _ in 0..100 {
                let s = l.sum_snapshot();
                assert!(s == 300 || s == 301, "inconsistent snapshot sum {s}");
            }
        });
    }
}
