//! Transactional ordered map (skip-list based): `i64` keys to arbitrary
//! clonable values, with per-operation semantics like the sets.
//!
//! `get` runs the paper's `weak` (elastic) semantics by default — a map
//! lookup is a search traversal, the same shape as Figure 1's p1. Value
//! updates write through a per-node value register, so overwriting a
//! value never restructures the index.

use std::sync::Arc;

use polytm::{Semantics, Stm, TVar, Transaction, TxParams, TxResult};

const MAX_LEVEL: usize = 16;

type Link<V> = Option<Arc<Node<V>>>;

struct Node<V: Clone + Send + Sync + 'static> {
    key: i64,
    value: TVar<V>,
    next: Vec<TVar<Link<V>>>,
}

fn height_of(key: i64) -> usize {
    let mut h = key as u64;
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
    h ^= h >> 31;
    ((h.trailing_zeros() as usize) + 1).min(MAX_LEVEL)
}

/// Ordered transactional map. Cloning shares the map.
///
/// ```
/// use std::sync::Arc;
/// use polytm::Stm;
/// use polytm_structures::TxMap;
///
/// let map: TxMap<&str> = TxMap::new(Arc::new(Stm::new()));
/// assert_eq!(map.insert(2, "two"), None);
/// assert_eq!(map.insert(2, "TWO"), Some("two"));
/// assert_eq!(map.get(2), Some("TWO"));
/// assert_eq!(map.entries_snapshot(), vec![(2, "TWO")]);
/// ```
#[derive(Clone)]
pub struct TxMap<V: Clone + Send + Sync + 'static> {
    stm: Arc<Stm>,
    head: Arc<Vec<TVar<Link<V>>>>,
    op_semantics: Semantics,
}

impl<V: Clone + Send + Sync + 'static> TxMap<V> {
    /// Empty map, lookups elastic.
    pub fn new(stm: Arc<Stm>) -> Self {
        Self::with_op_semantics(stm, Semantics::elastic())
    }

    /// Empty map with explicit per-operation semantics.
    pub fn with_op_semantics(stm: Arc<Stm>, op_semantics: Semantics) -> Self {
        let head = Arc::new((0..MAX_LEVEL).map(|_| stm.new_tvar(None)).collect::<Vec<_>>());
        Self { stm, head, op_semantics }
    }

    /// The STM this map lives in.
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    #[allow(clippy::type_complexity)]
    fn find_preds(
        &self,
        tx: &mut Transaction<'_>,
        key: i64,
    ) -> TxResult<(Vec<Option<Arc<Node<V>>>>, Link<V>)> {
        let mut preds: Vec<Option<Arc<Node<V>>>> = vec![None; MAX_LEVEL];
        let mut pred: Option<Arc<Node<V>>> = None;
        for level in (0..MAX_LEVEL).rev() {
            loop {
                let link = match &pred {
                    Some(p) => p.next[level].read(tx)?,
                    None => self.head[level].read(tx)?,
                };
                match link {
                    Some(ref n) if n.key < key => pred = Some(Arc::clone(n)),
                    _ => break,
                }
            }
            preds[level] = pred.clone();
        }
        let candidate = match &pred {
            Some(p) => p.next[0].read(tx)?,
            None => self.head[0].read(tx)?,
        };
        Ok((preds, candidate))
    }

    /// Transaction-composable lookup.
    pub fn get_in(&self, tx: &mut Transaction<'_>, key: i64) -> TxResult<Option<V>> {
        let (_, cand) = self.find_preds(tx, key)?;
        match cand {
            Some(n) if n.key == key => Ok(Some(n.value.read(tx)?)),
            _ => Ok(None),
        }
    }

    /// Transaction-composable insert/overwrite; returns the previous
    /// value if any.
    ///
    /// When `tx` runs elastic semantics, its window must cover the whole
    /// tower (>= `MAX_LEVEL + 2`, see `write_semantics`): a narrower
    /// window cuts predecessor-link reads this insert later writes
    /// against, which can lose a concurrent insert.
    pub fn insert_in(&self, tx: &mut Transaction<'_>, key: i64, value: V) -> TxResult<Option<V>> {
        let (preds, cand) = self.find_preds(tx, key)?;
        if let Some(n) = cand {
            if n.key == key {
                return Ok(Some(n.value.replace(tx, value)?));
            }
        }
        let h = height_of(key);
        let mut levels = Vec::with_capacity(h);
        #[allow(clippy::needless_range_loop)] // parallel towers/arrays indexed together
        for level in 0..h {
            let succ = match &preds[level] {
                Some(p) => p.next[level].read(tx)?,
                None => self.head[level].read(tx)?,
            };
            levels.push(self.stm.new_tvar(succ));
        }
        let node = Arc::new(Node { key, value: self.stm.new_tvar(value), next: levels });
        #[allow(clippy::needless_range_loop)] // parallel towers/arrays indexed together
        for level in 0..h {
            match &preds[level] {
                Some(p) => p.next[level].write(tx, Some(Arc::clone(&node)))?,
                None => self.head[level].write(tx, Some(Arc::clone(&node)))?,
            }
        }
        Ok(None)
    }

    /// Transaction-composable remove; returns the removed value if any.
    pub fn remove_in(&self, tx: &mut Transaction<'_>, key: i64) -> TxResult<Option<V>> {
        let (preds, cand) = self.find_preds(tx, key)?;
        let node = match cand {
            Some(n) if n.key == key => n,
            _ => return Ok(None),
        };
        #[allow(clippy::needless_range_loop)] // parallel towers/arrays indexed together
        for level in 0..node.next.len() {
            let succ = node.next[level].read(tx)?;
            match &preds[level] {
                Some(p) => {
                    let cur = p.next[level].read(tx)?;
                    if matches!(cur, Some(ref c) if Arc::ptr_eq(c, &node)) {
                        p.next[level].write(tx, succ)?;
                    }
                }
                None => {
                    let cur = self.head[level].read(tx)?;
                    if matches!(cur, Some(ref c) if Arc::ptr_eq(c, &node)) {
                        self.head[level].write(tx, succ)?;
                    }
                }
            }
        }
        Ok(Some(node.value.read(tx)?))
    }

    /// Semantics for operations that *write* tower links. An elastic
    /// window must keep every link the operation later writes against
    /// live (cut reads are never validated); `insert_in` re-reads up to
    /// `MAX_LEVEL + 1` successor links before its first write, so the
    /// narrow search window of [`Semantics::elastic`] would let a
    /// concurrent insert through the same predecessor be silently
    /// overwritten (a lost entry). Lookups keep the narrow window.
    fn write_semantics(&self) -> Semantics {
        match self.op_semantics {
            Semantics::Elastic { .. } => Semantics::Elastic { window: MAX_LEVEL + 2 },
            other => other,
        }
    }

    /// Lookup under the map's operation semantics.
    pub fn get(&self, key: i64) -> Option<V> {
        self.stm.run(TxParams::new(self.op_semantics), |tx| self.get_in(tx, key))
    }

    /// Insert/overwrite; returns the previous value.
    pub fn insert(&self, key: i64, value: V) -> Option<V> {
        self.stm
            .run(TxParams::new(self.write_semantics()), |tx| self.insert_in(tx, key, value.clone()))
    }

    /// Remove; returns the removed value.
    pub fn remove(&self, key: i64) -> Option<V> {
        self.stm.run(TxParams::new(self.write_semantics()), |tx| self.remove_in(tx, key))
    }

    /// Atomically update the value at `key` (no-op if absent); returns
    /// whether a value was updated. A genuine read-modify-write, so it
    /// always runs opaque.
    pub fn update<F: Fn(&V) -> V>(&self, key: i64, f: F) -> bool {
        self.stm.run(TxParams::new(Semantics::Opaque), |tx| {
            let (_, cand) = self.find_preds(tx, key)?;
            match cand {
                Some(n) if n.key == key => {
                    let old = n.value.read(tx)?;
                    n.value.write(tx, f(&old))?;
                    Ok(true)
                }
                _ => Ok(false),
            }
        })
    }

    /// Number of entries (opaque).
    pub fn len(&self) -> usize {
        self.stm.run(TxParams::new(Semantics::Opaque), |tx| {
            let mut n = 0;
            let mut link = self.head[0].read(tx)?;
            while let Some(node) = link {
                n += 1;
                link = node.next[0].read(tx)?;
            }
            Ok(n)
        })
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.stm.run(TxParams::new(Semantics::Opaque), |tx| Ok(self.head[0].read(tx)?.is_none()))
    }

    /// Ordered `(key, value)` snapshot under **snapshot** semantics —
    /// a consistent O(n) export that never aborts.
    pub fn entries_snapshot(&self) -> Vec<(i64, V)> {
        self.stm.run(TxParams::new(Semantics::Snapshot), |tx| {
            let mut out = Vec::new();
            let mut link = self.head[0].read(tx)?;
            while let Some(node) = link {
                out.push((node.key, node.value.read(tx)?));
                link = node.next[0].read(tx)?;
            }
            Ok(out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn fresh() -> TxMap<String> {
        TxMap::new(Arc::new(Stm::new()))
    }

    #[test]
    fn map_semantics_roundtrip() {
        let m = fresh();
        assert!(m.is_empty());
        assert_eq!(m.insert(2, "b".into()), None);
        assert_eq!(m.insert(1, "a".into()), None);
        assert_eq!(m.insert(2, "B".into()), Some("b".into()));
        assert_eq!(m.get(1).as_deref(), Some("a"));
        assert_eq!(m.get(2).as_deref(), Some("B"));
        assert_eq!(m.get(3), None);
        assert_eq!(m.remove(1).as_deref(), Some("a"));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn entries_are_ordered() {
        let m = fresh();
        for k in [9, 2, 7, 1] {
            m.insert(k, k.to_string());
        }
        let entries = m.entries_snapshot();
        assert_eq!(
            entries,
            vec![
                (1, "1".to_string()),
                (2, "2".to_string()),
                (7, "7".to_string()),
                (9, "9".to_string())
            ]
        );
    }

    #[test]
    fn update_in_place() {
        let stm = Arc::new(Stm::new());
        let m: TxMap<i64> = TxMap::new(stm);
        m.insert(5, 10);
        assert!(m.update(5, |v| v * 2));
        assert!(!m.update(6, |v| v * 2));
        assert_eq!(m.get(5), Some(20));
    }

    #[test]
    fn agrees_with_btreemap_model() {
        let m: TxMap<u64> = TxMap::new(Arc::new(Stm::new()));
        let mut model = BTreeMap::new();
        let mut seed = 5u64;
        for _ in 0..600 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = ((seed >> 33) % 64) as i64;
            let v = seed % 1000;
            match seed % 4 {
                0 => assert_eq!(m.insert(k, v), model.insert(k, v)),
                1 => assert_eq!(m.remove(k), model.remove(&k)),
                2 => assert_eq!(m.get(k), model.get(&k).copied()),
                _ => {
                    let got = m.update(k, |x| x + 1);
                    let want = model.get_mut(&k).map(|x| *x += 1).is_some();
                    assert_eq!(got, want);
                }
            }
        }
        let entries: Vec<(i64, u64)> = model.into_iter().collect();
        assert_eq!(m.entries_snapshot(), entries);
    }

    #[test]
    fn concurrent_per_key_counters_are_exact() {
        let stm = Arc::new(Stm::new());
        let m: TxMap<u64> = TxMap::new(Arc::clone(&stm));
        for k in 0..8 {
            m.insert(k, 0);
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for i in 0..400u64 {
                        m.update((i % 8) as i64, |v| v + 1);
                    }
                });
            }
        });
        let total: u64 = m.entries_snapshot().into_iter().map(|(_, v)| v).sum();
        assert_eq!(total, 1600);
    }

    #[test]
    fn composes_with_other_transactions() {
        let stm = Arc::new(Stm::new());
        let inventory: TxMap<u64> = TxMap::new(Arc::clone(&stm));
        let sold: TxMap<u64> = TxMap::new(Arc::clone(&stm));
        inventory.insert(1, 5);
        // Atomically move one unit from inventory to sold.
        stm.run(TxParams::default(), |tx| {
            if let Some(n) = inventory.get_in(tx, 1)? {
                if n > 0 {
                    inventory.insert_in(tx, 1, n - 1)?;
                    let s = sold.get_in(tx, 1)?.unwrap_or(0);
                    sold.insert_in(tx, 1, s + 1)?;
                }
            }
            Ok(())
        });
        assert_eq!(inventory.get(1), Some(4));
        assert_eq!(sold.get(1), Some(1));
    }
}
