//! Transactional hash set with a **transactional resize** — the paper's
//! §1 motivating example made concrete.
//!
//! Per-key operations (`contains`/`insert`/`remove`) read the bucket
//! directory and one bucket, running elastically by default: a resize
//! that slides in *behind* an operation does not abort it. The resize
//! itself is one monomorphic (`def`) transaction that atomically swaps
//! the whole directory — the operation that Michael's lock-free table
//! (crate `polytm-lockfree`) simply cannot express.

use std::sync::Arc;

use polytm::{Semantics, Stm, TVar, Transaction, TxParams, TxResult};

type Bucket = Vec<u64>;
type Directory = Arc<Vec<TVar<Bucket>>>;

/// Resizable transactional hash set of `u64` keys.
///
/// Cloning shares the same underlying table.
///
/// ```
/// use std::sync::Arc;
/// use polytm::Stm;
/// use polytm_structures::TxHashSet;
///
/// let set = TxHashSet::new(Arc::new(Stm::new()), 4, 3);
/// for k in 0..64 {
///     assert!(set.insert(k));
/// }
/// assert!(set.buckets() > 4, "overflow triggered a transactional resize");
/// assert!(set.contains(63));
/// assert_eq!(set.len(), 64);
/// ```
#[derive(Clone)]
pub struct TxHashSet {
    stm: Arc<Stm>,
    dir: TVar<Directory>,
    /// Resize when a bucket exceeds this many keys.
    max_load: usize,
    /// `start(p)` parameters for read operations (`contains`).
    read_params: TxParams,
    /// `start(p)` parameters for updates (`insert`/`remove`).
    update_params: TxParams,
    /// `start(p)` parameters for range scans; snapshot by default.
    scan_params: TxParams,
}

fn bucket_index(key: u64, n: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % n
}

impl TxHashSet {
    /// New table with `buckets` initial buckets, splitting when a bucket
    /// exceeds `max_load` keys. Per-key ops run elastic semantics.
    pub fn new(stm: Arc<Stm>, buckets: usize, max_load: usize) -> Self {
        Self::with_op_semantics(stm, buckets, max_load, Semantics::elastic())
    }

    /// As [`TxHashSet::new`] with explicit per-key-operation semantics
    /// (pass [`Semantics::Opaque`] for the monomorphic baseline).
    pub fn with_op_semantics(
        stm: Arc<Stm>,
        buckets: usize,
        max_load: usize,
        op_semantics: Semantics,
    ) -> Self {
        Self::with_op_params(
            stm,
            buckets,
            max_load,
            TxParams::new(op_semantics),
            TxParams::new(op_semantics),
            TxParams::new(Semantics::Snapshot),
        )
    }

    /// As [`TxHashSet::new`] with full per-operation-kind `start(p)`
    /// parameters: `read` drives `contains`, `update` drives
    /// `insert`/`remove`, `scan` drives
    /// [`TxHashSet::range_count_snapshot`]. Tag the parameters with
    /// [`polytm::ClassId`]s (and install an advisor on the STM) for an
    /// adaptively polymorphic table. The resize transaction stays
    /// monomorphic `def` — it must be atomic whatever the advisor
    /// thinks of the per-key classes.
    ///
    /// # Panics
    /// Panics when `update` requests read-only semantics, or on zero
    /// `buckets`/`max_load`.
    pub fn with_op_params(
        stm: Arc<Stm>,
        buckets: usize,
        max_load: usize,
        read: TxParams,
        update: TxParams,
        scan: TxParams,
    ) -> Self {
        assert!(buckets > 0 && max_load > 0);
        assert!(
            !update.semantics.is_read_only(),
            "update operations write; read-only semantics cannot commit them"
        );
        let dir: Directory = Arc::new((0..buckets).map(|_| stm.new_tvar(Vec::new())).collect());
        let dir = stm.new_tvar(dir);
        Self { stm, dir, max_load, read_params: read, update_params: update, scan_params: scan }
    }

    /// The STM this table lives in.
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    /// A handle to the *same* underlying table with different
    /// per-operation parameters (see [`TxHashSet::with_op_params`]).
    ///
    /// # Panics
    /// Panics when `update` requests read-only semantics.
    pub fn clone_with_params(&self, read: TxParams, update: TxParams, scan: TxParams) -> TxHashSet {
        assert!(
            !update.semantics.is_read_only(),
            "update operations write; read-only semantics cannot commit them"
        );
        TxHashSet {
            stm: Arc::clone(&self.stm),
            dir: self.dir.clone(),
            max_load: self.max_load,
            read_params: read,
            update_params: update,
            scan_params: scan,
        }
    }

    /// Transaction-composable membership test.
    pub fn contains_in(&self, tx: &mut Transaction<'_>, key: u64) -> TxResult<bool> {
        let dir = self.dir.read(tx)?;
        let bucket = dir[bucket_index(key, dir.len())].read(tx)?;
        Ok(bucket.contains(&key))
    }

    /// Transaction-composable insert; `Ok(Some(overflow))` reports
    /// whether the touched bucket now exceeds the load factor.
    fn insert_raw(&self, tx: &mut Transaction<'_>, key: u64) -> TxResult<Option<bool>> {
        let dir = self.dir.read(tx)?;
        let slot = &dir[bucket_index(key, dir.len())];
        let mut bucket = slot.read(tx)?;
        if bucket.contains(&key) {
            return Ok(None);
        }
        bucket.push(key);
        let overflow = bucket.len() > self.max_load;
        slot.write(tx, bucket)?;
        Ok(Some(overflow))
    }

    /// Transaction-composable insert; `false` if present. (Load-factor
    /// maintenance only happens through the non-composable
    /// [`TxHashSet::insert`], since a resize must be its own
    /// transaction.)
    pub fn insert_in(&self, tx: &mut Transaction<'_>, key: u64) -> TxResult<bool> {
        Ok(self.insert_raw(tx, key)?.is_some())
    }

    /// Transaction-composable remove; `false` if absent.
    pub fn remove_in(&self, tx: &mut Transaction<'_>, key: u64) -> TxResult<bool> {
        let dir = self.dir.read(tx)?;
        let slot = &dir[bucket_index(key, dir.len())];
        let mut bucket = slot.read(tx)?;
        match bucket.iter().position(|&k| k == key) {
            Some(i) => {
                bucket.swap_remove(i);
                slot.write(tx, bucket)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Is `key` present? (One elastic transaction by default.)
    pub fn contains(&self, key: u64) -> bool {
        self.stm.run(self.read_params, |tx| self.contains_in(tx, key))
    }

    /// Insert `key`; `false` if present. Triggers a transactional resize
    /// when the touched bucket overflows.
    pub fn insert(&self, key: u64) -> bool {
        let overflow = self.stm.run(self.update_params, |tx| self.insert_raw(tx, key));
        match overflow {
            None => false,
            Some(overflow) => {
                if overflow {
                    self.resize();
                }
                true
            }
        }
    }

    /// Remove `key`; `false` if absent.
    pub fn remove(&self, key: u64) -> bool {
        self.stm.run(self.update_params, |tx| self.remove_in(tx, key))
    }

    /// Double the table in **one monomorphic transaction**: atomically
    /// reads every bucket and publishes a new directory. Concurrent
    /// elastic readers either see the old or the new directory, never a
    /// mix. Returns the new bucket count (no-op if another resize already
    /// relieved the pressure).
    pub fn resize(&self) -> usize {
        self.stm.run(TxParams::new(Semantics::Opaque), |tx| {
            let dir = self.dir.read(tx)?;
            // Re-check under the transaction: someone may have resized.
            let mut still_overflowing = false;
            let mut all_keys = Vec::new();
            for slot in dir.iter() {
                let bucket = slot.read(tx)?;
                still_overflowing |= bucket.len() > self.max_load;
                all_keys.extend_from_slice(&bucket);
            }
            if !still_overflowing {
                return Ok(dir.len());
            }
            let new_n = dir.len() * 2;
            let mut new_buckets: Vec<Bucket> = vec![Vec::new(); new_n];
            for k in all_keys {
                new_buckets[bucket_index(k, new_n)].push(k);
            }
            let new_dir: Directory =
                Arc::new(new_buckets.into_iter().map(|b| self.stm.new_tvar(b)).collect());
            self.dir.write(tx, new_dir)?;
            Ok(new_n)
        })
    }

    /// Number of keys in `[lo, hi)` under **snapshot** semantics: one
    /// consistent cut over the whole directory, never aborting. A hash
    /// table has no key order, so this walks every bucket — the point of
    /// the scenario matrix's scan workload is exactly that contrast with
    /// the ordered structures.
    pub fn range_count_snapshot(&self, lo: u64, hi: u64) -> usize {
        self.stm.run(self.scan_params, |tx| {
            let dir = self.dir.read(tx)?;
            let mut n = 0usize;
            for slot in dir.iter() {
                n += slot.read(tx)?.iter().filter(|&&k| lo <= k && k < hi).count();
            }
            Ok(n)
        })
    }

    /// Number of keys (one opaque transaction over all buckets).
    pub fn len(&self) -> usize {
        self.stm.run(TxParams::new(Semantics::Opaque), |tx| {
            let dir = self.dir.read(tx)?;
            let mut n = 0;
            for slot in dir.iter() {
                n += slot.read(tx)?.len();
            }
            Ok(n)
        })
    }

    /// True when no keys are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current bucket count (snapshot read).
    pub fn buckets(&self) -> usize {
        self.stm.run(TxParams::new(Semantics::Snapshot), |tx| Ok(self.dir.read(tx)?.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> TxHashSet {
        TxHashSet::new(Arc::new(Stm::new()), 4, 3)
    }

    #[test]
    fn set_semantics_roundtrip() {
        let h = fresh();
        assert!(h.insert(1));
        assert!(h.insert(2));
        assert!(!h.insert(1));
        assert!(h.contains(1) && h.contains(2) && !h.contains(9));
        assert!(h.remove(1));
        assert!(!h.remove(1));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn range_count_snapshot_spans_buckets() {
        let h = fresh();
        for k in 0..100 {
            h.insert(k);
        }
        assert_eq!(h.range_count_snapshot(0, 100), 100);
        assert_eq!(h.range_count_snapshot(25, 75), 50);
        assert_eq!(h.range_count_snapshot(50, 50), 0);
        assert_eq!(h.range_count_snapshot(99, 200), 1);
    }

    #[test]
    fn resize_triggers_and_preserves_membership() {
        let h = fresh();
        for k in 0..200 {
            assert!(h.insert(k));
        }
        assert!(h.buckets() > 4, "table must have grown from 4 buckets");
        for k in 0..200 {
            assert!(h.contains(k), "key {k} lost across resize");
        }
        assert_eq!(h.len(), 200);
    }

    #[test]
    fn explicit_resize_is_idempotent_when_not_overloaded() {
        let h = fresh();
        h.insert(1);
        let before = h.buckets();
        assert_eq!(h.resize(), before, "resize must no-op when load is fine");
    }

    #[test]
    fn concurrent_inserts_with_resizes() {
        let h = TxHashSet::new(Arc::new(Stm::new()), 2, 2);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..250u64 {
                        assert!(h.insert(t * 1_000_000 + i));
                    }
                });
            }
        });
        assert_eq!(h.len(), 1000);
        for t in 0..4u64 {
            for i in 0..250u64 {
                assert!(h.contains(t * 1_000_000 + i));
            }
        }
        assert!(h.buckets() >= 64, "sustained overflow must have doubled repeatedly");
    }

    #[test]
    fn readers_survive_concurrent_resizes() {
        let h = TxHashSet::new(Arc::new(Stm::new()), 2, 2);
        for k in 0..50 {
            h.insert(k);
        }
        std::thread::scope(|s| {
            let h2 = h.clone();
            s.spawn(move || {
                for k in 50..400 {
                    h2.insert(k);
                }
            });
            for _ in 0..300 {
                for k in 0..50 {
                    assert!(h.contains(k), "stable key {k} must always be found");
                }
            }
        });
    }

    #[test]
    fn composed_cross_structure_transaction() {
        let stm = Arc::new(Stm::new());
        let a = TxHashSet::new(Arc::clone(&stm), 4, 8);
        let b = TxHashSet::new(Arc::clone(&stm), 4, 8);
        a.insert(42);
        stm.run(TxParams::default(), |tx| {
            if a.remove_in(tx, 42)? {
                b.insert_in(tx, 42)?;
            }
            Ok(())
        });
        assert!(!a.contains(42));
        assert!(b.contains(42));
    }
}
