//! # polytm-structures — transactional abstract data types
//!
//! The paper's thesis is that a transactional library is *reusable*: every
//! operation is a transaction, so novice programmers can compose new
//! atomic operations — and polymorphism lets expert programmers pick the
//! cheapest sufficient semantics per operation. These ADTs put that into
//! practice on top of [`polytm`]:
//!
//! * [`txlist`] — sorted linked-list set; `contains`/`insert`/`remove`
//!   run the paper's `weak` (elastic) semantics, aggregate operations run
//!   `def` (opaque) or snapshot semantics. Figure 1's p1 is exactly
//!   [`txlist::TxList::contains`].
//! * [`txhash`] — hash set whose per-key operations are elastic and whose
//!   **resize is one monomorphic transaction** — the introduction's
//!   motivating example of what lock-free hash tables cannot do.
//! * [`txskiplist`] — skip-list set with deterministic towers; same
//!   polymorphic operation mix as the list but O(log n) traversals.
//! * [`txcounter`] — striped counter: opaque increments, snapshot reads
//!   that never abort.
//! * [`txqueue`] — two-stack FIFO queue, all-opaque (its operations are
//!   genuinely read-modify-write, so weakening would be unsound — the
//!   counter-example to "just make everything elastic").
//!
//! Every structure also exposes `*_in(&mut Transaction, ...)` variants so
//! callers can compose them into larger atomic operations (e.g. move a
//! key between two sets atomically — see the crate tests).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod txcounter;
pub mod txhash;
pub mod txlist;
pub mod txmap;
pub mod txqueue;
pub mod txskiplist;

pub use txcounter::TxCounter;
pub use txhash::TxHashSet;
pub use txlist::TxList;
pub use txmap::TxMap;
pub use txqueue::TxQueue;
pub use txskiplist::TxSkipList;
