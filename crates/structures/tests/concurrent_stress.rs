//! Concurrency stress tests for the ADTs that previously had none:
//! [`TxMap`] (the ordered skip-list map) and [`TxQueue`] (the all-opaque
//! two-stack FIFO). Invariants that must hold under arbitrary
//! interleavings: per-key linearizability, snapshot-consistent exports,
//! cross-structure atomic composition, and FIFO conservation.
//!
//! Iteration counts are env-gated like the core stress suites:
//! `POLYTM_STRESS_THREADS` (worker count) and `POLYTM_STRESS_SCALE`
//! (percentage of the written iteration counts).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use polytm::Stm;
use polytm_structures::{TxMap, TxQueue};

fn threads() -> usize {
    std::env::var("POLYTM_STRESS_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4)
        .max(2)
}

fn scaled(n: u64) -> u64 {
    let pct = std::env::var("POLYTM_STRESS_SCALE")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(100)
        .max(1);
    (n * pct / 100).max(1)
}

#[test]
fn txmap_concurrent_counters_sum_exactly() {
    const KEYS: i64 = 16;
    let map: TxMap<u64> = TxMap::new(Arc::new(Stm::new()));
    for k in 0..KEYS {
        map.insert(k, 0);
    }
    let workers = threads();
    let per_thread = scaled(500);
    std::thread::scope(|s| {
        for t in 0..workers as u64 {
            let map = map.clone();
            s.spawn(move || {
                for i in 0..per_thread {
                    map.update(((t + i) % KEYS as u64) as i64, |v| v + 1);
                }
            });
        }
    });
    let total: u64 = map.entries_snapshot().into_iter().map(|(_, v)| v).sum();
    assert_eq!(total, workers as u64 * per_thread, "lost or duplicated updates");
}

#[test]
fn txmap_disjoint_key_churn_preserves_membership() {
    let map: TxMap<u64> = TxMap::new(Arc::new(Stm::new()));
    let workers = threads() as u64;
    let per_thread = scaled(400);
    std::thread::scope(|s| {
        for t in 0..workers {
            let map = map.clone();
            s.spawn(move || {
                let base = (t * 1_000_000) as i64;
                for i in 0..per_thread as i64 {
                    let k = base + i;
                    assert_eq!(map.insert(k, i as u64), None, "key {k}");
                    if i % 3 == 0 {
                        assert_eq!(map.remove(k), Some(i as u64), "key {k}");
                    } else if i % 3 == 1 {
                        assert!(map.update(k, |v| v * 2), "key {k}");
                    }
                }
            });
        }
    });
    for t in 0..workers {
        let base = (t * 1_000_000) as i64;
        for i in 0..per_thread as i64 {
            let k = base + i;
            match i % 3 {
                0 => assert_eq!(map.get(k), None, "removed key {k} resurfaced"),
                1 => assert_eq!(map.get(k), Some(i as u64 * 2), "key {k}"),
                _ => assert_eq!(map.get(k), Some(i as u64), "key {k}"),
            }
        }
    }
    // The ordered export is sorted and complete.
    let entries = map.entries_snapshot();
    assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "export must be sorted unique");
    assert_eq!(entries.len(), map.len());
}

#[test]
fn txmap_snapshot_export_is_a_consistent_cut() {
    // Writers keep a fixed-sum invariant across two keys; every
    // concurrent snapshot export must observe the invariant intact.
    const SUM: u64 = 1_000;
    let map: TxMap<u64> = TxMap::new(Arc::new(Stm::new()));
    map.insert(1, SUM);
    map.insert(2, 0);
    let stop = AtomicBool::new(false);
    let rounds = scaled(300);
    std::thread::scope(|s| {
        let stop_ref = &stop;
        let writer = map.clone();
        s.spawn(move || {
            let stm = Arc::clone(writer.stm());
            for i in 0..rounds {
                let delta = (i % 50) + 1;
                stm.run(polytm::TxParams::default(), |tx| {
                    let a = writer.get_in(tx, 1)?.expect("key 1");
                    let b = writer.get_in(tx, 2)?.expect("key 2");
                    if a >= delta {
                        writer.insert_in(tx, 1, a - delta)?;
                        writer.insert_in(tx, 2, b + delta)?;
                    }
                    Ok(())
                });
            }
            stop_ref.store(true, Ordering::Relaxed);
        });
        let reader = map.clone();
        s.spawn(move || {
            let mut observations = 0u32;
            while !stop_ref.load(Ordering::Relaxed) || observations == 0 {
                let entries = reader.entries_snapshot();
                let sum: u64 = entries.iter().map(|&(_, v)| v).sum();
                assert_eq!(sum, SUM, "snapshot export saw a torn transfer: {entries:?}");
                observations += 1;
            }
        });
    });
}

#[test]
fn txqueue_many_producers_many_consumers_conserve_items() {
    use std::sync::atomic::AtomicU64;
    let q: TxQueue<u64> = TxQueue::new(Arc::new(Stm::new()));
    let producers = threads() / 2 + 1;
    let consumers = threads() / 2 + 1;
    let per_producer = scaled(300);
    let total = producers as u64 * per_producer;
    let consumed = std::sync::Mutex::new(Vec::new());
    // Dequeues so far, across consumers: once it reaches `total`, the
    // queue is drained for good (everything enqueued was consumed), so
    // consumers can exit without a producers-done handshake.
    let dequeued = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..producers as u64 {
            let q = q.clone();
            s.spawn(move || {
                for i in 0..per_producer {
                    q.enqueue(t * 1_000_000 + i);
                }
            });
        }
        for _ in 0..consumers {
            let q = q.clone();
            let consumed = &consumed;
            let dequeued = &dequeued;
            s.spawn(move || {
                let mut got = Vec::new();
                loop {
                    match q.dequeue() {
                        Some(v) => {
                            got.push(v);
                            dequeued.fetch_add(1, Ordering::Relaxed);
                        }
                        None if dequeued.load(Ordering::Relaxed) >= total => break,
                        None => std::thread::yield_now(),
                    }
                }
                consumed.lock().unwrap().extend(got);
            });
        }
    });
    let mut all = consumed.into_inner().unwrap();
    assert_eq!(all.len() as u64, total, "every item consumed exactly once");
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len() as u64, total, "no duplicates");
    assert!(q.is_empty());
}

#[test]
fn txqueue_per_producer_fifo_order_holds_under_concurrency() {
    let q: TxQueue<u64> = TxQueue::new(Arc::new(Stm::new()));
    let producers = threads().min(4) as u64;
    let per_producer = scaled(250);
    std::thread::scope(|s| {
        for t in 0..producers {
            let q = q.clone();
            s.spawn(move || {
                for i in 0..per_producer {
                    q.enqueue(t * 1_000_000 + i);
                }
            });
        }
    });
    // Single consumer after quiescence: each producer's items must come
    // out in that producer's order (FIFO is per-producer under
    // concurrent enqueues).
    let mut last_of = vec![None::<u64>; producers as usize];
    while let Some(v) = q.dequeue() {
        let producer = (v / 1_000_000) as usize;
        let seq = v % 1_000_000;
        if let Some(prev) = last_of[producer] {
            assert!(seq > prev, "producer {producer} reordered: {seq} after {prev}");
        }
        last_of[producer] = Some(seq);
    }
    for (producer, last) in last_of.iter().enumerate() {
        assert_eq!(last.unwrap(), per_producer - 1, "producer {producer} items missing");
    }
}

#[test]
fn txmap_and_txqueue_compose_atomically() {
    // A work-queue pattern: move an entry from the map into the queue
    // in one transaction; concurrently drain the queue back into the
    // map. No entry may ever be in both or neither (conservation).
    let stm = Arc::new(Stm::new());
    let map: TxMap<u64> = TxMap::new(Arc::clone(&stm));
    let q: TxQueue<i64> = TxQueue::new(Arc::clone(&stm));
    const ITEMS: i64 = 32;
    for k in 0..ITEMS {
        map.insert(k, 1);
    }
    let rounds = scaled(200);
    std::thread::scope(|s| {
        // Mover: map -> queue.
        {
            let (map, q, stm) = (map.clone(), q.clone(), Arc::clone(&stm));
            s.spawn(move || {
                let mut seed = 99u64;
                for _ in 0..rounds {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let k = ((seed >> 33) % ITEMS as u64) as i64;
                    stm.run(polytm::TxParams::default(), |tx| {
                        if map.remove_in(tx, k)?.is_some() {
                            q.enqueue_in(tx, k)?;
                        }
                        Ok(())
                    });
                }
            });
        }
        // Drainer: queue -> map.
        {
            let (map, q, stm) = (map.clone(), q.clone(), Arc::clone(&stm));
            s.spawn(move || {
                for _ in 0..rounds {
                    stm.run(polytm::TxParams::default(), |tx| {
                        if let Some(k) = q.dequeue_in(tx)? {
                            map.insert_in(tx, k, 1)?;
                        }
                        Ok(())
                    });
                }
            });
        }
    });
    // Quiescent conservation: everything is somewhere, exactly once.
    let mut drained = Vec::new();
    while let Some(k) = q.dequeue() {
        drained.push(k);
    }
    let in_map: Vec<i64> = map.entries_snapshot().into_iter().map(|(k, _)| k).collect();
    let mut all: Vec<i64> = in_map.into_iter().chain(drained).collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), ITEMS as usize, "items lost or duplicated: {all:?}");
}
