//! Key-value (record-store) workloads — the YCSB-style counterpart of
//! the set-shaped driver in [`crate::driver`].
//!
//! The set scenarios measure *membership* structures; production
//! serving systems run *record stores*: point reads, whole-record
//! updates, fresh-key inserts, deletes, read-modify-writes and range
//! scans over a keyed table. This module defines the table abstraction
//! ([`KvTable`]), the operation mixes ([`KvMix`], with the YCSB
//! A/B/C/D/E/F presets), and a timed multi-thread driver
//! ([`run_kv_scenario`]) with the same deterministic per-thread
//! streams, warmup discipline and mergeable latency histograms as the
//! set driver — plus read-hit accounting (`found_ratio`), the sanity
//! signal that a workload actually touches live records.

use std::time::{Duration, Instant};

use crate::driver::{run_timed, Measurement};
use crate::keys::{KeyDist, KeyStream};
use crate::rng::SplitMix64;

/// Anything that behaves like a concurrent `u64 → record` table. The
/// benchmark adapters map these onto `polytm-kv`'s `KvStore` (values
/// derived from the `value` seed) and onto lock-based controls.
pub trait KvTable: Sync {
    /// Point lookup; `true` when the key was found.
    fn read(&self, key: u64) -> bool;
    /// Insert-or-overwrite the record at `key` with a fresh value
    /// derived from `value`.
    fn update(&self, key: u64, value: u64);
    /// Insert a record (an upsert: the key may already exist — two
    /// threads under [`KeyDist::Latest`] can draw the same frontier
    /// key).
    fn insert(&self, key: u64, value: u64);
    /// Delete; `true` when the key was present.
    fn delete(&self, key: u64) -> bool;
    /// Atomic read-modify-write: read the record at `key`, write a
    /// record derived from the old one and `value`, as one atomic
    /// operation (YCSB-F's workload shape).
    fn read_modify_write(&self, key: u64, value: u64);
    /// Range scan over `[lo, hi)`; returns the number of records
    /// observed. Scan consistency is backend-specific and part of what
    /// the matrix measures (snapshot cut vs locked vs best-effort).
    fn scan(&self, lo: u64, hi: u64) -> usize;
    /// Bulk-load `entries` before measurement (the prefill path, not a
    /// measured operation). The default inserts one record at a time;
    /// stores with a batched ingest path override it so a matrix
    /// cell's prefill is not thousands of single-key transactions.
    fn load(&self, entries: &[(u64, u64)]) {
        for &(k, v) in entries {
            self.insert(k, v);
        }
    }
}

/// One key-value operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Point lookup.
    Read,
    /// Whole-record overwrite of an existing key.
    Update,
    /// Fresh-key insert (frontier key under [`KeyDist::Latest`]).
    Insert,
    /// Record removal.
    Delete,
    /// Atomic read-modify-write of one record.
    ReadModifyWrite,
    /// Range scan.
    Scan,
}

/// An operation mix over the six [`KvOp`] kinds, in percent (summing to
/// 100). The named constructors are the standard YCSB core workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvMix {
    /// Percent of point reads.
    pub read: u32,
    /// Percent of whole-record updates.
    pub update: u32,
    /// Percent of fresh-key inserts.
    pub insert: u32,
    /// Percent of deletes.
    pub delete: u32,
    /// Percent of read-modify-writes.
    pub rmw: u32,
    /// Percent of range scans.
    pub scan: u32,
}

impl KvMix {
    /// A mix from percentages.
    ///
    /// # Panics
    /// Panics unless the six percentages sum to exactly 100.
    pub fn new(read: u32, update: u32, insert: u32, delete: u32, rmw: u32, scan: u32) -> Self {
        let mix = Self { read, update, insert, delete, rmw, scan };
        assert_eq!(
            mix.read
                .checked_add(mix.update)
                .and_then(|s| s.checked_add(mix.insert))
                .and_then(|s| s.checked_add(mix.delete))
                .and_then(|s| s.checked_add(mix.rmw))
                .and_then(|s| s.checked_add(mix.scan)),
            Some(100),
            "kv mix percentages must sum to 100: {mix:?}"
        );
        mix
    }

    /// YCSB-A: update-heavy (50% reads / 50% updates).
    pub fn ycsb_a() -> Self {
        Self::new(50, 50, 0, 0, 0, 0)
    }

    /// YCSB-B: read-mostly (95% reads / 5% updates).
    pub fn ycsb_b() -> Self {
        Self::new(95, 5, 0, 0, 0, 0)
    }

    /// YCSB-C: read-only.
    pub fn ycsb_c() -> Self {
        Self::new(100, 0, 0, 0, 0, 0)
    }

    /// YCSB-D: read-latest (95% reads / 5% inserts; pair with
    /// [`KeyDist::Latest`]).
    pub fn ycsb_d() -> Self {
        Self::new(95, 0, 5, 0, 0, 0)
    }

    /// YCSB-E: short ranges (95% scans / 5% inserts).
    pub fn ycsb_e() -> Self {
        Self::new(0, 0, 5, 0, 0, 95)
    }

    /// YCSB-F: read-modify-write (50% reads / 50% RMWs).
    pub fn ycsb_f() -> Self {
        Self::new(50, 0, 0, 0, 50, 0)
    }

    /// True when the mix can draw [`KvOp::Scan`].
    pub fn has_scans(&self) -> bool {
        self.scan > 0
    }

    /// Draw the next operation.
    pub fn next_op(&self, rng: &mut SplitMix64) -> KvOp {
        let u = rng.next_below(100) as u32;
        let mut bound = self.read;
        if u < bound {
            return KvOp::Read;
        }
        bound += self.update;
        if u < bound {
            return KvOp::Update;
        }
        bound += self.insert;
        if u < bound {
            return KvOp::Insert;
        }
        bound += self.delete;
        if u < bound {
            return KvOp::Delete;
        }
        bound += self.rmw;
        if u < bound {
            return KvOp::ReadModifyWrite;
        }
        KvOp::Scan
    }
}

/// What to run against a [`KvTable`].
#[derive(Debug, Clone)]
pub struct KvSpec {
    /// Worker thread count.
    pub threads: usize,
    /// Initial key population: records `0..key_space` are prefilled.
    /// [`KeyDist::Latest`] inserts extend past this bound.
    pub key_space: u64,
    /// Prefill every key in `[0, key_space)` before the run.
    pub prefill: bool,
    /// Operation mix.
    pub mix: KvMix,
    /// Key distribution for reads/updates/deletes/RMWs.
    pub dist: KeyDist,
    /// Width of each scan: `[k, k + scan_span)`.
    pub scan_span: u64,
    /// Measured duration (after warmup).
    pub duration: Duration,
    /// Warmup duration (not measured).
    pub warmup: Duration,
    /// Record per-operation latency (two `Instant` reads per op).
    pub record_latency: bool,
    /// Base seed for the deterministic per-thread streams.
    pub seed: u64,
}

/// Result of one KV run: the usual throughput/latency measurement plus
/// read-hit accounting over the measured window.
#[derive(Debug, Clone)]
pub struct KvMeasurement {
    /// Throughput, window and latency quantiles, as in the set driver.
    pub measurement: Measurement,
    /// Point reads performed inside the measured window.
    pub reads: u64,
    /// Point reads that found a record.
    pub found: u64,
}

impl KvMeasurement {
    /// Fraction of measured point reads that hit a live record; 1.0 for
    /// read-free mixes (no evidence of misses). The workload sanity
    /// signal recorded in the bench rows: a read-heavy scenario whose
    /// found ratio collapses is measuring misses, not serving.
    pub fn found_ratio(&self) -> f64 {
        if self.reads == 0 {
            1.0
        } else {
            self.found as f64 / self.reads as f64
        }
    }
}

/// Run `spec` against `table`. Deterministic per-thread op/key/value
/// streams; wall-clock-bounded; latency and read-hit accounting cover
/// exactly the measured window.
pub fn run_kv_scenario<T: KvTable + ?Sized>(table: &T, spec: &KvSpec) -> KvMeasurement {
    run_kv_scenario_with(table, spec, || {})
}

/// As [`run_kv_scenario`], invoking `on_measure_start` at the instant
/// the measured window opens (external counters reset there — e.g.
/// `Stm::reset_stats` — so they describe the same interval as the
/// returned figures).
pub fn run_kv_scenario_with<T: KvTable + ?Sized>(
    table: &T,
    spec: &KvSpec,
    on_measure_start: impl Fn() + Sync,
) -> KvMeasurement {
    if spec.prefill {
        let entries: Vec<(u64, u64)> =
            (0..spec.key_space).map(|k| (k, k.wrapping_mul(0x9E37_79B9_7F4A_7C15))).collect();
        table.load(&entries);
    }
    // The timed harness (stop/window flags, warmup discipline, window
    // tally resets, histogram merge) is shared with the set driver —
    // see `driver::run_timed`. The per-op tally is `(reads, found)`.
    let (measurement, (reads, found)) = run_timed(
        spec.threads,
        spec.warmup,
        spec.duration,
        spec.record_latency,
        on_measure_start,
        |t| {
            let mut keys = KeyStream::new(spec.dist, spec.key_space, spec.seed).for_thread(t);
            let mut ops_rng = SplitMix64::for_thread(spec.seed ^ 0x6B76_0D12, t);
            let mut val_rng = SplitMix64::for_thread(spec.seed ^ 0x5EED_F00D, t);
            move |timed: bool| {
                let op = spec.mix.next_op(&mut ops_rng);
                let t0 = timed.then(Instant::now);
                let mut read_hit = None;
                match op {
                    KvOp::Read => {
                        read_hit = Some(table.read(keys.next_key()));
                    }
                    KvOp::Update => table.update(keys.next_key(), val_rng.next_u64()),
                    KvOp::Insert => table.insert(keys.next_insert_key(), val_rng.next_u64()),
                    KvOp::Delete => {
                        std::hint::black_box(table.delete(keys.next_key()));
                    }
                    KvOp::ReadModifyWrite => {
                        table.read_modify_write(keys.next_key(), val_rng.next_u64())
                    }
                    KvOp::Scan => {
                        let lo = keys.next_key();
                        let hi = lo.saturating_add(spec.scan_span).min(keys.frontier());
                        std::hint::black_box(table.scan(lo, hi));
                    }
                }
                let tally = match read_hit {
                    Some(hit) => (1, u64::from(hit)),
                    None => (0, 0),
                };
                (tally, t0.map(crate::driver::elapsed_ns))
            }
        },
        |acc: &mut (u64, u64), d| {
            acc.0 += d.0;
            acc.1 += d.1;
        },
    );
    KvMeasurement { measurement, reads, found }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    /// Reference table for driver tests.
    struct MutexTable(Mutex<BTreeMap<u64, u64>>);

    impl MutexTable {
        fn new() -> Self {
            Self(Mutex::new(BTreeMap::new()))
        }
    }

    impl KvTable for MutexTable {
        fn read(&self, key: u64) -> bool {
            self.0.lock().unwrap().contains_key(&key)
        }
        fn update(&self, key: u64, value: u64) {
            self.0.lock().unwrap().insert(key, value);
        }
        fn insert(&self, key: u64, value: u64) {
            self.0.lock().unwrap().insert(key, value);
        }
        fn delete(&self, key: u64) -> bool {
            self.0.lock().unwrap().remove(&key).is_some()
        }
        fn read_modify_write(&self, key: u64, value: u64) {
            let mut map = self.0.lock().unwrap();
            if let Some(v) = map.get(&key).copied() {
                map.insert(key, v ^ value);
            } else {
                map.insert(key, value);
            }
        }
        fn scan(&self, lo: u64, hi: u64) -> usize {
            if lo >= hi {
                return 0;
            }
            self.0.lock().unwrap().range(lo..hi).count()
        }
    }

    fn tiny_spec(mix: KvMix, dist: KeyDist) -> KvSpec {
        KvSpec {
            threads: 2,
            key_space: 64,
            prefill: true,
            mix,
            dist,
            scan_span: 8,
            duration: Duration::from_millis(30),
            warmup: Duration::from_millis(5),
            record_latency: false,
            seed: 11,
        }
    }

    #[test]
    fn ycsb_mixes_sum_to_100() {
        for mix in [
            KvMix::ycsb_a(),
            KvMix::ycsb_b(),
            KvMix::ycsb_c(),
            KvMix::ycsb_d(),
            KvMix::ycsb_e(),
            KvMix::ycsb_f(),
        ] {
            // KvMix::new asserts the sum; re-constructing proves it.
            let _ = KvMix::new(mix.read, mix.update, mix.insert, mix.delete, mix.rmw, mix.scan);
        }
        assert!(KvMix::ycsb_e().has_scans());
        assert!(!KvMix::ycsb_a().has_scans());
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn overcommitted_mix_is_rejected() {
        KvMix::new(90, 20, 0, 0, 0, 0);
    }

    #[test]
    fn mix_ratios_are_roughly_respected() {
        let mix = KvMix::new(50, 20, 10, 5, 10, 5);
        let mut rng = SplitMix64::new(5);
        let mut counts = [0u32; 6];
        for _ in 0..10_000 {
            let i = match mix.next_op(&mut rng) {
                KvOp::Read => 0,
                KvOp::Update => 1,
                KvOp::Insert => 2,
                KvOp::Delete => 3,
                KvOp::ReadModifyWrite => 4,
                KvOp::Scan => 5,
            };
            counts[i] += 1;
        }
        let expect = [5000u32, 2000, 1000, 500, 1000, 500];
        for (i, (&got, &want)) in counts.iter().zip(&expect).enumerate() {
            let lo = want * 8 / 10;
            let hi = want * 12 / 10;
            assert!((lo..=hi).contains(&got), "op {i}: {got} vs expected ~{want}");
        }
    }

    #[test]
    fn driver_measures_and_counts_read_hits() {
        let table = MutexTable::new();
        let m = run_kv_scenario(&table, &tiny_spec(KvMix::ycsb_b(), KeyDist::Uniform));
        assert!(m.measurement.ops > 0);
        assert!(m.measurement.throughput > 0.0);
        assert!(m.reads > 0);
        // Uniform reads over a fully prefilled space: every read hits.
        assert_eq!(m.found, m.reads);
        assert_eq!(m.found_ratio(), 1.0);
    }

    #[test]
    fn delete_heavy_mix_lowers_the_found_ratio() {
        let table = MutexTable::new();
        let mix = KvMix::new(40, 0, 0, 60, 0, 0);
        let m = run_kv_scenario(&table, &tiny_spec(mix, KeyDist::Uniform));
        assert!(m.reads > 0);
        assert!(
            m.found_ratio() < 0.9,
            "60% deletes against a 64-key space must produce misses: {}",
            m.found_ratio()
        );
    }

    #[test]
    fn latest_mix_grows_the_table() {
        let table = MutexTable::new();
        let spec = tiny_spec(KvMix::ycsb_d(), KeyDist::Latest(0.99));
        let m = run_kv_scenario(&table, &spec);
        assert!(m.measurement.ops > 0);
        let map = table.0.lock().unwrap();
        let max_key = *map.keys().next_back().unwrap();
        assert!(max_key >= spec.key_space, "inserts must extend past the prefill: {max_key}");
        // Read-latest over per-thread frontiers stays overwhelmingly on
        // live records.
        assert!(m.found_ratio() > 0.5, "found ratio {}", m.found_ratio());
    }

    #[test]
    fn scan_mix_drives_scans_and_rmw_mix_mutates() {
        let table = MutexTable::new();
        let m = run_kv_scenario(&table, &tiny_spec(KvMix::ycsb_e(), KeyDist::Uniform));
        assert!(m.measurement.ops > 0);
        let m = run_kv_scenario(&table, &tiny_spec(KvMix::ycsb_f(), KeyDist::Zipf(0.99)));
        assert!(m.measurement.ops > 0);
        assert!(m.reads > 0, "YCSB-F is half reads");
    }

    #[test]
    fn latency_recording_fills_the_histogram() {
        let table = MutexTable::new();
        let mut spec = tiny_spec(KvMix::ycsb_a(), KeyDist::Uniform);
        spec.record_latency = true;
        let m = run_kv_scenario(&table, &spec);
        assert!(m.measurement.latency.count() > 0);
        assert!(m.measurement.latency.p50() <= m.measurement.latency.p999());
    }

    #[test]
    fn measure_start_hook_fires_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let table = MutexTable::new();
        let fired = AtomicU32::new(0);
        run_kv_scenario_with(&table, &tiny_spec(KvMix::ycsb_c(), KeyDist::Uniform), || {
            fired.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(fired.load(Ordering::Relaxed), 1);
    }
}
