//! Key streams: uniform and zipfian draws over `[0, space)`.

use crate::rng::SplitMix64;

/// Distribution of keys over the key space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipf with the given exponent (`s` ≈ 0.8–1.2 models typical skew:
    /// rank-k key has probability ∝ 1/k^s).
    Zipf(f64),
}

/// A deterministic stream of keys.
#[derive(Debug, Clone)]
pub struct KeyStream {
    rng: SplitMix64,
    space: u64,
    dist: Dist,
}

#[derive(Debug, Clone)]
enum Dist {
    Uniform,
    /// Inverse-CDF sampling over precomputed cumulative weights.
    Zipf {
        cdf: Vec<f64>,
    },
}

impl KeyStream {
    /// A stream drawing from `[0, space)` with the given distribution.
    /// Zipf precomputes its CDF (O(space)); keep the key space ≤ ~1e6.
    pub fn new(dist: KeyDist, space: u64, seed: u64) -> Self {
        assert!(space > 0);
        let dist = match dist {
            KeyDist::Uniform => Dist::Uniform,
            KeyDist::Zipf(s) => {
                let mut cdf = Vec::with_capacity(space as usize);
                let mut total = 0.0f64;
                for k in 1..=space {
                    total += 1.0 / (k as f64).powf(s);
                    cdf.push(total);
                }
                for w in &mut cdf {
                    *w /= total;
                }
                Dist::Zipf { cdf }
            }
        };
        Self { rng: SplitMix64::new(seed), space, dist }
    }

    /// Independent per-thread sub-stream.
    pub fn for_thread(&self, thread: usize) -> Self {
        let mut s = self.clone();
        s.rng = SplitMix64::for_thread(self.rng.clone().next_u64(), thread);
        s
    }

    /// Next key in `[0, space)`.
    pub fn next_key(&mut self) -> u64 {
        match &self.dist {
            Dist::Uniform => self.rng.next_below(self.space),
            Dist::Zipf { cdf } => {
                let u = self.rng.next_f64();
                // First rank whose cumulative weight exceeds u.
                match cdf.binary_search_by(|w| w.partial_cmp(&u).expect("no NaN")) {
                    Ok(i) | Err(i) => (i as u64).min(self.space - 1),
                }
            }
        }
    }

    /// The key space bound.
    pub fn space(&self) -> u64 {
        self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_space() {
        let mut s = KeyStream::new(KeyDist::Uniform, 16, 1);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            seen[s.next_key() as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn zipf_skews_to_small_ranks() {
        let mut s = KeyStream::new(KeyDist::Zipf(1.0), 1000, 2);
        let mut low = 0u32;
        const N: u32 = 10_000;
        for _ in 0..N {
            if s.next_key() < 100 {
                low += 1;
            }
        }
        // Under zipf(1.0) over 1000 keys, the first 100 ranks carry
        // ~ H(100)/H(1000) ≈ 0.69 of the mass; uniform would give 0.1.
        assert!(low > N / 2, "zipf skew too weak: {low}/{N} draws in the top decile");
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = KeyStream::new(KeyDist::Zipf(0.8), 64, 7);
        let mut b = KeyStream::new(KeyDist::Zipf(0.8), 64, 7);
        for _ in 0..200 {
            assert_eq!(a.next_key(), b.next_key());
        }
    }

    #[test]
    fn keys_stay_in_range() {
        for dist in [KeyDist::Uniform, KeyDist::Zipf(1.2)] {
            let mut s = KeyStream::new(dist, 10, 3);
            for _ in 0..500 {
                assert!(s.next_key() < 10);
            }
        }
    }
}
