//! Key streams: uniform, zipfian and hotspot-overlay draws over
//! `[0, space)`.

use crate::rng::SplitMix64;

/// Distribution of keys over the key space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipf with the given exponent (`s` ≈ 0.8–1.2 models typical skew:
    /// rank-k key has probability ∝ 1/k^s).
    Zipf(f64),
    /// Hotspot overlay: `hot_fraction` of draws land uniformly on the
    /// first `hot_keys` keys ("x% of ops on y keys"); the remaining
    /// draws are uniform over the whole space.
    Hotspot {
        /// Fraction of draws directed at the hot set, in `[0, 1]`.
        hot_fraction: f64,
        /// Size of the hot set (keys `0..hot_keys`). Must be non-zero
        /// and no larger than the key space.
        hot_keys: u64,
    },
}

/// A deterministic stream of keys.
#[derive(Debug, Clone)]
pub struct KeyStream {
    rng: SplitMix64,
    space: u64,
    dist: Dist,
}

#[derive(Debug, Clone)]
enum Dist {
    Uniform,
    /// Inverse-CDF sampling over precomputed cumulative weights.
    Zipf {
        cdf: Vec<f64>,
    },
    Hotspot {
        hot_fraction: f64,
        hot_keys: u64,
    },
}

/// Inverse-CDF lookup: the first rank whose cumulative weight is at
/// least `u`, clamped into the key space. The clamp matters on edge
/// draws: floating-point accumulation can leave the final cumulative
/// weight a hair below 1.0, so a `u` at or above it must still map to
/// the last rank rather than index out of bounds.
fn zipf_rank(cdf: &[f64], u: f64) -> u64 {
    match cdf.binary_search_by(|w| w.partial_cmp(&u).expect("no NaN")) {
        Ok(i) | Err(i) => (i as u64).min(cdf.len() as u64 - 1),
    }
}

impl KeyStream {
    /// A stream drawing from `[0, space)` with the given distribution.
    /// Zipf precomputes its CDF (O(space)); keep the key space ≤ ~1e6.
    pub fn new(dist: KeyDist, space: u64, seed: u64) -> Self {
        assert!(space > 0);
        let dist = match dist {
            KeyDist::Uniform => Dist::Uniform,
            KeyDist::Zipf(s) => {
                let mut cdf = Vec::with_capacity(space as usize);
                let mut total = 0.0f64;
                for k in 1..=space {
                    total += 1.0 / (k as f64).powf(s);
                    cdf.push(total);
                }
                for w in &mut cdf {
                    *w /= total;
                }
                Dist::Zipf { cdf }
            }
            KeyDist::Hotspot { hot_fraction, hot_keys } => {
                assert!(
                    (0.0..=1.0).contains(&hot_fraction),
                    "hot_fraction must be in [0, 1], got {hot_fraction}"
                );
                assert!(
                    hot_keys > 0 && hot_keys <= space,
                    "hot_keys must be in 1..={space}, got {hot_keys}"
                );
                Dist::Hotspot { hot_fraction, hot_keys }
            }
        };
        Self { rng: SplitMix64::new(seed), space, dist }
    }

    /// Independent per-thread sub-stream.
    pub fn for_thread(&self, thread: usize) -> Self {
        let mut s = self.clone();
        s.rng = SplitMix64::for_thread(self.rng.clone().next_u64(), thread);
        s
    }

    /// Next key in `[0, space)`.
    pub fn next_key(&mut self) -> u64 {
        match &self.dist {
            Dist::Uniform => self.rng.next_below(self.space),
            Dist::Zipf { cdf } => zipf_rank(cdf, self.rng.next_f64()),
            Dist::Hotspot { hot_fraction, hot_keys } => {
                if self.rng.next_f64() < *hot_fraction {
                    self.rng.next_below(*hot_keys)
                } else {
                    self.rng.next_below(self.space)
                }
            }
        }
    }

    /// The key space bound.
    pub fn space(&self) -> u64 {
        self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_space() {
        let mut s = KeyStream::new(KeyDist::Uniform, 16, 1);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            seen[s.next_key() as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn zipf_skews_to_small_ranks() {
        let mut s = KeyStream::new(KeyDist::Zipf(1.0), 1000, 2);
        let mut low = 0u32;
        const N: u32 = 10_000;
        for _ in 0..N {
            if s.next_key() < 100 {
                low += 1;
            }
        }
        // Under zipf(1.0) over 1000 keys, the first 100 ranks carry
        // ~ H(100)/H(1000) ≈ 0.69 of the mass; uniform would give 0.1.
        assert!(low > N / 2, "zipf skew too weak: {low}/{N} draws in the top decile");
    }

    #[test]
    fn zipf_edge_draws_clamp_to_last_rank() {
        // A CDF whose final cumulative weight fell short of 1.0 through
        // floating-point accumulation: draws at or above it must land on
        // the last rank, never out of bounds.
        let cdf = [0.5, 0.8, 0.95]; // space = 3, last weight < 1.0
        assert_eq!(zipf_rank(&cdf, 0.95), 2, "u exactly on the last weight");
        assert_eq!(zipf_rank(&cdf, 0.999), 2, "u above the last weight");
        assert_eq!(zipf_rank(&cdf, 1.0), 2, "u at the theoretical maximum");
        // Interior draws behave as plain inverse-CDF.
        assert_eq!(zipf_rank(&cdf, 0.0), 0);
        assert_eq!(zipf_rank(&cdf, 0.5), 0, "u exactly on a weight selects that rank");
        assert_eq!(zipf_rank(&cdf, 0.51), 1);
        // And the real sampler never leaves the space even across many
        // draws of a heavily-skewed stream.
        let mut s = KeyStream::new(KeyDist::Zipf(0.01), 7, 11);
        for _ in 0..10_000 {
            assert!(s.next_key() < 7);
        }
    }

    #[test]
    fn hotspot_overlay_hits_hot_set_at_requested_rate() {
        let mut s = KeyStream::new(KeyDist::Hotspot { hot_fraction: 0.8, hot_keys: 16 }, 1024, 5);
        const N: u32 = 20_000;
        let mut hot = 0u32;
        for _ in 0..N {
            if s.next_key() < 16 {
                hot += 1;
            }
        }
        // 80% directed + ~1.6% of the uniform remainder ≈ 0.803.
        let rate = f64::from(hot) / f64::from(N);
        assert!((0.77..0.84).contains(&rate), "hot-set hit rate {rate}");
    }

    #[test]
    fn hotspot_cold_draws_cover_the_whole_space() {
        let mut s = KeyStream::new(KeyDist::Hotspot { hot_fraction: 0.5, hot_keys: 4 }, 32, 6);
        let mut seen = [false; 32];
        for _ in 0..20_000 {
            seen[s.next_key() as usize] = true;
        }
        assert!(seen.iter().all(|&x| x), "cold keys must still be drawn");
    }

    #[test]
    #[should_panic]
    fn hotspot_rejects_oversized_hot_set() {
        KeyStream::new(KeyDist::Hotspot { hot_fraction: 0.5, hot_keys: 100 }, 10, 1);
    }

    #[test]
    fn streams_are_deterministic() {
        for dist in [
            KeyDist::Zipf(0.8),
            KeyDist::Uniform,
            KeyDist::Hotspot { hot_fraction: 0.9, hot_keys: 8 },
        ] {
            let mut a = KeyStream::new(dist, 64, 7);
            let mut b = KeyStream::new(dist, 64, 7);
            for _ in 0..200 {
                assert_eq!(a.next_key(), b.next_key());
            }
        }
    }

    #[test]
    fn keys_stay_in_range() {
        for dist in [
            KeyDist::Uniform,
            KeyDist::Zipf(1.2),
            KeyDist::Hotspot { hot_fraction: 0.7, hot_keys: 3 },
        ] {
            let mut s = KeyStream::new(dist, 10, 3);
            for _ in 0..500 {
                assert!(s.next_key() < 10);
            }
        }
    }
}
