//! Key streams: uniform, zipfian and hotspot-overlay draws over
//! `[0, space)`.

use crate::rng::SplitMix64;

/// Distribution of keys over the key space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipf with the given exponent (`s` ≈ 0.8–1.2 models typical skew:
    /// rank-k key has probability ∝ 1/k^s).
    Zipf(f64),
    /// Hotspot overlay: `hot_fraction` of draws land uniformly on the
    /// first `hot_keys` keys ("x% of ops on y keys"); the remaining
    /// draws are uniform over the whole space.
    Hotspot {
        /// Fraction of draws directed at the hot set, in `[0, 1]`.
        hot_fraction: f64,
        /// Size of the hot set (keys `0..hot_keys`). Must be non-zero
        /// and no larger than the key space.
        hot_keys: u64,
    },
    /// YCSB's "latest" distribution: reads skew toward the most
    /// recently inserted keys. The stream maintains a *frontier* —
    /// initially `space`, advanced by [`KeyStream::next_insert_key`] —
    /// and reads draw `frontier - 1 - offset`, where `offset` is
    /// Zipf(`s`)-distributed over a recency window of `space` keys
    /// (clamped to key 0 when the offset reaches past the frontier).
    /// Insert-heavy workloads thus keep shifting the read mass onto the
    /// growing tail — YCSB-D's access pattern.
    Latest(f64),
}

/// A deterministic stream of keys.
#[derive(Debug, Clone)]
pub struct KeyStream {
    rng: SplitMix64,
    space: u64,
    dist: Dist,
}

#[derive(Debug, Clone)]
enum Dist {
    Uniform,
    /// Inverse-CDF sampling over precomputed cumulative weights.
    Zipf {
        cdf: Vec<f64>,
    },
    Hotspot {
        hot_fraction: f64,
        hot_keys: u64,
    },
    /// Recency-skewed draws behind a growing insert frontier; `cdf` is
    /// the Zipf inverse-CDF over recency *offsets* `0..space`.
    Latest {
        cdf: Vec<f64>,
        /// One past the newest key this stream knows exists. Starts at
        /// the key space (the prefilled population) and advances with
        /// every [`KeyStream::next_insert_key`]. Per-stream state: two
        /// threads may insert the same key (an upsert on a record
        /// store), but every key below a stream's frontier exists, so
        /// recency-skewed reads stay dense.
        frontier: u64,
    },
}

/// Inverse-CDF lookup: the first rank whose cumulative weight is at
/// least `u`, clamped into the key space. The clamp matters on edge
/// draws: floating-point accumulation can leave the final cumulative
/// weight a hair below 1.0, so a `u` at or above it must still map to
/// the last rank rather than index out of bounds.
fn zipf_rank(cdf: &[f64], u: f64) -> u64 {
    match cdf.binary_search_by(|w| w.partial_cmp(&u).expect("no NaN")) {
        Ok(i) | Err(i) => (i as u64).min(cdf.len() as u64 - 1),
    }
}

/// Normalized Zipf(`s`) cumulative weights over `n` ranks.
fn zipf_cdf(n: u64, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n as usize);
    let mut total = 0.0f64;
    for k in 1..=n {
        total += 1.0 / (k as f64).powf(s);
        cdf.push(total);
    }
    for w in &mut cdf {
        *w /= total;
    }
    cdf
}

impl KeyStream {
    /// A stream drawing from `[0, space)` with the given distribution.
    /// Zipf precomputes its CDF (O(space)); keep the key space ≤ ~1e6.
    pub fn new(dist: KeyDist, space: u64, seed: u64) -> Self {
        assert!(space > 0);
        let dist = match dist {
            KeyDist::Uniform => Dist::Uniform,
            KeyDist::Zipf(s) => Dist::Zipf { cdf: zipf_cdf(space, s) },
            KeyDist::Latest(s) => Dist::Latest { cdf: zipf_cdf(space, s), frontier: space },
            KeyDist::Hotspot { hot_fraction, hot_keys } => {
                assert!(
                    (0.0..=1.0).contains(&hot_fraction),
                    "hot_fraction must be in [0, 1], got {hot_fraction}"
                );
                assert!(
                    hot_keys > 0 && hot_keys <= space,
                    "hot_keys must be in 1..={space}, got {hot_keys}"
                );
                Dist::Hotspot { hot_fraction, hot_keys }
            }
        };
        Self { rng: SplitMix64::new(seed), space, dist }
    }

    /// Independent per-thread sub-stream.
    pub fn for_thread(&self, thread: usize) -> Self {
        let mut s = self.clone();
        s.rng = SplitMix64::for_thread(self.rng.clone().next_u64(), thread);
        s
    }

    /// Next key — in `[0, space)` for the stationary distributions, in
    /// `[0, frontier)` for [`KeyDist::Latest`] (recency-skewed: the
    /// newest keys carry the most mass, offsets reaching past the
    /// frontier clamp to key 0).
    pub fn next_key(&mut self) -> u64 {
        match &self.dist {
            Dist::Uniform => self.rng.next_below(self.space),
            Dist::Zipf { cdf } => zipf_rank(cdf, self.rng.next_f64()),
            Dist::Hotspot { hot_fraction, hot_keys } => {
                if self.rng.next_f64() < *hot_fraction {
                    self.rng.next_below(*hot_keys)
                } else {
                    self.rng.next_below(self.space)
                }
            }
            Dist::Latest { cdf, frontier } => {
                let offset = zipf_rank(cdf, self.rng.next_f64());
                frontier.saturating_sub(1 + offset)
            }
        }
    }

    /// Key for an *insert* operation. Under [`KeyDist::Latest`] this is
    /// the frontier key (the stream then advances, so subsequent reads
    /// skew toward it); under every other distribution it is a plain
    /// [`KeyStream::next_key`] draw.
    pub fn next_insert_key(&mut self) -> u64 {
        match &mut self.dist {
            Dist::Latest { frontier, .. } => {
                let key = *frontier;
                *frontier += 1;
                key
            }
            _ => self.next_key(),
        }
    }

    /// One past the newest key this stream knows exists: the insert
    /// frontier for [`KeyDist::Latest`], the key-space bound otherwise.
    pub fn frontier(&self) -> u64 {
        match &self.dist {
            Dist::Latest { frontier, .. } => *frontier,
            _ => self.space,
        }
    }

    /// The key space bound.
    pub fn space(&self) -> u64 {
        self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_space() {
        let mut s = KeyStream::new(KeyDist::Uniform, 16, 1);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            seen[s.next_key() as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn zipf_skews_to_small_ranks() {
        let mut s = KeyStream::new(KeyDist::Zipf(1.0), 1000, 2);
        let mut low = 0u32;
        const N: u32 = 10_000;
        for _ in 0..N {
            if s.next_key() < 100 {
                low += 1;
            }
        }
        // Under zipf(1.0) over 1000 keys, the first 100 ranks carry
        // ~ H(100)/H(1000) ≈ 0.69 of the mass; uniform would give 0.1.
        assert!(low > N / 2, "zipf skew too weak: {low}/{N} draws in the top decile");
    }

    #[test]
    fn zipf_edge_draws_clamp_to_last_rank() {
        // A CDF whose final cumulative weight fell short of 1.0 through
        // floating-point accumulation: draws at or above it must land on
        // the last rank, never out of bounds.
        let cdf = [0.5, 0.8, 0.95]; // space = 3, last weight < 1.0
        assert_eq!(zipf_rank(&cdf, 0.95), 2, "u exactly on the last weight");
        assert_eq!(zipf_rank(&cdf, 0.999), 2, "u above the last weight");
        assert_eq!(zipf_rank(&cdf, 1.0), 2, "u at the theoretical maximum");
        // Interior draws behave as plain inverse-CDF.
        assert_eq!(zipf_rank(&cdf, 0.0), 0);
        assert_eq!(zipf_rank(&cdf, 0.5), 0, "u exactly on a weight selects that rank");
        assert_eq!(zipf_rank(&cdf, 0.51), 1);
        // And the real sampler never leaves the space even across many
        // draws of a heavily-skewed stream.
        let mut s = KeyStream::new(KeyDist::Zipf(0.01), 7, 11);
        for _ in 0..10_000 {
            assert!(s.next_key() < 7);
        }
    }

    #[test]
    fn hotspot_overlay_hits_hot_set_at_requested_rate() {
        let mut s = KeyStream::new(KeyDist::Hotspot { hot_fraction: 0.8, hot_keys: 16 }, 1024, 5);
        const N: u32 = 20_000;
        let mut hot = 0u32;
        for _ in 0..N {
            if s.next_key() < 16 {
                hot += 1;
            }
        }
        // 80% directed + ~1.6% of the uniform remainder ≈ 0.803.
        let rate = f64::from(hot) / f64::from(N);
        assert!((0.77..0.84).contains(&rate), "hot-set hit rate {rate}");
    }

    #[test]
    fn hotspot_cold_draws_cover_the_whole_space() {
        let mut s = KeyStream::new(KeyDist::Hotspot { hot_fraction: 0.5, hot_keys: 4 }, 32, 6);
        let mut seen = [false; 32];
        for _ in 0..20_000 {
            seen[s.next_key() as usize] = true;
        }
        assert!(seen.iter().all(|&x| x), "cold keys must still be drawn");
    }

    #[test]
    #[should_panic]
    fn hotspot_rejects_oversized_hot_set() {
        KeyStream::new(KeyDist::Hotspot { hot_fraction: 0.5, hot_keys: 100 }, 10, 1);
    }

    #[test]
    fn latest_reads_skew_to_the_frontier() {
        let mut s = KeyStream::new(KeyDist::Latest(0.99), 1000, 3);
        const N: u32 = 10_000;
        let mut near = 0u32;
        for _ in 0..N {
            // Top decile of the recency window (keys 900..1000).
            if s.next_key() >= 900 {
                near += 1;
            }
        }
        // Zipf(0.99) over 1000 offsets puts ~2/3 of the mass on the
        // first 100 offsets; uniform would give 10%.
        assert!(near > N / 2, "latest skew too weak: {near}/{N} draws in the newest decile");
    }

    #[test]
    fn latest_frontier_grows_with_inserts_and_pulls_reads_along() {
        let mut s = KeyStream::new(KeyDist::Latest(1.0), 64, 4);
        assert_eq!(s.frontier(), 64, "frontier starts at the prefilled population");
        // Inserts hand out consecutive fresh keys...
        for i in 0..32 {
            assert_eq!(s.next_insert_key(), 64 + i);
        }
        assert_eq!(s.frontier(), 96);
        // ...and every read stays below the advanced frontier, with the
        // newly inserted tail now carrying read mass.
        let mut tail_hits = 0u32;
        for _ in 0..5_000 {
            let k = s.next_key();
            assert!(k < 96, "read key {k} beyond the frontier");
            if k >= 64 {
                tail_hits += 1;
            }
        }
        assert!(tail_hits > 1_000, "inserted tail must attract reads: {tail_hits}");
    }

    #[test]
    fn latest_offsets_past_the_frontier_clamp_to_key_zero() {
        // A frontier of 1 with a recency window of 8: every non-zero
        // offset reaches past the beginning and must clamp to key 0,
        // never wrap.
        let mut s = KeyStream::new(KeyDist::Latest(0.01), 8, 5);
        // Shrink is impossible (frontier only grows), so emulate the
        // smallest case: space 1.
        let mut tiny = KeyStream::new(KeyDist::Latest(0.5), 1, 6);
        for _ in 0..1_000 {
            assert_eq!(tiny.next_key(), 0);
            assert!(s.next_key() < 8);
        }
    }

    #[test]
    fn latest_streams_are_deterministic_across_equal_seeds() {
        let mut a = KeyStream::new(KeyDist::Latest(0.9), 128, 7);
        let mut b = KeyStream::new(KeyDist::Latest(0.9), 128, 7);
        for i in 0..500 {
            // Interleave reads and inserts the same way on both sides.
            if i % 10 == 0 {
                assert_eq!(a.next_insert_key(), b.next_insert_key());
            } else {
                assert_eq!(a.next_key(), b.next_key());
            }
        }
        // Different seeds diverge on the read stream (the insert stream
        // is deliberately sequential).
        let mut c = KeyStream::new(KeyDist::Latest(0.9), 128, 8);
        let mut d = KeyStream::new(KeyDist::Latest(0.9), 128, 9);
        let diverged = (0..100).any(|_| c.next_key() != d.next_key());
        assert!(diverged, "distinct seeds must yield distinct read streams");
    }

    #[test]
    fn non_latest_insert_keys_fall_back_to_plain_draws() {
        let mut s = KeyStream::new(KeyDist::Uniform, 16, 2);
        let mut t = KeyStream::new(KeyDist::Uniform, 16, 2);
        for _ in 0..100 {
            let k = s.next_insert_key();
            assert_eq!(k, t.next_key());
            assert!(k < 16);
        }
        assert_eq!(s.frontier(), 16, "stationary distributions have a fixed frontier");
    }

    #[test]
    fn streams_are_deterministic() {
        for dist in [
            KeyDist::Zipf(0.8),
            KeyDist::Uniform,
            KeyDist::Hotspot { hot_fraction: 0.9, hot_keys: 8 },
        ] {
            let mut a = KeyStream::new(dist, 64, 7);
            let mut b = KeyStream::new(dist, 64, 7);
            for _ in 0..200 {
                assert_eq!(a.next_key(), b.next_key());
            }
        }
    }

    #[test]
    fn keys_stay_in_range() {
        for dist in [
            KeyDist::Uniform,
            KeyDist::Zipf(1.2),
            KeyDist::Hotspot { hot_fraction: 0.7, hot_keys: 3 },
        ] {
            let mut s = KeyStream::new(dist, 10, 3);
            for _ in 0..500 {
                assert!(s.next_key() < 10);
            }
        }
    }
}
