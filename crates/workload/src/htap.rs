//! HTAP (hybrid transactional/analytical) workloads: long range scans
//! running *concurrently* with point-write traffic over the same keyed
//! data.
//!
//! The set and KV drivers mix scans into every thread's operation
//! stream, so a scan-heavy mix measures mostly scans and a write-heavy
//! mix barely scans at all. HTAP serving is different: a small pool of
//! analytical readers runs long scans *while* an independent pool of
//! transactional writers churns the same records. What matters is the
//! scan tail latency under that churn and whether scans complete at all
//! (snapshot-starved backends abort them). This driver dedicates
//! threads to each role — `writers` threads draw from a write mix,
//! `scanners` threads run back-to-back full-width scans — and reports a
//! latency histogram that covers **only the scans**, so the recorded
//! p50/p99/p999 are scan quantiles, not a blend of microsecond point
//! ops and millisecond scans.

use std::time::{Duration, Instant};

use crate::driver::{elapsed_ns, run_timed, Measurement, RangeSet};
use crate::keys::{KeyDist, KeyStream};
use crate::kv::{KvMix, KvOp, KvTable};
use crate::mix::{OpKind, OpMix};
use crate::rng::SplitMix64;

/// What to run: role split, data shape and timing. The write mix is
/// passed to the entry points ([`run_htap_kv`] takes a [`KvMix`],
/// [`run_htap_set`] an [`OpMix`]) since its type depends on the
/// backend family.
#[derive(Debug, Clone)]
pub struct HtapSpec {
    /// Threads running the transactional write mix.
    pub writers: usize,
    /// Threads running back-to-back range scans.
    pub scanners: usize,
    /// Key space (keys drawn from `[0, key_space)`).
    pub key_space: u64,
    /// Prefill before the run (every key for KV tables, every even key
    /// for sets — matching each family's steady-state convention).
    pub prefill: bool,
    /// Key distribution for the writers.
    pub dist: KeyDist,
    /// Width of each analytical scan: `[lo, min(lo + scan_span,
    /// key_space))`. HTAP scans are meant to be *long* — a sizeable
    /// fraction of the space, not the 1/32nd point-mix default.
    pub scan_span: u64,
    /// Measured duration (after warmup).
    pub duration: Duration,
    /// Warmup duration (not measured).
    pub warmup: Duration,
    /// Record per-scan latency (scans only; writers never sample).
    pub record_latency: bool,
    /// Base seed for the deterministic per-thread streams.
    pub seed: u64,
}

impl HtapSpec {
    /// Total worker threads (`writers + scanners`).
    pub fn threads(&self) -> usize {
        self.writers + self.scanners
    }
}

/// Result of one HTAP run. `measurement.latency` holds **scan**
/// latency only; `measurement.ops` counts both roles' completed
/// operations (one scan = one op).
#[derive(Debug, Clone)]
pub struct HtapMeasurement {
    /// Window timing, combined throughput and the scan-only latency
    /// histogram.
    pub measurement: Measurement,
    /// Write-mix operations completed inside the measured window.
    pub writer_ops: u64,
    /// Scans completed inside the measured window.
    pub scans: u64,
}

impl HtapMeasurement {
    /// Completed scans per second over the measured window.
    pub fn scan_throughput(&self) -> f64 {
        let secs = self.measurement.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.scans as f64 / secs
        } else {
            0.0
        }
    }
}

/// Scanner-side stream: deterministic scan origins, uniform over the
/// space regardless of the writers' distribution (analytical scans
/// sweep the table; they do not chase the writers' hot set).
fn scan_bounds(rng: &mut SplitMix64, key_space: u64, span: u64) -> (u64, u64) {
    let lo = rng.next_below(key_space.max(1));
    (lo, lo.saturating_add(span).min(key_space))
}

/// Run an HTAP workload against a [`KvTable`]: `spec.writers` threads
/// draw from `mix` (typically [`KvMix::ycsb_a`]) while `spec.scanners`
/// threads run back-to-back `scan` calls. `on_measure_start` fires at
/// the instant the measured window opens (reset external counters
/// there).
pub fn run_htap_kv<T: KvTable + ?Sized>(
    table: &T,
    mix: KvMix,
    spec: &HtapSpec,
    on_measure_start: impl Fn() + Sync,
) -> HtapMeasurement {
    if spec.prefill {
        let entries: Vec<(u64, u64)> =
            (0..spec.key_space).map(|k| (k, k.wrapping_mul(0x9E37_79B9_7F4A_7C15))).collect();
        table.load(&entries);
    }
    let (measurement, (writer_ops, scans)) = run_timed(
        spec.threads(),
        spec.warmup,
        spec.duration,
        spec.record_latency,
        on_measure_start,
        |t| {
            let scanner = t >= spec.writers;
            let mut keys = KeyStream::new(spec.dist, spec.key_space, spec.seed).for_thread(t);
            let mut ops_rng = SplitMix64::for_thread(spec.seed ^ 0x6B76_0D12, t);
            let mut val_rng = SplitMix64::for_thread(spec.seed ^ 0x5EED_F00D, t);
            move |timed: bool| {
                if scanner {
                    let (lo, hi) = scan_bounds(&mut ops_rng, spec.key_space, spec.scan_span);
                    let t0 = timed.then(Instant::now);
                    std::hint::black_box(table.scan(lo, hi));
                    return ((0u64, 1u64), t0.map(elapsed_ns));
                }
                // Writers never sample: the merged histogram stays
                // scan-only whatever the mix draws.
                match mix.next_op(&mut ops_rng) {
                    KvOp::Read => {
                        std::hint::black_box(table.read(keys.next_key()));
                    }
                    KvOp::Update => table.update(keys.next_key(), val_rng.next_u64()),
                    KvOp::Insert => table.insert(keys.next_insert_key(), val_rng.next_u64()),
                    KvOp::Delete => {
                        std::hint::black_box(table.delete(keys.next_key()));
                    }
                    KvOp::ReadModifyWrite => {
                        table.read_modify_write(keys.next_key(), val_rng.next_u64())
                    }
                    KvOp::Scan => {
                        // A scan drawn by the *write* mix is a short
                        // transactional range op, not an analytical
                        // scan; it counts as writer work and is not
                        // sampled.
                        let lo = keys.next_key();
                        let hi = lo.saturating_add(spec.scan_span).min(keys.frontier());
                        std::hint::black_box(table.scan(lo, hi));
                    }
                }
                ((1u64, 0u64), None)
            }
        },
        |acc: &mut (u64, u64), d| {
            acc.0 += d.0;
            acc.1 += d.1;
        },
    );
    HtapMeasurement { measurement, writer_ops, scans }
}

/// Run an HTAP workload against a [`RangeSet`]: `spec.writers` threads
/// draw from `mix` (point membership traffic) while `spec.scanners`
/// threads run back-to-back `range_count` calls.
pub fn run_htap_set<S: RangeSet + ?Sized>(
    set: &S,
    mix: OpMix,
    spec: &HtapSpec,
    on_measure_start: impl Fn() + Sync,
) -> HtapMeasurement {
    if spec.prefill {
        for k in (0..spec.key_space).step_by(2) {
            set.insert(k);
        }
    }
    let (measurement, (writer_ops, scans)) = run_timed(
        spec.threads(),
        spec.warmup,
        spec.duration,
        spec.record_latency,
        on_measure_start,
        |t| {
            let scanner = t >= spec.writers;
            let mut keys = KeyStream::new(spec.dist, spec.key_space, spec.seed).for_thread(t);
            let mut ops_rng = SplitMix64::for_thread(spec.seed ^ 0xDEAD_BEEF, t);
            move |timed: bool| {
                if scanner {
                    let (lo, hi) = scan_bounds(&mut ops_rng, spec.key_space, spec.scan_span);
                    let t0 = timed.then(Instant::now);
                    std::hint::black_box(set.range_count(lo, hi));
                    return ((0u64, 1u64), t0.map(elapsed_ns));
                }
                let key = keys.next_key();
                match mix.next_op(&mut ops_rng) {
                    OpKind::Contains => {
                        std::hint::black_box(set.contains(key));
                    }
                    OpKind::Insert => {
                        std::hint::black_box(set.insert(key));
                    }
                    OpKind::Remove => {
                        std::hint::black_box(set.remove(key));
                    }
                    OpKind::RangeScan => {
                        let hi = key.saturating_add(spec.scan_span).min(spec.key_space);
                        std::hint::black_box(set.range_count(key, hi));
                    }
                }
                ((1u64, 0u64), None)
            }
        },
        |acc: &mut (u64, u64), d| {
            acc.0 += d.0;
            acc.1 += d.1;
        },
    );
    HtapMeasurement { measurement, writer_ops, scans }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::ConcurrentSet;
    use std::collections::{BTreeMap, BTreeSet};
    use std::sync::Mutex;

    struct MutexTable(Mutex<BTreeMap<u64, u64>>);

    impl KvTable for MutexTable {
        fn read(&self, key: u64) -> bool {
            self.0.lock().unwrap().contains_key(&key)
        }
        fn update(&self, key: u64, value: u64) {
            self.0.lock().unwrap().insert(key, value);
        }
        fn insert(&self, key: u64, value: u64) {
            self.0.lock().unwrap().insert(key, value);
        }
        fn delete(&self, key: u64) -> bool {
            self.0.lock().unwrap().remove(&key).is_some()
        }
        fn read_modify_write(&self, key: u64, value: u64) {
            let mut map = self.0.lock().unwrap();
            let next = map.get(&key).map_or(value, |v| v ^ value);
            map.insert(key, next);
        }
        fn scan(&self, lo: u64, hi: u64) -> usize {
            if lo >= hi {
                return 0;
            }
            self.0.lock().unwrap().range(lo..hi).count()
        }
    }

    struct MutexSet(Mutex<BTreeSet<u64>>);

    impl ConcurrentSet for MutexSet {
        fn contains(&self, key: u64) -> bool {
            self.0.lock().unwrap().contains(&key)
        }
        fn insert(&self, key: u64) -> bool {
            self.0.lock().unwrap().insert(key)
        }
        fn remove(&self, key: u64) -> bool {
            self.0.lock().unwrap().remove(&key)
        }
    }

    impl RangeSet for MutexSet {
        fn range_count(&self, lo: u64, hi: u64) -> usize {
            if lo >= hi {
                return 0;
            }
            self.0.lock().unwrap().range(lo..hi).count()
        }
    }

    fn tiny_spec() -> HtapSpec {
        HtapSpec {
            writers: 2,
            scanners: 1,
            key_space: 128,
            prefill: true,
            dist: KeyDist::Uniform,
            scan_span: 64,
            duration: Duration::from_millis(30),
            warmup: Duration::from_millis(5),
            record_latency: true,
            seed: 17,
        }
    }

    #[test]
    fn kv_run_splits_roles_and_samples_scans_only() {
        let table = MutexTable(Mutex::new(BTreeMap::new()));
        let m = run_htap_kv(&table, KvMix::ycsb_a(), &tiny_spec(), || {});
        assert!(m.writer_ops > 0, "writers made no progress");
        assert!(m.scans > 0, "scanner made no progress");
        assert_eq!(m.measurement.ops, m.writer_ops + m.scans);
        // Scan-only histogram: every sample is a scan, so the count
        // can never exceed the scan tally.
        assert!(m.measurement.latency.count() > 0);
        assert!(m.measurement.latency.count() <= m.scans);
        assert!(m.scan_throughput() > 0.0);
    }

    #[test]
    fn set_run_splits_roles_and_samples_scans_only() {
        let set = MutexSet(Mutex::new(BTreeSet::new()));
        let m = run_htap_set(&set, OpMix::updates(50), &tiny_spec(), || {});
        assert!(m.writer_ops > 0);
        assert!(m.scans > 0);
        assert!(m.measurement.latency.count() <= m.scans);
    }

    #[test]
    fn latency_recording_can_be_disabled() {
        let table = MutexTable(Mutex::new(BTreeMap::new()));
        let mut spec = tiny_spec();
        spec.record_latency = false;
        let m = run_htap_kv(&table, KvMix::ycsb_a(), &spec, || {});
        assert_eq!(m.measurement.latency.count(), 0);
        assert!(m.scans > 0);
    }

    #[test]
    fn measure_start_hook_fires_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let set = MutexSet(Mutex::new(BTreeSet::new()));
        let fired = AtomicU32::new(0);
        run_htap_set(&set, OpMix::updates(20), &tiny_spec(), || {
            fired.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(fired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn scan_bounds_stay_inside_the_space() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let (lo, hi) = scan_bounds(&mut rng, 100, 40);
            assert!(lo < 100);
            assert!(hi <= 100);
            assert!(hi >= lo);
        }
    }
}
