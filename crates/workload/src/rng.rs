//! SplitMix64: tiny, fast, reproducible PRNG (Steele, Lea & Flood 2014).
//!
//! Statistical quality is far beyond what workload generation needs, the
//! state is a single `u64`, and `next_u64` is four arithmetic ops — it
//! disappears next to the cost of a single transactional read.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derive an independent per-thread generator from a base seed.
    pub fn for_thread(base_seed: u64, thread: usize) -> Self {
        // Decorrelate with a golden-ratio stride, then burn one output.
        let mut rng = Self::new(base_seed ^ (thread as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit multiply-shift (Lemire); bias is < 2^-64, irrelevant
        // for workloads.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn per_thread_streams_differ() {
        let mut a = SplitMix64::for_thread(7, 0);
        let mut b = SplitMix64::for_thread(7, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound_and_covers_range() {
        let mut rng = SplitMix64::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = SplitMix64::new(1234);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.next_below(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b} far from uniform");
        }
    }
}
