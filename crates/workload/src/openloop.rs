//! Open-loop (target-rate) scheduling with coordinated-omission-safe
//! latency accounting.
//!
//! A *closed-loop* driver issues the next operation only after the
//! previous one returns, so a slow server quietly slows the request
//! stream and the recorded latencies omit exactly the samples that
//! hurt — the coordinated-omission trap. An *open-loop* driver fixes
//! the schedule up front: operation `i` is *intended* to start at
//! `start + i / rate`, regardless of how the server is doing, and its
//! latency is measured from that intended instant to completion. An
//! operation that waited behind a stalled pipeline therefore charges
//! its full queueing delay to the tail quantiles, which is the honest
//! number an end user would see.
//!
//! [`Pacer`] hands out the intended schedule; [`record_sample`] folds
//! a completion into a [`LatencyHistogram`] measured against it. The
//! network load generator in `polytm-server` drives both; they are
//! kept here, free of any protocol, so in-process drivers can adopt
//! the same discipline.

use std::time::{Duration, Instant};

use crate::hist::LatencyHistogram;

/// A fixed-rate intended-start schedule: operation `i` is due at
/// `origin + i / rate`. The schedule never slips — if the caller falls
/// behind, [`Pacer::due`] simply reports no wait, and the backlog of
/// intended instants drains at full speed while each sample still
/// carries its queueing delay.
#[derive(Clone, Debug)]
pub struct Pacer {
    origin: Instant,
    interval_ns: f64,
    issued: u64,
}

impl Pacer {
    /// A schedule of `rate` operations per second starting now.
    /// `rate` must be positive and finite.
    pub fn new(rate: f64) -> Self {
        Self::starting_at(Instant::now(), rate)
    }

    /// A schedule with an explicit origin (lets several pacers share
    /// one clock so their schedules interleave deterministically).
    pub fn starting_at(origin: Instant, rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Pacer { origin, interval_ns: 1.0e9 / rate, issued: 0 }
    }

    /// Intended start instant of the next operation, without
    /// consuming it.
    pub fn peek(&self) -> Instant {
        self.intended(self.issued)
    }

    /// Consume and return the next intended start instant.
    pub fn take(&mut self) -> Instant {
        let at = self.intended(self.issued);
        self.issued += 1;
        at
    }

    /// Intended start instant of operation `i`.
    pub fn intended(&self, i: u64) -> Instant {
        self.origin + Duration::from_nanos((i as f64 * self.interval_ns) as u64)
    }

    /// Operations handed out so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// How long to sleep (from `now`) until the next operation is
    /// due; `Duration::ZERO` when behind schedule.
    pub fn due(&self, now: Instant) -> Duration {
        self.peek().saturating_duration_since(now)
    }
}

/// Fold one completed operation into `hist`, measured from its
/// *intended* start (not its actual send time). Returns the recorded
/// latency in nanoseconds.
pub fn record_sample(hist: &mut LatencyHistogram, intended: Instant, completed: Instant) -> u64 {
    let ns = completed.saturating_duration_since(intended).as_nanos().min(u64::MAX as u128) as u64;
    hist.record(ns);
    ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_fixed_and_monotone() {
        let origin = Instant::now();
        let mut pacer = Pacer::starting_at(origin, 1000.0); // 1ms apart
        let first = pacer.take();
        let second = pacer.take();
        assert_eq!(first, origin);
        assert_eq!(second.duration_since(origin), Duration::from_millis(1));
        assert_eq!(pacer.issued(), 2);
        // The schedule is a function of the index, not of when the
        // caller showed up.
        assert_eq!(pacer.intended(10).duration_since(origin), Duration::from_millis(10));
    }

    #[test]
    fn due_reports_zero_when_behind() {
        let origin = Instant::now() - Duration::from_secs(1);
        let pacer = Pacer::starting_at(origin, 100.0);
        assert_eq!(pacer.due(Instant::now()), Duration::ZERO);
    }

    #[test]
    fn sample_latency_includes_queueing_delay() {
        let mut hist = LatencyHistogram::new();
        let origin = Instant::now();
        // Completed 5ms after its intended start, even if it was
        // actually sent 4ms late: the full 5ms is charged.
        let ns = record_sample(&mut hist, origin, origin + Duration::from_millis(5));
        assert!(ns >= 5_000_000);
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn completion_before_intended_records_zero() {
        let mut hist = LatencyHistogram::new();
        let at = Instant::now();
        let ns = record_sample(&mut hist, at + Duration::from_millis(1), at);
        assert_eq!(ns, 0);
    }
}
