//! # polytm-workload — deterministic workload generation & measurement
//!
//! The benchmark harness (crate `polytm-bench`) sweeps data-structure
//! implementations across thread counts, update ratios and key
//! distributions. This crate holds the pieces that are independent of any
//! particular structure:
//!
//! * [`rng`] — a tiny splitmix64/xoshiro-style PRNG. Deliberately not the
//!   `rand` crate: benchmark workloads must be bit-for-bit reproducible
//!   across runs and platforms, and the generator sits on the measured
//!   hot path, so it must be branch-light and allocation-free.
//! * [`keys`] — uniform and zipfian key streams over a bounded key space;
//! * [`mix`] — operation mixes (`contains`/`insert`/`remove` ratios);
//! * [`driver`] — the [`driver::ConcurrentSet`] abstraction plus a
//!   multi-threaded timed driver with warmup and per-thread accounting;
//! * [`hist`] — a mergeable log-bucketed latency histogram (p50/p95/p99);
//! * [`table`] — fixed-width ASCII table and CSV emitters for the
//!   experiment reports.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod hist;
pub mod keys;
pub mod mix;
pub mod rng;
pub mod table;

pub use driver::{run_workload, ConcurrentSet, Measurement, WorkloadSpec};
pub use hist::LatencyHistogram;
pub use keys::{KeyDist, KeyStream};
pub use mix::{OpKind, OpMix};
pub use rng::SplitMix64;
pub use table::Table;
