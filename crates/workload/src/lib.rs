//! # polytm-workload — deterministic workload generation & measurement
//!
//! The benchmark harness (crate `polytm-bench`) sweeps data-structure
//! implementations across thread counts, update ratios and key
//! distributions. This crate holds the pieces that are independent of any
//! particular structure:
//!
//! * [`rng`] — a tiny splitmix64/xoshiro-style PRNG. Deliberately not the
//!   `rand` crate: benchmark workloads must be bit-for-bit reproducible
//!   across runs and platforms, and the generator sits on the measured
//!   hot path, so it must be branch-light and allocation-free.
//! * [`keys`] — uniform and zipfian key streams over a bounded key space;
//! * [`mix`] — operation mixes (`contains`/`insert`/`remove` ratios);
//! * [`driver`] — the [`driver::ConcurrentSet`] / [`driver::RangeSet`]
//!   abstractions plus a multi-threaded timed driver with warmup,
//!   per-thread accounting and optional per-op latency histograms;
//! * [`kv`] — the record-store (YCSB-style) counterpart: the
//!   [`kv::KvTable`] abstraction, [`kv::KvMix`] operation mixes with
//!   the YCSB A–F presets, and a timed driver with read-hit accounting;
//! * [`htap`] — dedicated-role hybrid workloads: analytical scanner
//!   threads running long range scans concurrently with transactional
//!   writer threads, reporting scan-only latency quantiles;
//! * [`hist`] — a mergeable log-bucketed latency histogram
//!   (p50/p95/p99/p999);
//! * [`openloop`] — target-rate (open-loop) scheduling with
//!   coordinated-omission-safe latency accounting, used by the
//!   `polytm-server` load generator;
//! * [`table`] — fixed-width ASCII table and CSV emitters for the
//!   experiment reports.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod hist;
pub mod htap;
pub mod keys;
pub mod kv;
pub mod mix;
pub mod openloop;
pub mod rng;
pub mod table;

pub use driver::{
    run_scenario, run_scenario_with, run_workload, run_workload_with, ConcurrentSet, Measurement,
    RangeSet, WorkloadSpec,
};
pub use hist::LatencyHistogram;
pub use htap::{run_htap_kv, run_htap_set, HtapMeasurement, HtapSpec};
pub use keys::{KeyDist, KeyStream};
pub use kv::{run_kv_scenario, run_kv_scenario_with, KvMeasurement, KvMix, KvOp, KvSpec, KvTable};
pub use mix::{MixCursor, MixPhase, MixSchedule, OpKind, OpMix};
pub use openloop::{record_sample, Pacer};
pub use rng::SplitMix64;
pub use table::Table;
