//! The measurement driver: N threads hammer one [`ConcurrentSet`] (or
//! [`RangeSet`]) for a fixed duration and report throughput plus
//! per-operation latency quantiles.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::hist::LatencyHistogram;
use crate::keys::{KeyDist, KeyStream};
use crate::mix::{MixSchedule, OpKind, OpMix};
use crate::rng::SplitMix64;

/// Anything that behaves like a concurrent set of `u64` keys. All the
/// implementations under test (transactional, lock-based, lock-free)
/// adapt to this in the bench crate.
pub trait ConcurrentSet: Sync {
    /// Membership test.
    fn contains(&self, key: u64) -> bool;
    /// Insert; false if present.
    fn insert(&self, key: u64) -> bool;
    /// Remove; false if absent.
    fn remove(&self, key: u64) -> bool;
    /// Phase notification: the driver calls this from a worker thread
    /// whenever that thread's (phased) schedule crosses a phase
    /// boundary, before the first operation of the new phase. Adaptive
    /// backends use it to tag the thread's subsequent operations with a
    /// phase-specific transaction class, so mid-run phase changes
    /// surface as reclassifiable classes. The default ignores it.
    fn note_phase(&self, _phase: usize) {}
}

/// Extension for backends that can observe a whole key range in one
/// operation — the snapshot/range-scan scenarios drive this. On the
/// transactional side it is backed by `Stm::snapshot`; lock-based and
/// lock-free backends scan with whatever consistency their discipline
/// affords (documented per implementation).
pub trait RangeSet: ConcurrentSet {
    /// Number of keys in `[lo, hi)`, observed as one scan.
    fn range_count(&self, lo: u64, hi: u64) -> usize;
}

/// What to run.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Worker thread count.
    pub threads: usize,
    /// Key space (keys drawn from `[0, key_space)`).
    pub key_space: u64,
    /// Pre-fill the set with every even key (≈ 50% occupancy, the
    /// standard steady-state initial condition) when true.
    pub prefill: bool,
    /// Operation mix, possibly phased over time.
    pub mix: MixSchedule,
    /// Key distribution.
    pub dist: KeyDist,
    /// Width of each range scan: a scan drawn at key `k` covers
    /// `[k, min(k + scan_span, key_space))`. Ignored by scan-free mixes.
    pub scan_span: u64,
    /// Measured duration (after warmup).
    pub duration: Duration,
    /// Warmup duration (not measured).
    pub warmup: Duration,
    /// Record per-operation latency into per-thread histograms (merged
    /// into [`Measurement::latency`] at join). Adds two `Instant` reads
    /// per operation; leave off for pure-throughput runs.
    pub record_latency: bool,
    /// Base seed for the deterministic per-thread streams.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The conventional scan width for `key_space`: 1/32nd of the
    /// space, at least one key. The single source of the default-span
    /// policy for every spec builder.
    pub fn default_scan_span(key_space: u64) -> u64 {
        (key_space / 32).max(1)
    }

    /// A conventional spec: `threads` workers over `key_space` keys at
    /// `update_percent`% updates, uniform keys, 200 ms measure + 50 ms
    /// warmup, no latency recording.
    pub fn quick(threads: usize, key_space: u64, update_percent: u32) -> Self {
        Self {
            threads,
            key_space,
            prefill: true,
            mix: OpMix::updates(update_percent).into(),
            dist: KeyDist::Uniform,
            scan_span: Self::default_scan_span(key_space),
            duration: Duration::from_millis(200),
            warmup: Duration::from_millis(50),
            record_latency: false,
            seed: 0xC0FF_EE11,
        }
    }
}

/// The result of one run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Completed operations during the measured window.
    pub ops: u64,
    /// Measured wall time of the window (not the requested duration:
    /// sleep overshoot is real time the workers kept running, so
    /// throughput divides by this).
    pub elapsed: Duration,
    /// Operations per second over the measured window.
    pub throughput: f64,
    /// Merged per-operation latency histogram; empty unless
    /// [`WorkloadSpec::record_latency`] was set.
    pub latency: LatencyHistogram,
}

/// Adapter that lets scan-free workloads run against a plain
/// [`ConcurrentSet`]: `run_workload` asserts the mix never draws a scan,
/// so `range_count` is unreachable.
struct NoScan<'a, S: ?Sized>(&'a S);

impl<S: ConcurrentSet + ?Sized> ConcurrentSet for NoScan<'_, S> {
    fn contains(&self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key)
    }
    fn remove(&self, key: u64) -> bool {
        self.0.remove(key)
    }
    fn note_phase(&self, phase: usize) {
        self.0.note_phase(phase);
    }
}

impl<S: ConcurrentSet + ?Sized> RangeSet for NoScan<'_, S> {
    fn range_count(&self, _lo: u64, _hi: u64) -> usize {
        unreachable!("run_workload rejects mixes with range scans")
    }
}

/// Run a scan-free `spec` against `set`. Deterministic op/key streams per
/// thread; wall-clock-bounded. The caller is responsible for resetting
/// any statistics before the call if it wants per-run counters — or use
/// [`run_workload_with`] to reset them exactly at window start.
///
/// # Panics
/// Panics when `spec.mix` can draw range scans — those need a
/// [`RangeSet`] backend via [`run_scenario`].
pub fn run_workload<S: ConcurrentSet + ?Sized>(set: &S, spec: &WorkloadSpec) -> Measurement {
    run_workload_with(set, spec, || {})
}

/// As [`run_workload`], invoking `on_measure_start` at the moment the
/// measured window opens (after warmup). External counters reset in the
/// callback — e.g. `Stm::reset_stats` — then describe the same interval
/// as the returned throughput and latency figures, up to the instant it
/// takes workers to observe the stop flag.
pub fn run_workload_with<S: ConcurrentSet + ?Sized>(
    set: &S,
    spec: &WorkloadSpec,
    on_measure_start: impl Fn() + Sync,
) -> Measurement {
    assert!(
        !spec.mix.has_scans(),
        "mix draws range scans; use run_scenario with a RangeSet backend"
    );
    run_scenario_with(&NoScan(set), spec, on_measure_start)
}

/// Run `spec` — any mix, including phased schedules and range scans —
/// against a [`RangeSet`] backend.
pub fn run_scenario<S: RangeSet + ?Sized>(set: &S, spec: &WorkloadSpec) -> Measurement {
    run_scenario_with(set, spec, || {})
}

/// As [`run_scenario`] with the window-start callback of
/// [`run_workload_with`].
pub fn run_scenario_with<S: RangeSet + ?Sized>(
    set: &S,
    spec: &WorkloadSpec,
    on_measure_start: impl Fn() + Sync,
) -> Measurement {
    if spec.prefill {
        for k in (0..spec.key_space).step_by(2) {
            set.insert(k);
        }
    }
    let (measurement, ()) = run_timed(
        spec.threads,
        spec.warmup,
        spec.duration,
        spec.record_latency,
        on_measure_start,
        |t| {
            let mut keys = KeyStream::new(spec.dist, spec.key_space, spec.seed).for_thread(t);
            let mut ops_rng = SplitMix64::for_thread(spec.seed ^ 0xDEAD_BEEF, t);
            // O(1) per draw; phase position advances with this
            // thread's own op count, deterministically.
            let mut mix = spec.mix.cursor();
            let mut cur_phase = 0usize;
            move |timed: bool| {
                let key = keys.next_key();
                // Phase of the op about to be drawn; notify the
                // backend on boundaries (constant schedules never
                // leave phase 0, so this is one predictable compare).
                let phase = mix.phase();
                if phase != cur_phase {
                    cur_phase = phase;
                    set.note_phase(phase);
                }
                let op = mix.next_op(&mut ops_rng);
                // Latency covers the set operation only, not the
                // deterministic key/op draws above (the boundary every
                // recorded trajectory row was measured with).
                let t0 = timed.then(Instant::now);
                match op {
                    OpKind::Contains => {
                        std::hint::black_box(set.contains(key));
                    }
                    OpKind::Insert => {
                        std::hint::black_box(set.insert(key));
                    }
                    OpKind::Remove => {
                        std::hint::black_box(set.remove(key));
                    }
                    OpKind::RangeScan => {
                        let hi = key.saturating_add(spec.scan_span).min(spec.key_space);
                        std::hint::black_box(set.range_count(key, hi));
                    }
                }
                ((), t0.map(elapsed_ns))
            }
        },
        |(), ()| {},
    );
    measurement
}

/// Saturating nanoseconds since `t0` (the histogram sample form).
pub(crate) fn elapsed_ns(t0: Instant) -> u64 {
    t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// The timed-measurement core shared by the set driver above and the
/// record-store driver in [`crate::kv`]: `threads` workers each run a
/// per-thread step closure (built by `make_step`, which owns the
/// thread's deterministic streams) until the stop flag. Each step is
/// told whether to time itself (`true` only inside the measured window
/// with latency recording on — the step picks its own timing boundary
/// around the measured operation and returns the sample). Operations
/// are counted — and each step's tally of type `T` folded — only
/// inside the measured window (warmup work is discarded by resetting
/// on window entry); latency samples go into per-thread histograms
/// merged at join. The window-discipline subtleties live here, once:
/// the window flag is sampled *before* the step so an op straddling
/// the window open is attributed consistently with its latency sample,
/// and `on_measure_start` fires after the flag flips but before the
/// window clock starts.
pub(crate) fn run_timed<T, S>(
    threads: usize,
    warmup: Duration,
    duration: Duration,
    record_latency: bool,
    on_measure_start: impl Fn() + Sync,
    make_step: impl Fn(usize) -> S + Sync,
    fold: impl Fn(&mut T, T) + Sync,
) -> (Measurement, T)
where
    // Generic (not boxed) step: the per-op call monomorphizes and
    // inlines, so the measured hot loop is the same machine code shape
    // as the pre-extraction drivers — trajectory rows stay comparable.
    S: FnMut(bool) -> (T, Option<u64>),
    T: Default + Send,
{
    let stop = AtomicBool::new(false);
    let measuring = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let merged_hist = Mutex::new(LatencyHistogram::new());
    let merged_tally = Mutex::new(T::default());

    let elapsed = std::thread::scope(|s| {
        for t in 0..threads {
            let stop = &stop;
            let measuring = &measuring;
            let total_ops = &total_ops;
            let merged_hist = &merged_hist;
            let merged_tally = &merged_tally;
            let make_step = &make_step;
            let fold = &fold;
            s.spawn(move || {
                let mut step = make_step(t);
                let mut hist = LatencyHistogram::new();
                let mut local_ops = 0u64;
                let mut tally = T::default();
                let mut counted = false;
                while !stop.load(Ordering::Relaxed) {
                    let in_window = measuring.load(Ordering::Relaxed);
                    let (delta, sample_ns) = step(in_window && record_latency);
                    if let Some(ns) = sample_ns {
                        hist.record(ns);
                    }
                    if in_window {
                        if !counted {
                            // Entering the measured window: reset.
                            counted = true;
                            local_ops = 0;
                            tally = T::default();
                        }
                        local_ops += 1;
                        fold(&mut tally, delta);
                    }
                }
                if counted {
                    total_ops.fetch_add(local_ops, Ordering::Relaxed);
                    fold(&mut merged_tally.lock().expect("tally mutex poisoned"), tally);
                }
                if hist.count() > 0 {
                    merged_hist.lock().expect("histogram mutex poisoned").merge(&hist);
                }
            });
        }
        // Warmup, then measure. The measured window is what actually
        // elapsed between flipping `measuring` on and `stop` — sleep is
        // allowed to overshoot, and the workers kept counting throughout.
        std::thread::sleep(warmup);
        measuring.store(true, Ordering::Relaxed);
        on_measure_start();
        let start = Instant::now();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        start.elapsed()
        // Threads join at scope end; ops counted only inside the window.
    });

    let ops = total_ops.load(Ordering::Relaxed);
    let latency = merged_hist.into_inner().expect("histogram mutex poisoned");
    let tally = merged_tally.into_inner().expect("tally mutex poisoned");
    (Measurement { ops, elapsed, throughput: ops as f64 / elapsed.as_secs_f64(), latency }, tally)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    /// Reference implementation for driver tests.
    struct MutexSet(Mutex<BTreeSet<u64>>);

    impl MutexSet {
        fn new() -> Self {
            Self(Mutex::new(BTreeSet::new()))
        }
    }

    impl ConcurrentSet for MutexSet {
        fn contains(&self, key: u64) -> bool {
            self.0.lock().unwrap().contains(&key)
        }
        fn insert(&self, key: u64) -> bool {
            self.0.lock().unwrap().insert(key)
        }
        fn remove(&self, key: u64) -> bool {
            self.0.lock().unwrap().remove(&key)
        }
    }

    impl RangeSet for MutexSet {
        fn range_count(&self, lo: u64, hi: u64) -> usize {
            self.0.lock().unwrap().range(lo..hi).count()
        }
    }

    fn tiny_spec(threads: usize) -> WorkloadSpec {
        WorkloadSpec {
            threads,
            key_space: 64,
            prefill: true,
            mix: OpMix::updates(20).into(),
            dist: KeyDist::Uniform,
            scan_span: 8,
            duration: Duration::from_millis(30),
            warmup: Duration::from_millis(5),
            record_latency: false,
            seed: 1,
        }
    }

    #[test]
    fn driver_measures_nonzero_throughput() {
        let set = MutexSet::new();
        let m = run_workload(&set, &tiny_spec(2));
        assert!(m.ops > 0);
        assert!(m.throughput > 0.0);
    }

    #[test]
    fn throughput_divides_by_measured_window() {
        let set = MutexSet::new();
        let spec = tiny_spec(1);
        let m = run_workload(&set, &spec);
        // The measured window can only overshoot the requested sleep.
        assert!(m.elapsed >= spec.duration, "elapsed {:?}", m.elapsed);
        let recomputed = m.ops as f64 / m.elapsed.as_secs_f64();
        assert!((m.throughput - recomputed).abs() < 1e-6 * recomputed.max(1.0));
    }

    #[test]
    fn prefill_populates_even_keys() {
        let set = MutexSet::new();
        let mut spec = tiny_spec(1);
        spec.mix = OpMix::updates(0).into(); // read-only: population unchanged
        run_workload(&set, &spec);
        let inner = set.0.lock().unwrap();
        for k in (0..64).step_by(2) {
            assert!(inner.contains(&k));
        }
        for k in (1..64).step_by(2) {
            assert!(!inner.contains(&k));
        }
    }

    #[test]
    fn more_threads_still_complete() {
        let set = MutexSet::new();
        let m = run_workload(&set, &tiny_spec(4));
        assert!(m.ops > 0);
    }

    #[test]
    fn latency_recording_fills_the_histogram() {
        let set = MutexSet::new();
        let mut spec = tiny_spec(2);
        spec.record_latency = true;
        let m = run_workload(&set, &spec);
        assert!(m.latency.count() > 0, "histogram must receive samples");
        // Sampled ops are a subset of counted ops (the window flags are
        // read at slightly different instants), but the same order of
        // magnitude.
        assert!(m.latency.count() <= m.ops + spec.threads as u64);
        assert!(m.latency.p50() <= m.latency.p99());
        assert!(m.latency.p99() <= m.latency.p999());
        assert!(m.latency.max() > 0);
    }

    #[test]
    fn latency_off_leaves_histogram_empty() {
        let set = MutexSet::new();
        let m = run_workload(&set, &tiny_spec(1));
        assert_eq!(m.latency.count(), 0);
    }

    #[test]
    fn measure_start_hook_fires_once_at_window_open() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let set = MutexSet::new();
        let fired = AtomicU32::new(0);
        let m = run_workload_with(&set, &tiny_spec(2), || {
            fired.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(fired.load(Ordering::Relaxed), 1, "hook fires exactly once");
        assert!(m.ops > 0);
    }

    #[test]
    fn scan_mix_drives_range_counts() {
        let set = MutexSet::new();
        let mut spec = tiny_spec(2);
        spec.mix = OpMix::with_scans(10, 30).into();
        let m = run_scenario(&set, &spec);
        assert!(m.ops > 0);
    }

    #[test]
    fn phased_mix_runs_end_to_end() {
        let set = MutexSet::new();
        let mut spec = tiny_spec(2);
        spec.mix = MixSchedule::phased_burst(5, 200, 90, 50);
        let m = run_workload(&set, &spec);
        assert!(m.ops > 0);
    }

    #[test]
    fn phase_notifications_reach_the_backend() {
        struct PhaseRecorder {
            inner: MutexSet,
            phases: Mutex<Vec<usize>>,
        }
        impl ConcurrentSet for PhaseRecorder {
            fn contains(&self, key: u64) -> bool {
                self.inner.contains(key)
            }
            fn insert(&self, key: u64) -> bool {
                self.inner.insert(key)
            }
            fn remove(&self, key: u64) -> bool {
                self.inner.remove(key)
            }
            fn note_phase(&self, phase: usize) {
                self.phases.lock().unwrap().push(phase);
            }
        }
        let set = PhaseRecorder { inner: MutexSet::new(), phases: Mutex::new(Vec::new()) };
        let mut spec = tiny_spec(1);
        spec.mix = MixSchedule::phased_burst(5, 20, 90, 10);
        run_workload(&set, &spec);
        let phases = set.phases.lock().unwrap();
        assert!(!phases.is_empty(), "phased schedule must emit phase notifications");
        // Single thread: boundaries cycle 1, 2, 0, 1, 2, 0, ...
        for (i, &p) in phases.iter().enumerate() {
            assert_eq!(p, (i + 1) % 3, "boundary {i} out of order: {phases:?}");
        }
    }

    #[test]
    #[should_panic(expected = "range scans")]
    fn run_workload_rejects_scan_mixes() {
        let set = MutexSet::new();
        let mut spec = tiny_spec(1);
        spec.mix = OpMix::with_scans(0, 100).into();
        run_workload(&set, &spec);
    }
}
