//! The measurement driver: N threads hammer one [`ConcurrentSet`] for a
//! fixed duration and report throughput.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::keys::{KeyDist, KeyStream};
use crate::mix::{OpKind, OpMix};
use crate::rng::SplitMix64;

/// Anything that behaves like a concurrent set of `u64` keys. All the
/// implementations under test (transactional, lock-based, lock-free)
/// adapt to this in the bench crate.
pub trait ConcurrentSet: Sync {
    /// Membership test.
    fn contains(&self, key: u64) -> bool;
    /// Insert; false if present.
    fn insert(&self, key: u64) -> bool;
    /// Remove; false if absent.
    fn remove(&self, key: u64) -> bool;
}

/// What to run.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Worker thread count.
    pub threads: usize,
    /// Key space (keys drawn from `[0, key_space)`).
    pub key_space: u64,
    /// Pre-fill the set with every even key (≈ 50% occupancy, the
    /// standard steady-state initial condition) when true.
    pub prefill: bool,
    /// Operation mix.
    pub mix: OpMix,
    /// Key distribution.
    pub dist: KeyDist,
    /// Measured duration (after warmup).
    pub duration: Duration,
    /// Warmup duration (not measured).
    pub warmup: Duration,
    /// Base seed for the deterministic per-thread streams.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A conventional spec: `threads` workers over `key_space` keys at
    /// `update_percent`% updates, uniform keys, 200 ms measure + 50 ms
    /// warmup.
    pub fn quick(threads: usize, key_space: u64, update_percent: u32) -> Self {
        Self {
            threads,
            key_space,
            prefill: true,
            mix: OpMix::updates(update_percent),
            dist: KeyDist::Uniform,
            duration: Duration::from_millis(200),
            warmup: Duration::from_millis(50),
            seed: 0xC0FF_EE11,
        }
    }
}

/// The result of one run.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Completed operations during the measured window.
    pub ops: u64,
    /// Measured wall time.
    pub elapsed: Duration,
    /// Operations per second.
    pub throughput: f64,
}

/// Run `spec` against `set`. Deterministic op/key streams per thread;
/// wall-clock-bounded. The caller is responsible for resetting any
/// statistics before the call if it wants per-run counters.
pub fn run_workload<S: ConcurrentSet + ?Sized>(set: &S, spec: &WorkloadSpec) -> Measurement {
    if spec.prefill {
        for k in (0..spec.key_space).step_by(2) {
            set.insert(k);
        }
    }
    let stop = AtomicBool::new(false);
    let measuring = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..spec.threads {
            let stop = &stop;
            let measuring = &measuring;
            let total_ops = &total_ops;
            let spec_ref = spec;
            let set = &set;
            s.spawn(move || {
                let mut keys =
                    KeyStream::new(spec_ref.dist, spec_ref.key_space, spec_ref.seed).for_thread(t);
                let mut ops_rng = SplitMix64::for_thread(spec_ref.seed ^ 0xDEAD_BEEF, t);
                let mut local_ops = 0u64;
                let mut counted = false;
                while !stop.load(Ordering::Relaxed) {
                    let key = keys.next_key();
                    match spec_ref.mix.next_op(&mut ops_rng) {
                        OpKind::Contains => {
                            std::hint::black_box(set.contains(key));
                        }
                        OpKind::Insert => {
                            std::hint::black_box(set.insert(key));
                        }
                        OpKind::Remove => {
                            std::hint::black_box(set.remove(key));
                        }
                    }
                    if measuring.load(Ordering::Relaxed) {
                        if !counted {
                            // Entering the measured window: reset.
                            counted = true;
                            local_ops = 0;
                        }
                        local_ops += 1;
                    }
                }
                if counted {
                    total_ops.fetch_add(local_ops, Ordering::Relaxed);
                }
            });
        }
        // Warmup, then measure.
        std::thread::sleep(spec.warmup);
        measuring.store(true, Ordering::Relaxed);
        let start = Instant::now();
        std::thread::sleep(spec.duration);
        stop.store(true, Ordering::Relaxed);
        let elapsed = start.elapsed();
        // Threads join at scope end; ops counted only inside the window.
        (elapsed, ())
    });

    let ops = total_ops.load(Ordering::Relaxed);
    // Recompute elapsed from spec (scope returned it, but keep it simple
    // and robust: the measured window is what we slept).
    let elapsed = spec.duration;
    Measurement { ops, elapsed, throughput: ops as f64 / elapsed.as_secs_f64() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    /// Reference implementation for driver tests.
    struct MutexSet(Mutex<HashSet<u64>>);

    impl ConcurrentSet for MutexSet {
        fn contains(&self, key: u64) -> bool {
            self.0.lock().unwrap().contains(&key)
        }
        fn insert(&self, key: u64) -> bool {
            self.0.lock().unwrap().insert(key)
        }
        fn remove(&self, key: u64) -> bool {
            self.0.lock().unwrap().remove(&key)
        }
    }

    fn tiny_spec(threads: usize) -> WorkloadSpec {
        WorkloadSpec {
            threads,
            key_space: 64,
            prefill: true,
            mix: OpMix::updates(20),
            dist: KeyDist::Uniform,
            duration: Duration::from_millis(30),
            warmup: Duration::from_millis(5),
            seed: 1,
        }
    }

    #[test]
    fn driver_measures_nonzero_throughput() {
        let set = MutexSet(Mutex::new(HashSet::new()));
        let m = run_workload(&set, &tiny_spec(2));
        assert!(m.ops > 0);
        assert!(m.throughput > 0.0);
    }

    #[test]
    fn prefill_populates_even_keys() {
        let set = MutexSet(Mutex::new(HashSet::new()));
        let mut spec = tiny_spec(1);
        spec.mix = OpMix::updates(0); // read-only: population unchanged
        run_workload(&set, &spec);
        let inner = set.0.lock().unwrap();
        for k in (0..64).step_by(2) {
            assert!(inner.contains(&k));
        }
        for k in (1..64).step_by(2) {
            assert!(!inner.contains(&k));
        }
    }

    #[test]
    fn more_threads_still_complete() {
        let set = MutexSet(Mutex::new(HashSet::new()));
        let m = run_workload(&set, &tiny_spec(4));
        assert!(m.ops > 0);
    }
}
