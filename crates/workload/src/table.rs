//! Fixed-width ASCII tables and CSV output for experiment reports.

/// A simple column-aligned table builder.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format ops/sec human-readably (`12.3 Mops/s`, `45.6 Kops/s`).
pub fn fmt_throughput(ops_per_sec: f64) -> String {
    if ops_per_sec >= 1e6 {
        format!("{:.2} Mops/s", ops_per_sec / 1e6)
    } else if ops_per_sec >= 1e3 {
        format!("{:.1} Kops/s", ops_per_sec / 1e3)
    } else {
        format!("{ops_per_sec:.0} ops/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "100".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len(), "rows equally wide");
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn throughput_formatting() {
        assert_eq!(fmt_throughput(2_500_000.0), "2.50 Mops/s");
        assert_eq!(fmt_throughput(45_600.0), "45.6 Kops/s");
        assert_eq!(fmt_throughput(120.0), "120 ops/s");
    }
}
