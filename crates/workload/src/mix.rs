//! Operation mixes: how a workload splits between `contains`, `insert`,
//! `remove` and `range_scan` — and how that split evolves over time
//! (phased mixes).

use crate::rng::SplitMix64;

/// One set operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Membership test.
    Contains,
    /// Insertion.
    Insert,
    /// Removal.
    Remove,
    /// Range scan (`range_count` over a key span) — a snapshot-shaped
    /// read that touches many locations in one operation.
    RangeScan,
}

/// A `contains`/`insert`/`remove`/`range_scan` ratio. Updates are split
/// evenly between inserts and removes so the structure's size stays
/// stationary — the standard microbenchmark methodology of the STM
/// literature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Fraction of operations that are updates, in `[0, 1]`.
    pub update_fraction: f64,
    /// Fraction of operations that are range scans, in `[0, 1]`.
    /// `update_fraction + scan_fraction` must not exceed 1; the
    /// remainder is `contains`.
    pub scan_fraction: f64,
}

impl OpMix {
    /// An `update_percent`% update mix (0 = read-only, 100 = write-only),
    /// no range scans.
    pub fn updates(update_percent: u32) -> Self {
        assert!(update_percent <= 100);
        Self { update_fraction: f64::from(update_percent) / 100.0, scan_fraction: 0.0 }
    }

    /// An `update_percent`% update, `scan_percent`% range-scan mix; the
    /// rest are `contains`.
    pub fn with_scans(update_percent: u32, scan_percent: u32) -> Self {
        assert!(update_percent <= 100 && scan_percent <= 100 - update_percent);
        Self {
            update_fraction: f64::from(update_percent) / 100.0,
            scan_fraction: f64::from(scan_percent) / 100.0,
        }
    }

    /// Draw the next operation.
    pub fn next_op(&self, rng: &mut SplitMix64) -> OpKind {
        let u = rng.next_f64();
        if u < self.update_fraction / 2.0 {
            OpKind::Insert
        } else if u < self.update_fraction {
            OpKind::Remove
        } else if u < self.update_fraction + self.scan_fraction {
            OpKind::RangeScan
        } else {
            OpKind::Contains
        }
    }
}

/// One phase of a phased mix: `mix` applied for `ops` consecutive
/// operations (per thread).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixPhase {
    /// The mix in force during this phase.
    pub mix: OpMix,
    /// How many operations the phase lasts. Must be non-zero.
    pub ops: u64,
}

/// How the operation mix evolves over a run. Phase position is a pure
/// function of the per-thread operation index, so the schedule is
/// deterministic and independent of wall-clock speed.
#[derive(Debug, Clone, PartialEq)]
pub enum MixSchedule {
    /// The same mix for the whole run.
    Constant(OpMix),
    /// Cycle through the phases in order, then wrap around — e.g.
    /// read-heavy → write-burst → read-heavy, repeating.
    Phased(Vec<MixPhase>),
}

impl From<OpMix> for MixSchedule {
    fn from(mix: OpMix) -> Self {
        MixSchedule::Constant(mix)
    }
}

impl MixSchedule {
    /// A read-heavy / write-burst / read-heavy cycle: `calm_ops`
    /// operations at `calm_update_percent`% updates bracketing
    /// `burst_ops` operations at `burst_update_percent`% updates.
    pub fn phased_burst(
        calm_update_percent: u32,
        calm_ops: u64,
        burst_update_percent: u32,
        burst_ops: u64,
    ) -> Self {
        MixSchedule::Phased(vec![
            MixPhase { mix: OpMix::updates(calm_update_percent), ops: calm_ops },
            MixPhase { mix: OpMix::updates(burst_update_percent), ops: burst_ops },
            MixPhase { mix: OpMix::updates(calm_update_percent), ops: calm_ops },
        ])
    }

    /// The mix in force for the operation at per-thread index `op_index`.
    ///
    /// # Panics
    /// Panics when a phased schedule is empty or contains a zero-length
    /// phase.
    pub fn mix_at(&self, op_index: u64) -> OpMix {
        match self {
            MixSchedule::Constant(mix) => *mix,
            MixSchedule::Phased(phases) => {
                assert!(!phases.is_empty(), "phased schedule needs at least one phase");
                let cycle: u64 = phases.iter().map(|p| p.ops).sum();
                assert!(cycle > 0, "phases must have non-zero length");
                let mut rem = op_index % cycle;
                for p in phases {
                    if rem < p.ops {
                        return p.mix;
                    }
                    rem -= p.ops;
                }
                unreachable!("rem < sum(ops) by construction")
            }
        }
    }

    /// Draw the operation at per-thread index `op_index`. Convenient for
    /// random access; the driver's hot path uses [`MixSchedule::cursor`]
    /// instead, which walks the same sequence in O(1) per draw.
    pub fn next_op(&self, op_index: u64, rng: &mut SplitMix64) -> OpKind {
        self.mix_at(op_index).next_op(rng)
    }

    /// An O(1)-per-draw sequential walker over the schedule, starting at
    /// op index 0. Validates the schedule once, here, instead of per
    /// operation.
    pub fn cursor(&self) -> MixCursor<'_> {
        match self {
            MixSchedule::Constant(mix) => {
                MixCursor { phases: &[], phase_idx: 0, current: *mix, remaining: 0 }
            }
            MixSchedule::Phased(phases) => {
                assert!(!phases.is_empty(), "phased schedule needs at least one phase");
                assert!(phases.iter().all(|p| p.ops > 0), "phases must have non-zero length");
                MixCursor { phases, phase_idx: 0, current: phases[0].mix, remaining: phases[0].ops }
            }
        }
    }

    /// True when any phase can emit [`OpKind::RangeScan`] — such
    /// schedules need a [`crate::driver::RangeSet`] backend.
    pub fn has_scans(&self) -> bool {
        match self {
            MixSchedule::Constant(mix) => mix.scan_fraction > 0.0,
            MixSchedule::Phased(phases) => phases.iter().any(|p| p.mix.scan_fraction > 0.0),
        }
    }
}

/// Sequential walker over a [`MixSchedule`]: the per-op cost is one
/// decrement and (at phase boundaries) one array step — no per-op cycle
/// sums, keeping the measured hot path identical for constant and
/// phased schedules. Draws the same sequence as
/// `schedule.next_op(0..), schedule.next_op(1..), …`.
#[derive(Debug, Clone)]
pub struct MixCursor<'a> {
    /// Empty for constant schedules (the cursor never advances).
    phases: &'a [MixPhase],
    phase_idx: usize,
    current: OpMix,
    /// Ops left in the current phase (unused for constant schedules).
    remaining: u64,
}

impl MixCursor<'_> {
    /// Index (into the schedule's phase list) of the phase the *next*
    /// drawn operation belongs to. Always 0 for constant schedules.
    /// Backends that adapt per phase read this through the driver's
    /// phase notifications.
    #[inline]
    pub fn phase(&self) -> usize {
        self.phase_idx
    }

    /// Draw the next operation and advance.
    #[inline]
    pub fn next_op(&mut self, rng: &mut SplitMix64) -> OpKind {
        let op = self.current.next_op(rng);
        if !self.phases.is_empty() {
            self.remaining -= 1;
            if self.remaining == 0 {
                self.phase_idx = (self.phase_idx + 1) % self.phases.len();
                self.current = self.phases[self.phase_idx].mix;
                self.remaining = self.phases[self.phase_idx].ops;
            }
        }
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_only_mix_never_updates() {
        let mix = OpMix::updates(0);
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            assert_eq!(mix.next_op(&mut rng), OpKind::Contains);
        }
    }

    #[test]
    fn write_only_mix_never_reads() {
        let mix = OpMix::updates(100);
        let mut rng = SplitMix64::new(2);
        for _ in 0..1000 {
            assert_ne!(mix.next_op(&mut rng), OpKind::Contains);
        }
    }

    #[test]
    fn ratios_are_roughly_respected() {
        let mix = OpMix::updates(20);
        let mut rng = SplitMix64::new(3);
        let (mut c, mut i, mut r) = (0u32, 0u32, 0u32);
        for _ in 0..10_000 {
            match mix.next_op(&mut rng) {
                OpKind::Contains => c += 1,
                OpKind::Insert => i += 1,
                OpKind::Remove => r += 1,
                OpKind::RangeScan => unreachable!("scan_fraction is 0"),
            }
        }
        assert!((7500..8500).contains(&c), "contains {c}");
        assert!((700..1300).contains(&i), "insert {i}");
        assert!((700..1300).contains(&r), "remove {r}");
    }

    #[test]
    fn scan_fraction_is_roughly_respected() {
        let mix = OpMix::with_scans(20, 10);
        let mut rng = SplitMix64::new(4);
        let mut scans = 0u32;
        for _ in 0..10_000 {
            if mix.next_op(&mut rng) == OpKind::RangeScan {
                scans += 1;
            }
        }
        assert!((700..1300).contains(&scans), "scan {scans}");
    }

    #[test]
    #[should_panic]
    fn over_100_percent_rejected() {
        OpMix::updates(101);
    }

    #[test]
    #[should_panic]
    fn overcommitted_scan_mix_rejected() {
        OpMix::with_scans(60, 50);
    }

    #[test]
    #[should_panic]
    fn huge_update_percent_rejected_without_overflow() {
        // u32::MAX + 2 wraps to 1 under unchecked addition; the guard
        // must reject before any arithmetic can wrap.
        OpMix::with_scans(u32::MAX, 2);
    }

    #[test]
    fn phased_transitions_are_deterministic_and_exact() {
        // 3-op phase A, 2-op phase B: op indices map to
        // A A A B B | A A A B B | ...
        let a = OpMix::updates(0);
        let b = OpMix::updates(100);
        let sched =
            MixSchedule::Phased(vec![MixPhase { mix: a, ops: 3 }, MixPhase { mix: b, ops: 2 }]);
        for cycle in 0..4u64 {
            for i in 0..3 {
                assert_eq!(sched.mix_at(cycle * 5 + i), a, "op {}", cycle * 5 + i);
            }
            for i in 3..5 {
                assert_eq!(sched.mix_at(cycle * 5 + i), b, "op {}", cycle * 5 + i);
            }
        }
        // Two independent walks over the schedule draw identical ops.
        let mut r1 = SplitMix64::new(9);
        let mut r2 = SplitMix64::new(9);
        for i in 0..1000 {
            assert_eq!(sched.next_op(i, &mut r1), sched.next_op(i, &mut r2));
        }
    }

    #[test]
    fn phased_burst_cycles_through_calm_and_burst() {
        let sched = MixSchedule::phased_burst(5, 100, 90, 50);
        // Mid-burst index: 100..150 within the 250-op cycle.
        assert_eq!(sched.mix_at(120), OpMix::updates(90));
        assert_eq!(sched.mix_at(0), OpMix::updates(5));
        assert_eq!(sched.mix_at(200), OpMix::updates(5));
        // Wraps.
        assert_eq!(sched.mix_at(250 + 120), OpMix::updates(90));
        assert!(!sched.has_scans());
    }

    #[test]
    fn cursor_walks_the_same_sequence_as_indexed_access() {
        for sched in [
            MixSchedule::Constant(OpMix::with_scans(20, 10)),
            MixSchedule::phased_burst(5, 7, 90, 3),
            MixSchedule::Phased(vec![MixPhase { mix: OpMix::updates(50), ops: 1 }]),
        ] {
            let mut cursor = sched.cursor();
            let mut r1 = SplitMix64::new(42);
            let mut r2 = SplitMix64::new(42);
            for i in 0..500 {
                assert_eq!(cursor.next_op(&mut r1), sched.next_op(i, &mut r2), "op {i}");
            }
        }
    }

    #[test]
    fn cursor_phase_tracks_boundaries() {
        let sched = MixSchedule::Phased(vec![
            MixPhase { mix: OpMix::updates(0), ops: 3 },
            MixPhase { mix: OpMix::updates(100), ops: 2 },
        ]);
        let mut cursor = sched.cursor();
        let mut rng = SplitMix64::new(5);
        let mut phases = Vec::new();
        for _ in 0..10 {
            phases.push(cursor.phase());
            cursor.next_op(&mut rng);
        }
        assert_eq!(phases, vec![0, 0, 0, 1, 1, 0, 0, 0, 1, 1]);
        // Constant schedules never leave phase 0.
        let constant = MixSchedule::Constant(OpMix::updates(10));
        let mut cursor = constant.cursor();
        for _ in 0..5 {
            assert_eq!(cursor.phase(), 0);
            cursor.next_op(&mut rng);
        }
    }

    #[test]
    fn has_scans_reflects_any_phase() {
        assert!(MixSchedule::Constant(OpMix::with_scans(10, 5)).has_scans());
        let sched = MixSchedule::Phased(vec![
            MixPhase { mix: OpMix::updates(10), ops: 10 },
            MixPhase { mix: OpMix::with_scans(0, 100), ops: 1 },
        ]);
        assert!(sched.has_scans());
    }
}
