//! Operation mixes: how a workload splits between `contains`, `insert`
//! and `remove`.

use crate::rng::SplitMix64;

/// One set operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Membership test.
    Contains,
    /// Insertion.
    Insert,
    /// Removal.
    Remove,
}

/// A `contains`/`insert`/`remove` ratio. Updates are split evenly between
/// inserts and removes so the structure's size stays stationary — the
/// standard microbenchmark methodology of the STM literature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Fraction of operations that are updates, in `[0, 1]`.
    pub update_fraction: f64,
}

impl OpMix {
    /// An `update_percent`% update mix (0 = read-only, 100 = write-only).
    pub fn updates(update_percent: u32) -> Self {
        assert!(update_percent <= 100);
        Self { update_fraction: f64::from(update_percent) / 100.0 }
    }

    /// Draw the next operation.
    pub fn next_op(&self, rng: &mut SplitMix64) -> OpKind {
        let u = rng.next_f64();
        if u >= self.update_fraction {
            OpKind::Contains
        } else if u < self.update_fraction / 2.0 {
            OpKind::Insert
        } else {
            OpKind::Remove
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_only_mix_never_updates() {
        let mix = OpMix::updates(0);
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            assert_eq!(mix.next_op(&mut rng), OpKind::Contains);
        }
    }

    #[test]
    fn write_only_mix_never_reads() {
        let mix = OpMix::updates(100);
        let mut rng = SplitMix64::new(2);
        for _ in 0..1000 {
            assert_ne!(mix.next_op(&mut rng), OpKind::Contains);
        }
    }

    #[test]
    fn ratios_are_roughly_respected() {
        let mix = OpMix::updates(20);
        let mut rng = SplitMix64::new(3);
        let (mut c, mut i, mut r) = (0u32, 0u32, 0u32);
        for _ in 0..10_000 {
            match mix.next_op(&mut rng) {
                OpKind::Contains => c += 1,
                OpKind::Insert => i += 1,
                OpKind::Remove => r += 1,
            }
        }
        assert!((7500..8500).contains(&c), "contains {c}");
        assert!((700..1300).contains(&i), "insert {i}");
        assert!((700..1300).contains(&r), "remove {r}");
    }

    #[test]
    #[should_panic]
    fn over_100_percent_rejected() {
        OpMix::updates(101);
    }
}
