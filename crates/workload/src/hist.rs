//! Log-bucketed latency histogram: constant-size, allocation-free on the
//! record path, mergeable across threads — the standard tool for
//! reporting tail latencies next to throughput.

/// Histogram over `u64` nanosecond samples with 2-sub-bucket log₂
/// resolution (relative error ≤ 50% per bucket, which is plenty for
/// p50/p95/p99 reporting of operations spanning nanoseconds to seconds).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// counts[b] covers [2^(b/2-ish)…): see `bucket_of`.
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

const BUCKETS: usize = 128; // 64 powers of two × 2 sub-buckets

fn bucket_of(v: u64) -> usize {
    if v < 2 {
        return v as usize;
    }
    let log = 63 - v.leading_zeros() as usize;
    // Sub-bucket: is v in the upper half of [2^log, 2^(log+1))?
    let upper = ((v >> (log - 1)) & 1) as usize;
    (2 * log + upper).min(BUCKETS - 1)
}

fn bucket_floor(b: usize) -> u64 {
    if b < 2 {
        return b as u64;
    }
    let log = b / 2;
    let upper = b % 2;
    (1u64 << log) + ((upper as u64) << (log - 1))
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self { counts: vec![0; BUCKETS], total: 0, sum: 0, max: 0 }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean (exact, not bucketed). 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest recorded sample (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]` (bucket lower bound; 0 when
    /// empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(b);
            }
        }
        self.max
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile shorthand.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile shorthand (the tail the scenario matrix
    /// reports).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Fold another histogram into this one (per-thread merge).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn bucket_mapping_is_monotone_and_floors_bound() {
        let mut last = 0;
        for v in [0u64, 1, 2, 3, 4, 6, 8, 100, 1000, 1 << 20, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= last, "bucket index must not decrease (v={v})");
            last = b;
            assert!(bucket_floor(b) <= v, "floor({b}) = {} > {v}", bucket_floor(b));
        }
    }

    #[test]
    fn exact_stats_and_bucketed_quantiles() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        assert_eq!(h.max(), 1000);
        // Bucketed quantiles: within one log2 sub-bucket of the truth.
        let p50 = h.p50();
        assert!((256..=512).contains(&p50), "p50 = {p50}");
        let p99 = h.p99();
        assert!((512..=1000).contains(&p99), "p99 = {p99}");
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
    }

    #[test]
    fn quantile_bounds_are_clamped() {
        let mut h = LatencyHistogram::new();
        h.record(42);
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert!(h.quantile(2.0) <= h.max());
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in [3u64, 17, 900, 12_345] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 64, 2_000_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.p50(), both.p50());
        assert_eq!(a.p99(), both.p99());
        assert!((a.mean() - both.mean()).abs() < 1e-9);
    }

    #[test]
    fn per_thread_merge_equals_single_threaded_recording() {
        // The driver's accounting scheme in miniature: each "thread"
        // records its own histogram, the main thread folds them together;
        // every reported statistic must equal a single-threaded recording
        // of the union of samples.
        let samples: Vec<u64> =
            (0..4000u64).map(|i| (i.wrapping_mul(2654435761) % 1_000_000) + 1).collect();
        let mut reference = LatencyHistogram::new();
        for &v in &samples {
            reference.record(v);
        }
        let mut merged = LatencyHistogram::new();
        for chunk in samples.chunks(1000) {
            // One per-thread histogram per chunk.
            let mut h = LatencyHistogram::new();
            for &v in chunk {
                h.record(v);
            }
            merged.merge(&h);
        }
        assert_eq!(merged.count(), reference.count());
        assert_eq!(merged.max(), reference.max());
        assert!((merged.mean() - reference.mean()).abs() < 1e-9);
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(merged.quantile(q), reference.quantile(q), "quantile {q}");
        }
    }

    #[test]
    fn p999_sits_in_the_tail() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert!(h.p99() <= h.p999());
        assert!(h.p999() <= h.max());
        assert!(h.p999() >= 8192, "p999 = {} must land in the last buckets", h.p999());
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        // The point is that the quantile math itself must not overflow
        // on extreme samples; monotonicity is the observable contract.
        assert!(h.p50() <= h.p99());
    }
}
