//! End-to-end loopback tests: real sockets, pipelined clients, a
//! recovered durable store behind the event loop, and the two
//! batching-semantics regressions the protocol spec promises —
//! coalesced writes are all-or-nothing under commit aborts, and
//! per-connection response order always matches request order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use polytm::Stm;
use polytm_durable::{DurableKv, DurableKvConfig, FaultFs, RealFs, Storage};
use polytm_kv::{KvStore, Value};
use polytm_server::protocol::{ErrorCode, Request, Response, TxnOp, WriteOp};
use polytm_server::{Client, Server, ServerConfig, ServerStore};

/// Temp dir that cleans up after itself.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "polytm-server-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn quick_config() -> ServerConfig {
    ServerConfig { workers: 2, ..ServerConfig::default() }
}

/// The acceptance-criteria path: seed a durable store, crash it
/// (drop), reopen so the server fronts a *recovered* store, then run
/// every opcode through a loopback client and verify effects — both
/// over the wire and in the store after another recovery.
#[test]
fn recovered_durable_store_serves_every_opcode() {
    let dir = TempDir::new("recovered");
    let config = DurableKvConfig::default();

    // Phase 1: seed and "crash" (drop without checkpoint).
    {
        let fs = RealFs::open(&dir.0).unwrap();
        let store = DurableKv::open(Arc::new(fs) as Arc<dyn Storage>, config).unwrap();
        for k in 0..50u64 {
            store.put(k, Value::from_u64(k * 10)).unwrap();
        }
    }

    // Phase 2: recover and serve.
    let fs = RealFs::open(&dir.0).unwrap();
    let store = Arc::new(DurableKv::open(Arc::new(fs) as Arc<dyn Storage>, config).unwrap());
    assert_eq!(store.len(), 50, "recovery must replay the seeded records");
    let handle =
        Server::spawn(Arc::clone(&store) as Arc<dyn ServerStore>, "127.0.0.1:0", quick_config())
            .unwrap();
    let addr = handle.local_addr();

    let mut client = Client::connect(addr).unwrap();
    client.crc = true; // exercise the CRC path over a real socket

    // GET of recovered state.
    assert_eq!(client.get(7).unwrap(), Some(Value::from_u64(70).as_bytes().to_vec()));
    assert_eq!(client.get(999).unwrap(), None);

    // PUT / DELETE.
    assert!(!client.put(100, b"fresh").unwrap());
    assert!(client.put(100, b"fresher").unwrap());
    assert!(client.delete(3).unwrap());
    assert!(!client.delete(3).unwrap());

    // CAS.
    assert!(client.cas(100, Some(b"fresher"), b"swapped").unwrap());
    assert!(!client.cas(100, Some(b"fresher"), b"nope").unwrap());

    // MULTI: atomic batch.
    let resp = client
        .call(&Request::Multi {
            ops: vec![
                WriteOp::Put { key: 200, value: b"a".to_vec() },
                WriteOp::Put { key: 201, value: b"b".to_vec() },
                WriteOp::Delete { key: 0 },
            ],
        })
        .unwrap();
    assert_eq!(resp, Response::Applied { ops: 3 });

    // TXN: mixed body, read-your-writes.
    let resp = client
        .call(&Request::Txn {
            ops: vec![
                TxnOp::Get { key: 200 },
                TxnOp::Put { key: 202, value: b"c".to_vec() },
                TxnOp::Get { key: 202 },
                TxnOp::Delete { key: 201 },
                TxnOp::Get { key: 201 },
            ],
        })
        .unwrap();
    assert_eq!(
        resp,
        Response::TxnResults { gets: vec![Some(b"a".to_vec()), Some(b"c".to_vec()), None] }
    );

    // SCAN: snapshot over the mutated range.
    let (entries, truncated) = client.scan(200, 210, 0).unwrap();
    assert!(!truncated);
    assert_eq!(
        entries,
        vec![(200, b"a".to_vec()), (202, b"c".to_vec())],
        "scan must reflect the committed MULTI/TXN effects in key order"
    );

    // PING for completeness.
    assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);

    drop(client);
    handle.shutdown();
    drop(store);

    // Phase 3: everything acknowledged above must survive another
    // recovery (sync durability end to end, through the socket).
    let fs = RealFs::open(&dir.0).unwrap();
    let reopened = DurableKv::open(Arc::new(fs) as Arc<dyn Storage>, config).unwrap();
    assert_eq!(reopened.get(100).map(|v| v.as_bytes().to_vec()), Some(b"swapped".to_vec()));
    assert_eq!(reopened.get(200).map(|v| v.as_bytes().to_vec()), Some(b"a".to_vec()));
    assert_eq!(reopened.get(201), None);
    assert_eq!(reopened.get(3), None);
}

/// Pipelining: send a long mixed burst without reading, then require
/// every response in exact request order with the matching kind.
#[test]
fn pipelined_responses_match_request_order() {
    let stm = Arc::new(Stm::new());
    let store = Arc::new(KvStore::new(stm));
    let handle =
        Server::spawn(Arc::clone(&store) as Arc<dyn ServerStore>, "127.0.0.1:0", quick_config())
            .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let n = 400u64;
    let mut expected = Vec::new();
    for i in 0..n {
        let req = match i % 5 {
            0 => Request::Put { key: i, value: i.to_le_bytes().to_vec() },
            1 => Request::Get { key: i - 1 },
            2 => Request::Delete { key: i - 2 },
            3 => Request::Multi {
                ops: vec![
                    WriteOp::Put { key: 1000 + i, value: b"m".to_vec() },
                    WriteOp::Put { key: 2000 + i, value: b"m".to_vec() },
                ],
            },
            _ => Request::Ping,
        };
        let seq = client.send(&req).unwrap();
        expected.push((seq, i % 5));
    }
    for (want_seq, kind) in expected {
        let (seq, resp) = client.recv().unwrap();
        assert_eq!(seq, want_seq, "responses must arrive in request order");
        match kind {
            0 => assert!(matches!(resp, Response::Written { .. })),
            // The pipelined GET follows its PUT, so the value must be
            // there: coalescing may merge the commits but never
            // reorders a read before the write it trails.
            1 => assert!(matches!(resp, Response::Value(Some(_)))),
            2 => assert!(matches!(resp, Response::Deleted { .. })),
            3 => assert_eq!(resp, Response::Applied { ops: 2 }),
            _ => assert_eq!(resp, Response::Pong),
        }
    }

    // The burst outran the event loop's read sweeps, so at least some
    // writes must have shared a commit.
    let stats = handle.stats();
    let batches = stats.batches.load(Ordering::Relaxed);
    let batched = stats.batched_ops.load(Ordering::Relaxed);
    assert!(batches > 0, "write traffic must produce coalesced commits");
    assert!(batched >= batches, "each commit carries at least one request");
    handle.shutdown();
}

/// Concurrent pipelined clients over disjoint key ranges, checked
/// against local oracles and a final server-side snapshot scan.
#[test]
fn concurrent_clients_agree_with_oracle() {
    let stm = Arc::new(Stm::new());
    let store = Arc::new(KvStore::new(stm));
    let handle =
        Server::spawn(Arc::clone(&store) as Arc<dyn ServerStore>, "127.0.0.1:0", quick_config())
            .unwrap();
    let addr = handle.local_addr();

    let clients = 4usize;
    let span = 1_000u64;
    let mut threads = Vec::new();
    for t in 0..clients {
        threads.push(std::thread::spawn(move || {
            let base = t as u64 * span;
            let mut client = Client::connect(addr).unwrap();
            let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
            let mut rng = polytm_workload::SplitMix64::for_thread(0xFEED, t);
            let mut outstanding = 0usize;
            for i in 0..600u64 {
                let key = base + rng.next_below(span);
                let r = rng.next_u64();
                match r % 4 {
                    0 | 1 => {
                        let value = format!("c{t}-i{i}").into_bytes();
                        client.send(&Request::Put { key, value: value.clone() }).unwrap();
                        oracle.insert(key, value);
                    }
                    2 => {
                        client.send(&Request::Delete { key }).unwrap();
                        oracle.remove(&key);
                    }
                    _ => {
                        let mut ops = Vec::new();
                        for j in 0..4u64 {
                            let k = base + ((key + j) % span);
                            let value = format!("m{t}-i{i}-j{j}").into_bytes();
                            oracle.insert(k, value.clone());
                            ops.push(WriteOp::Put { key: k, value });
                        }
                        client.send(&Request::Multi { ops }).unwrap();
                    }
                }
                outstanding += 1;
                // Keep a deep pipeline but bounded.
                while outstanding > 64 {
                    client.recv().unwrap();
                    outstanding -= 1;
                }
            }
            while outstanding > 0 {
                client.recv().unwrap();
                outstanding -= 1;
            }
            // Verify: every oracle key reads back exactly; a snapshot
            // scan of the whole range agrees on membership.
            for (&key, value) in &oracle {
                assert_eq!(client.get(key).unwrap().as_deref(), Some(value.as_slice()));
            }
            let (entries, truncated) = client.scan(base, base + span, 0).unwrap();
            assert!(!truncated);
            let got: BTreeMap<u64, Vec<u8>> = entries.into_iter().collect();
            assert_eq!(got, oracle, "server snapshot must equal the oracle");
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    handle.shutdown();
}

/// The batching-atomicity regression: a writer streams pipelined MULTI
/// batches that keep an invariant (all eight keys carry the same tag),
/// while a direct-store contender commits conflicting writes to the
/// same keys to inject commit aborts. Snapshot readers must never
/// observe a mixed state, and the run must actually provoke aborts.
#[test]
fn coalesced_multi_is_all_or_nothing_under_commit_aborts() {
    let stm = Arc::new(Stm::new());
    let store = Arc::new(KvStore::new(Arc::clone(&stm)));
    // Small batch budget: force multiple coalesced commits rather than
    // one giant run per sweep.
    let config = ServerConfig { workers: 1, batch_max_ops: 4, ..ServerConfig::default() };
    let handle =
        Server::spawn(Arc::clone(&store) as Arc<dyn ServerStore>, "127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr();

    const KEYS: u64 = 8;
    let stop = Arc::new(AtomicBool::new(false));

    // Contender: atomically writes the same key set with its own tag,
    // so every interleaving preserves "all tags equal" but write-write
    // conflicts (and thus aborts/retries) are guaranteed.
    let contender = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut tag = 1_000_000u64;
            while !stop.load(Ordering::Relaxed) {
                let entries: Vec<(u64, Value)> =
                    (0..KEYS).map(|k| (k, Value::from_u64(tag))).collect();
                store.multi_put(&entries);
                tag += 1;
            }
        })
    };

    // Checker: snapshot scans must always see one uniform tag.
    let checker = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let snap = store.scan_range(0, KEYS);
                if snap.is_empty() {
                    continue;
                }
                let tags: Vec<u64> = snap.iter().map(|(_, v)| v.as_u64().unwrap()).collect();
                assert!(
                    tags.windows(2).all(|w| w[0] == w[1]) && snap.len() == KEYS as usize,
                    "torn MULTI batch observed: {tags:?}"
                );
            }
        })
    };

    // Writer: pipelined MULTI batches through the server, each batch
    // tagging all keys identically.
    let mut client = Client::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut tag = 1u64;
    let mut outstanding = 0usize;
    loop {
        let ops: Vec<WriteOp> = (0..KEYS)
            .map(|k| WriteOp::Put { key: k, value: Value::from_u64(tag).as_bytes().to_vec() })
            .collect();
        client.send(&Request::Multi { ops }).unwrap();
        outstanding += 1;
        tag += 1;
        while outstanding > 32 {
            let (_, resp) = client.recv().unwrap();
            assert_eq!(resp, Response::Applied { ops: KEYS as u32 });
            outstanding -= 1;
        }
        // Stop once aborts have demonstrably fired (with a generous
        // floor of rounds so the checker gets real interleavings).
        if tag.is_multiple_of(64)
            && (stm.stats().aborts() > 0 && tag > 512 || Instant::now() > deadline)
        {
            break;
        }
    }
    while outstanding > 0 {
        client.recv().unwrap();
        outstanding -= 1;
    }
    stop.store(true, Ordering::Relaxed);
    contender.join().unwrap();
    checker.join().unwrap();

    assert!(stm.stats().aborts() > 0, "the contender must have injected at least one commit abort");
    let stats = handle.stats();
    assert!(stats.batches.load(Ordering::Relaxed) > 0);
    handle.shutdown();
}

/// The open-loop load generator: completes its schedule, records a
/// sample for every measured op, and sees no errors against a healthy
/// store.
#[test]
fn open_loop_loadgen_completes_schedule() {
    let stm = Arc::new(Stm::new());
    let store = Arc::new(KvStore::new(stm));
    let handle =
        Server::spawn(Arc::clone(&store) as Arc<dyn ServerStore>, "127.0.0.1:0", quick_config())
            .unwrap();
    let spec = polytm_server::LoadSpec {
        conns: 2,
        rate: 4_000.0,
        duration: Duration::from_millis(150),
        warmup: Duration::from_millis(40),
        ..polytm_server::LoadSpec::default()
    };
    let m = polytm_server::run_load(handle.local_addr(), &spec).unwrap();
    assert!(m.ops > 0, "measured window must complete operations");
    assert_eq!(m.hist.count(), m.ops, "one latency sample per measured op");
    assert_eq!(m.errors, 0);
    assert!(m.throughput() > 0.0);
    // Open-loop accounting: quantiles are well-formed (p50 <= p999).
    assert!(m.hist.p50() <= m.hist.p999());
    handle.shutdown();
}

/// Durability-loss degradation over the wire: after the armed fault
/// fires, writes answer `ReadOnly` while reads keep serving.
#[test]
fn read_only_degradation_surfaces_as_error_responses() {
    let fs = Arc::new(FaultFs::with_crash_after(0xBAD5EED, 400));
    let store = Arc::new(
        DurableKv::open(Arc::clone(&fs) as Arc<dyn Storage>, DurableKvConfig::default()).unwrap(),
    );
    let handle =
        Server::spawn(Arc::clone(&store) as Arc<dyn ServerStore>, "127.0.0.1:0", quick_config())
            .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let mut degraded_at = None;
    for k in 0..5_000u64 {
        match client.call(&Request::Put { key: k, value: b"durable?".to_vec() }).unwrap() {
            Response::Written { .. } => {}
            Response::Error(ErrorCode::ReadOnly) => {
                degraded_at = Some(k);
                break;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    let degraded_at = degraded_at.expect("armed fault must fire within the write budget");
    assert!(degraded_at > 0, "some writes must succeed before the fault");

    // Reads still serve from memory; subsequent writes of every write
    // shape keep failing read-only.
    assert!(client.get(0).unwrap().is_some());
    let (entries, _) = client.scan(0, degraded_at, 0).unwrap();
    assert!(!entries.is_empty());
    assert_eq!(
        client.call(&Request::Multi { ops: vec![WriteOp::Delete { key: 0 }] }).unwrap(),
        Response::Error(ErrorCode::ReadOnly)
    );
    assert_eq!(
        client
            .call(&Request::Txn { ops: vec![TxnOp::Put { key: 1, value: b"x".to_vec() }] })
            .unwrap(),
        Response::Error(ErrorCode::ReadOnly)
    );
    assert!(handle.stats().read_only_errors.load(Ordering::Relaxed) >= 3);
    handle.shutdown();
}

/// Backpressure: with a tiny response backlog budget and a client that
/// refuses to read while pipelining large scans, the server must pause
/// reads (stall counter moves) yet deliver every response, in order,
/// once the client drains.
#[test]
fn backpressure_pauses_reads_without_losing_order() {
    let stm = Arc::new(Stm::new());
    let store = Arc::new(KvStore::new(stm));
    for k in 0..1_000u64 {
        store.put(k, Value::from_bytes(&[k as u8; 64]));
    }
    let config = ServerConfig { workers: 1, max_backlog: 1 << 10, ..ServerConfig::default() };
    let handle =
        Server::spawn(Arc::clone(&store) as Arc<dyn ServerStore>, "127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // Each response is ~74 KiB (1000 entries of 64-byte values); 300
    // of them is ~22 MiB — beyond the 1 KiB backlog budget plus
    // anything the kernel's socket buffers can absorb (tcp_wmem max
    // is 4 MiB here).
    let n = 300u32;
    let mut seqs = Vec::new();
    for _ in 0..n {
        seqs.push(client.send(&Request::Scan { lo: 0, hi: 1_000, limit: 0 }).unwrap());
    }
    // Let the server hit the backlog wall before we start draining.
    std::thread::sleep(Duration::from_millis(100));
    for want in seqs {
        let (seq, resp) = client.recv().unwrap();
        assert_eq!(seq, want);
        match resp {
            Response::Entries { entries, truncated } => {
                assert_eq!(entries.len(), 1_000);
                assert!(!truncated);
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert!(
        handle.stats().backpressure_stalls.load(Ordering::Relaxed) > 0,
        "a non-draining client must trip the backlog pause"
    );
    // Duration accounting, not just edges: the 100ms non-draining
    // window above was spent stalled, and the wait must be visible as
    // accumulated time (resumed stalls, plus any still-stalled residue
    // folded in when the connection closed).
    let stats = Arc::clone(handle.stats());
    drop(client);
    handle.shutdown();
    assert!(
        stats.backpressure_stalled_ns.load(Ordering::Relaxed) > 0,
        "stalled time must accumulate while the backlog pause holds"
    );
}

/// The `STATS` opcode returns one snapshot of the unified metrics
/// plane in both wire formats, and reflects work pipelined ahead of
/// it on the same connection (it is a barrier).
#[test]
fn stats_opcode_snapshots_the_metrics_plane() {
    let stm = Arc::new(Stm::new());
    let store = Arc::new(KvStore::new(Arc::clone(&stm)));
    let registry = Arc::new(polytm_obs::MetricsRegistry::new());
    registry.register("stm", Arc::new(polytm_obs::StmMetrics::new(stm)));
    let handle = Server::spawn_with_metrics(
        Arc::clone(&store) as Arc<dyn ServerStore>,
        "127.0.0.1:0",
        quick_config(),
        registry,
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    for k in 0..32u64 {
        assert!(!client.put(k, b"v").unwrap());
    }
    let entries = client.stats().unwrap();
    let get = |key: &str| entries.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
    assert!(
        get("stm.commits").unwrap_or(0.0) >= 1.0,
        "the pipelined puts must have committed before the STATS barrier"
    );
    assert!(get("server.requests").unwrap_or(0.0) >= 32.0);
    assert!(get("server.batches").unwrap_or(0.0) >= 1.0);
    assert!(
        entries.windows(2).all(|w| w[0].0 <= w[1].0),
        "binary snapshot entries arrive sorted by key"
    );

    let text = client.stats_text().unwrap();
    assert!(text.lines().any(|l| l.starts_with("server.accepted ")));
    assert!(text.lines().any(|l| l.starts_with("stm.commits ")));
    handle.shutdown();
}

/// A server spawned without a registry still answers `STATS` — with a
/// well-formed empty snapshot, not an error.
#[test]
fn stats_without_a_registry_is_empty_not_an_error() {
    let store = Arc::new(KvStore::new(Arc::new(Stm::new())));
    let handle =
        Server::spawn(Arc::clone(&store) as Arc<dyn ServerStore>, "127.0.0.1:0", quick_config())
            .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    assert!(client.stats().unwrap().is_empty());
    assert!(client.stats_text().unwrap().is_empty());
    handle.shutdown();
}
