//! Codec torture: the frame decoder and payload parsers must survive
//! arbitrary, truncated, and bit-flipped input without panicking, and
//! classify every byte string as exactly one of frame / incomplete /
//! corrupt. Round-trip identity is checked over generated requests and
//! responses, with and without CRC trailers.

use proptest::prelude::*;

use polytm_server::protocol::{
    decode_frame, encode_request, encode_response, parse_request, parse_response, FrameEvent,
    Request, Response, TxnOp, WriteOp,
};

fn value_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..48)
}

/// `Option<Vec<u8>>` strategy (the vendored proptest has no
/// `prop::option` module).
fn opt_value_strategy() -> impl Strategy<Value = Option<Vec<u8>>> {
    (prop::bool::ANY, value_strategy()).prop_map(|(some, v)| some.then_some(v))
}

fn write_op_strategy() -> impl Strategy<Value = WriteOp> {
    (any::<u64>(), value_strategy(), prop::bool::ANY).prop_map(|(key, value, is_put)| {
        if is_put {
            WriteOp::Put { key, value }
        } else {
            WriteOp::Delete { key }
        }
    })
}

fn txn_op_strategy() -> impl Strategy<Value = TxnOp> {
    (any::<u64>(), value_strategy(), 0u8..3).prop_map(|(key, value, kind)| match kind {
        0 => TxnOp::Get { key },
        1 => TxnOp::Put { key, value },
        _ => TxnOp::Delete { key },
    })
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        any::<u64>().prop_map(|key| Request::Get { key }),
        (any::<u64>(), value_strategy()).prop_map(|(key, value)| Request::Put { key, value }),
        any::<u64>().prop_map(|key| Request::Delete { key }),
        ((any::<u64>(), prop::bool::ANY), (value_strategy(), value_strategy())).prop_map(
            |((key, has_expected), (expected, new))| Request::Cas {
                key,
                expected: has_expected.then_some(expected),
                new,
            }
        ),
        (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(|(lo, hi, limit)| Request::Scan {
            lo,
            hi,
            limit
        }),
        prop::collection::vec(write_op_strategy(), 0..6).prop_map(|ops| Request::Multi { ops }),
        prop::collection::vec(txn_op_strategy(), 0..6).prop_map(|ops| Request::Txn { ops }),
        prop::bool::ANY.prop_map(|text| Request::Stats { text }),
    ]
}

fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(256)))]

    /// Arbitrary byte soup decodes to exactly one outcome, never a
    /// panic, and an `Incomplete` verdict always asks for more than
    /// it was given.
    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        match decode_frame(&bytes) {
            FrameEvent::Incomplete { need } => prop_assert!(need > bytes.len()),
            FrameEvent::Frame { consumed, .. } => prop_assert!(consumed <= bytes.len()),
            FrameEvent::Corrupt(_) => {}
        }
    }

    /// Requests survive an encode/decode/parse round trip bit-exact.
    #[test]
    fn request_round_trip(req in request_strategy(), seq in any::<u32>(), crc in prop::bool::ANY) {
        let wire = encode_request(&req, seq, crc);
        match decode_frame(&wire) {
            FrameEvent::Frame { consumed, opcode, seq: got, payload } => {
                prop_assert_eq!(consumed, wire.len());
                prop_assert_eq!(got, seq);
                prop_assert_eq!(parse_request(opcode, payload), Ok(req));
            }
            other => prop_assert!(false, "expected frame, got {:?}", other),
        }
    }

    /// Every strict prefix of a valid frame is `Incomplete` — a
    /// decoder that misreads a cut-off frame as corrupt would drop
    /// healthy pipelined connections on short reads.
    #[test]
    fn truncation_is_incomplete(req in request_strategy(), crc in prop::bool::ANY) {
        let wire = encode_request(&req, 1, crc);
        for cut in 0..wire.len() {
            prop_assert!(
                matches!(decode_frame(&wire[..cut]), FrameEvent::Incomplete { .. }),
                "prefix of {} bytes must be incomplete", cut
            );
        }
    }

    /// Flipping any single bit of a CRC-protected frame must not
    /// yield the original request back: the decoder either rejects
    /// the frame (corrupt / incomplete / parse error) or the CRC
    /// catches it.
    #[test]
    fn crc_catches_single_bit_flips(
        req in request_strategy(),
        bit in 0usize..64,
    ) {
        let wire = encode_request(&req, 7, true);
        let at = bit % (wire.len() * 8);
        let mut bent = wire.clone();
        bent[at / 8] ^= 1 << (at % 8);
        match decode_frame(&bent) {
            FrameEvent::Frame { opcode, seq, payload, .. } => {
                // The flip landed outside the protected region is
                // impossible: magic, len, and body are all covered
                // (magic/len by their own checks, body by the CRC).
                prop_assert!(
                    seq != 7 || parse_request(opcode, payload) != Ok(req.clone()),
                    "bit flip at {} went unnoticed", at
                );
            }
            FrameEvent::Incomplete { .. } | FrameEvent::Corrupt(_) => {}
        }
    }

    /// Response frames round-trip bit-exact too.
    #[test]
    fn response_round_trip(
        value in opt_value_strategy(),
        entries in prop::collection::vec((any::<u64>(), value_strategy()), 0..6),
        gets in prop::collection::vec(opt_value_strategy(), 0..6),
        stats in value_strategy(),
        seq in any::<u32>(),
        crc in prop::bool::ANY,
    ) {
        use polytm_server::protocol::op;
        let cases: Vec<(u8, Response)> = vec![
            (op::GET, Response::Value(value)),
            (op::SCAN, Response::Entries { entries, truncated: seq % 2 == 0 }),
            (op::TXN, Response::TxnResults { gets }),
            (op::MULTI, Response::Applied { ops: seq }),
            (op::STATS, Response::Stats { payload: stats }),
        ];
        for (req_op, resp) in cases {
            let wire = encode_response(&resp, req_op, seq, crc);
            match decode_frame(&wire) {
                FrameEvent::Frame { opcode, seq: got, payload, .. } => {
                    prop_assert_eq!(got, seq);
                    prop_assert_eq!(parse_response(opcode, payload), Ok(resp));
                }
                other => prop_assert!(false, "expected frame, got {:?}", other),
            }
        }
    }

    /// Payload parsers never panic on arbitrary payload bytes under
    /// any opcode, known or not.
    #[test]
    fn parsers_never_panic(
        opcode in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let _ = parse_request(opcode, &payload);
        let _ = parse_response(opcode, &payload);
    }
}
