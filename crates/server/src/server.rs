//! The non-blocking event loop: acceptor + worker threads, request
//! admission, write coalescing, and per-connection backpressure.
//!
//! ## Shape
//!
//! One acceptor thread polls the listener and deals fresh connections
//! round-robin onto worker inboxes. Each worker owns its connections
//! outright — no cross-thread handoff after accept — and runs a sweep
//! loop: poll readiness, read, decode, execute, flush.
//!
//! ## Batching / admission
//!
//! Everything decodable after one read sweep forms the *batch window*.
//! Within the window, consecutive write requests (`PUT`, `DELETE`,
//! `MULTI`) are admitted into a pending run and committed as **one**
//! STM transaction ([`crate::store::ServerStore::commit_writes`]),
//! bounded by [`ServerConfig::batch_max_ops`] and
//! [`ServerConfig::batch_max_bytes`]. Reads and read-modify ops
//! (`GET`, `SCAN`, `CAS`, `TXN`, `PING`) are barriers: they flush the
//! pending run first, so every response reflects a state consistent
//! with its position in the request order. This mirrors the WAL's
//! group commit one level up: many wire requests, one commit, one
//! (eventual) log force.
//!
//! ## Backpressure
//!
//! A worker stops *reading* a connection whose unflushed response
//! bytes exceed [`ServerConfig::max_backlog`]; reading resumes once
//! the kernel drains the backlog. Combined with the read-buffer cap,
//! per-connection memory is bounded — the argument is written out in
//! `DESIGN.md` §10.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use polytm::trace::{self, TraceEvent};
use polytm_obs::{encode_entries, MetricsRegistry, MetricsSource};

use crate::poll::{Interest, Poller, READ, WRITE};
use crate::protocol::{
    decode_frame, encode_response, parse_request, ErrorCode, FrameEvent, Request, Response,
    MAX_PAYLOAD,
};
use crate::store::{BatchTag, ServerStore, StoreError, WriteReply, WriteRequest};

/// Tunables for [`Server::spawn`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Event-loop worker threads (connections are partitioned across
    /// them at accept time). Defaults to available parallelism.
    pub workers: usize,
    /// Max admitted write requests per coalesced commit.
    pub batch_max_ops: usize,
    /// Byte budget (payload bytes) per coalesced commit.
    pub batch_max_bytes: usize,
    /// Unflushed response bytes above which a connection stops being
    /// read (backpressure).
    pub max_backlog: usize,
    /// Server-side cap on entries returned by one `SCAN`.
    pub scan_cap: u32,
    /// Attach CRC-32 trailers to response frames.
    pub crc: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            batch_max_ops: 64,
            batch_max_bytes: 256 << 10,
            max_backlog: 256 << 10,
            scan_cap: 4096,
            crc: false,
        }
    }
}

/// Monotonic event-loop counters; all relaxed (they are telemetry,
/// not synchronisation). `docs/RUNBOOK.md` documents how to read them.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Connections closed (any reason).
    pub closed: AtomicU64,
    /// Well-formed requests decoded.
    pub requests: AtomicU64,
    /// Responses encoded (== requests on a healthy stream).
    pub responses: AtomicU64,
    /// Coalesced write commits.
    pub batches: AtomicU64,
    /// Write requests carried by those commits (`batched_ops /
    /// batches` = mean coalescing factor, the scenarios table's
    /// `batch_ops_per_commit` column).
    pub batched_ops: AtomicU64,
    /// Bytes read off sockets.
    pub bytes_in: AtomicU64,
    /// Bytes flushed to sockets.
    pub bytes_out: AtomicU64,
    /// Transitions into the "backlog full, reads paused" state.
    pub backpressure_stalls: AtomicU64,
    /// Total nanoseconds connections spent in that state (stall entry
    /// to read-resume, accumulated at resume or close). With the edge
    /// count above this turns "it stalled" into "it stalled for 40 ms
    /// of the run" — the `wait_net_ns` column of the scenarios table.
    pub backpressure_stalled_ns: AtomicU64,
    /// Connections dropped for framing corruption.
    pub corrupt_conns: AtomicU64,
    /// Error responses due to the store latching read-only.
    pub read_only_errors: AtomicU64,
}

impl ServerStats {
    /// Mean admitted write requests per coalesced commit so far.
    pub fn batch_ops_per_commit(&self) -> f64 {
        let batches = self.batches.load(Ordering::Relaxed);
        if batches == 0 {
            0.0
        } else {
            self.batched_ops.load(Ordering::Relaxed) as f64 / batches as f64
        }
    }
}

/// Register the event-loop counters under a prefix (conventionally
/// `server`) in the unified metrics plane. Key names mirror the field
/// names; `batch_ops_per_commit` is the derived coalescing factor.
impl MetricsSource for ServerStats {
    fn collect(&self, out: &mut Vec<(String, f64)>) {
        let mut push = |key: &str, v: u64| out.push((key.to_string(), v as f64));
        push("accepted", self.accepted.load(Ordering::Relaxed));
        push("closed", self.closed.load(Ordering::Relaxed));
        push("requests", self.requests.load(Ordering::Relaxed));
        push("responses", self.responses.load(Ordering::Relaxed));
        push("batches", self.batches.load(Ordering::Relaxed));
        push("batched_ops", self.batched_ops.load(Ordering::Relaxed));
        push("bytes_in", self.bytes_in.load(Ordering::Relaxed));
        push("bytes_out", self.bytes_out.load(Ordering::Relaxed));
        push("backpressure_stalls", self.backpressure_stalls.load(Ordering::Relaxed));
        push("backpressure_stalled_ns", self.backpressure_stalled_ns.load(Ordering::Relaxed));
        push("corrupt_conns", self.corrupt_conns.load(Ordering::Relaxed));
        push("read_only_errors", self.read_only_errors.load(Ordering::Relaxed));
        out.push(("batch_ops_per_commit".to_string(), self.batch_ops_per_commit()));
    }
}

/// A running server; dropping (or calling [`ServerHandle::shutdown`])
/// stops the acceptor and workers and closes every connection.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared counters.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// Stop accepting, drain the event loops, and join all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Namespace for spawning the front end.
pub struct Server;

impl Server {
    /// Bind `addr` and spawn the acceptor + worker threads serving
    /// `store`. Returns immediately; the handle owns the threads.
    pub fn spawn(
        store: Arc<dyn ServerStore>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        Self::spawn_inner(store, addr, config, None)
    }

    /// Like [`Server::spawn`], but attach a metrics registry: the
    /// server registers its own counters under the `server` prefix and
    /// answers `STATS` requests with snapshots of the whole registry
    /// (whatever else the embedder registered — STM, WAL, advisor,
    /// tracer, sampler rates).
    pub fn spawn_with_metrics(
        store: Arc<dyn ServerStore>,
        addr: &str,
        config: ServerConfig,
        registry: Arc<MetricsRegistry>,
    ) -> std::io::Result<ServerHandle> {
        Self::spawn_inner(store, addr, config, Some(registry))
    }

    fn spawn_inner(
        store: Arc<dyn ServerStore>,
        addr: &str,
        config: ServerConfig,
        registry: Option<Arc<MetricsRegistry>>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        if let Some(reg) = &registry {
            reg.register("server", Arc::clone(&stats) as Arc<dyn MetricsSource>);
        }
        let workers = config.workers.max(1);

        let inboxes: Vec<Arc<Mutex<Vec<TcpStream>>>> =
            (0..workers).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();

        let mut threads = Vec::with_capacity(workers + 1);
        for (i, inbox) in inboxes.iter().enumerate() {
            let inbox = Arc::clone(inbox);
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let registry = registry.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("polytm-server-w{i}"))
                    .spawn(move || worker_loop(inbox, store, config, stop, stats, registry))?,
            );
        }
        {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            threads.push(
                std::thread::Builder::new()
                    .name("polytm-server-accept".into())
                    .spawn(move || accept_loop(listener, inboxes, stop, stats))?,
            );
        }
        Ok(ServerHandle { addr: local, stop, stats, threads })
    }
}

fn accept_loop(
    listener: TcpListener,
    inboxes: Vec<Arc<Mutex<Vec<TcpStream>>>>,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
) {
    let poller = Poller::new();
    let mut next = 0usize;
    while !stop.load(Ordering::Acquire) {
        poller.wait(
            &[Interest { fd: listener.as_raw_fd(), events: READ }],
            Duration::from_millis(25),
        );
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    stats.accepted.fetch_add(1, Ordering::Relaxed);
                    inboxes[next % inboxes.len()].lock().unwrap().push(stream);
                    next += 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        poller.idle_backoff();
    }
}

/// Process-wide connection sequence; gives every accepted connection a
/// stable identity for trace attribution (fds get reused, these don't).
static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(1);

/// Per-connection state owned by exactly one worker.
struct Conn {
    /// Stable identity for `SERVER_BATCH` trace events.
    id: u64,
    stream: TcpStream,
    /// Received, not-yet-decoded bytes.
    in_buf: Vec<u8>,
    /// Encoded, not-yet-flushed response bytes (`out_pos` is the
    /// flushed prefix).
    out_buf: Vec<u8>,
    out_pos: usize,
    /// Peer finished sending (half-close): drain and hang up.
    read_eof: bool,
    /// Fatal condition (corrupt stream / I/O error): drop after the
    /// current flush attempt.
    dead: bool,
    /// When backpressure started excluding this connection from reads
    /// (`Some` while stalled). Duration accumulates into
    /// [`ServerStats::backpressure_stalled_ns`] at resume or close.
    stall_start: Option<std::time::Instant>,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            id: NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed),
            stream,
            in_buf: Vec::new(),
            out_buf: Vec::new(),
            out_pos: 0,
            read_eof: false,
            dead: false,
            stall_start: None,
        }
    }

    fn backlog(&self) -> usize {
        self.out_buf.len() - self.out_pos
    }

    fn finished(&self) -> bool {
        self.dead || (self.read_eof && self.backlog() == 0 && self.in_buf.is_empty())
    }
}

/// Bytes read per connection per sweep; bounds the batch window.
const READ_CHUNK: usize = 64 << 10;

fn worker_loop(
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    store: Arc<dyn ServerStore>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    registry: Option<Arc<MetricsRegistry>>,
) {
    let poller = Poller::new();
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];

    while !stop.load(Ordering::Acquire) {
        conns.extend(inbox.lock().unwrap().drain(..).map(Conn::new));

        let interests: Vec<Interest> = conns
            .iter_mut()
            .map(|c| {
                let mut events = 0u8;
                let over = c.backlog() >= config.max_backlog;
                if over && c.stall_start.is_none() {
                    stats.backpressure_stalls.fetch_add(1, Ordering::Relaxed);
                    c.stall_start = Some(std::time::Instant::now());
                } else if !over {
                    if let Some(t0) = c.stall_start.take() {
                        let stalled_ns = t0.elapsed().as_nanos() as u64;
                        stats.backpressure_stalled_ns.fetch_add(stalled_ns, Ordering::Relaxed);
                        trace::emit(|| {
                            TraceEvent::new(
                                trace::code::NET_STALL,
                                0,
                                trace::NO_CLASS,
                                0,
                                c.id,
                                stalled_ns,
                            )
                        });
                    }
                }
                if !c.read_eof && !c.dead && !over {
                    events |= READ;
                }
                if c.backlog() > 0 {
                    events |= WRITE;
                }
                Interest { fd: c.stream.as_raw_fd(), events }
            })
            .collect();

        let ready = poller.wait(&interests, Duration::from_millis(25));
        let mut progressed = false;

        for (conn, ready) in conns.iter_mut().zip(ready) {
            if ready & READ != 0 && !conn.read_eof && !conn.dead {
                progressed |= fill(conn, &mut scratch, &stats);
                process(conn, store.as_ref(), &config, &stats, registry.as_deref());
                if conn.read_eof && !conn.in_buf.is_empty() {
                    // Half-closed with a partial frame: those bytes can
                    // never complete, so drop them and let the
                    // connection finish once its backlog drains.
                    conn.in_buf.clear();
                }
            }
            if conn.backlog() > 0 {
                // Optimistic flush: fresh responses should not wait a
                // poll round; a full kernel buffer just says
                // `WouldBlock` and the WRITE interest wakes us later.
                progressed |= flush(conn, &stats);
            }
        }

        // A connection that dies while stalled still owes its stall
        // time to the counter.
        for c in conns.iter_mut().filter(|c| c.finished()) {
            if let Some(t0) = c.stall_start.take() {
                let stalled_ns = t0.elapsed().as_nanos() as u64;
                stats.backpressure_stalled_ns.fetch_add(stalled_ns, Ordering::Relaxed);
            }
        }
        let before = conns.len();
        conns.retain(|c| !c.finished());
        stats.closed.fetch_add((before - conns.len()) as u64, Ordering::Relaxed);

        if !progressed {
            poller.idle_backoff();
        }
    }
    stats.closed.fetch_add(conns.len() as u64, Ordering::Relaxed);
}

/// Read until `WouldBlock`, EOF, or the sweep cap; returns whether any
/// bytes arrived.
fn fill(conn: &mut Conn, scratch: &mut [u8], stats: &ServerStats) -> bool {
    let mut total = 0usize;
    while total < READ_CHUNK {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.read_eof = true;
                break;
            }
            Ok(n) => {
                conn.in_buf.extend_from_slice(&scratch[..n]);
                total += n;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    stats.bytes_in.fetch_add(total as u64, Ordering::Relaxed);
    total > 0
}

/// Decode and execute everything in `conn.in_buf` — one batch window.
fn process(
    conn: &mut Conn,
    store: &dyn ServerStore,
    config: &ServerConfig,
    stats: &ServerStats,
    registry: Option<&MetricsRegistry>,
) {
    // One stamp per batch window: request spans measure from here
    // (the flight recorder's `total_ns` origin).
    let sweep_start = std::time::Instant::now();
    // The pending coalesced run: admitted write requests plus the
    // wire identity needed to answer each one.
    let mut run: Vec<(u8, u32, WriteRequest)> = Vec::new();
    let mut run_bytes = 0usize;
    let mut cursor = 0usize;

    loop {
        let event = decode_frame(&conn.in_buf[cursor..]);
        match event {
            FrameEvent::Incomplete { .. } => break,
            FrameEvent::Corrupt(_) => {
                stats.corrupt_conns.fetch_add(1, Ordering::Relaxed);
                conn.dead = true;
                break;
            }
            FrameEvent::Frame { consumed, opcode, seq, payload } => {
                stats.requests.fetch_add(1, Ordering::Relaxed);
                let parsed = parse_request(opcode, payload);
                let payload_len = payload.len();
                // The request span opens here: everything the request
                // waits on from now until its `REQ_DONE` lands on this
                // worker's ring, in program order, between the two.
                trace::emit(|| {
                    TraceEvent::new(
                        trace::code::REQ_RECV,
                        opcode,
                        trace::NO_CLASS,
                        seq,
                        conn.id,
                        payload_len as u64,
                    )
                });
                cursor += consumed;
                match parsed {
                    Err(code) => {
                        commit_run(
                            conn,
                            store,
                            &mut run,
                            &mut run_bytes,
                            config,
                            stats,
                            sweep_start,
                        );
                        respond(conn, opcode, seq, &Response::Error(code), config, stats);
                    }
                    Ok(req) => match admit(req) {
                        Admitted::Write(w) => {
                            run.push((opcode, seq, w));
                            run_bytes += payload_len;
                            trace::emit(|| {
                                TraceEvent::new(
                                    trace::code::BATCH_ENQUEUE,
                                    opcode,
                                    trace::NO_CLASS,
                                    seq,
                                    conn.id,
                                    run.len() as u64,
                                )
                            });
                            if run.len() >= config.batch_max_ops
                                || run_bytes >= config.batch_max_bytes
                            {
                                commit_run(
                                    conn,
                                    store,
                                    &mut run,
                                    &mut run_bytes,
                                    config,
                                    stats,
                                    sweep_start,
                                );
                            }
                        }
                        Admitted::Barrier(req) => {
                            commit_run(
                                conn,
                                store,
                                &mut run,
                                &mut run_bytes,
                                config,
                                stats,
                                sweep_start,
                            );
                            let resp = execute_barrier(store, &req, config, stats, registry);
                            respond(conn, opcode, seq, &resp, config, stats);
                        }
                    },
                }
            }
        }
    }
    // End of the batch window: whatever is still pending commits now.
    commit_run(conn, store, &mut run, &mut run_bytes, config, stats, sweep_start);
    conn.in_buf.drain(..cursor);
}

enum Admitted {
    Write(WriteRequest),
    Barrier(Request),
}

/// Admission: writes coalesce, everything else is a barrier.
fn admit(req: Request) -> Admitted {
    match req {
        Request::Put { key, value } => Admitted::Write(WriteRequest::Put { key, value }),
        Request::Delete { key } => Admitted::Write(WriteRequest::Delete { key }),
        Request::Multi { ops } => Admitted::Write(WriteRequest::Multi { ops }),
        other => Admitted::Barrier(other),
    }
}

/// Commit the pending run as one transaction and answer each request.
fn commit_run(
    conn: &mut Conn,
    store: &dyn ServerStore,
    run: &mut Vec<(u8, u32, WriteRequest)>,
    run_bytes: &mut usize,
    config: &ServerConfig,
    stats: &ServerStats,
    sweep_start: std::time::Instant,
) {
    if run.is_empty() {
        return;
    }
    let batch_bytes = *run_bytes as u64;
    *run_bytes = 0;
    let tag = BatchTag {
        conn: conn.id,
        first_seq: run.first().map_or(0, |(_, seq, _)| *seq),
        last_seq: run.last().map_or(0, |(_, seq, _)| *seq),
    };
    let batch: Vec<WriteRequest> = run.iter().map(|(_, _, w)| w.clone()).collect();
    // Time the commit only when a flight recorder is installed: until
    // then this is one atomic load per batch, no clock reads.
    let flight = polytm_obs::flight::get();
    let commit_start = flight.map(|_| std::time::Instant::now());
    match store.commit_writes(&batch, tag) {
        Ok(replies) => {
            let commit_ns = commit_start.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
            stats.batches.fetch_add(1, Ordering::Relaxed);
            stats.batched_ops.fetch_add(run.len() as u64, Ordering::Relaxed);
            let ops = run.len().min(u32::MAX as usize) as u32;
            trace::emit(|| {
                TraceEvent::new(
                    trace::code::SERVER_BATCH,
                    0,
                    trace::NO_CLASS,
                    ops,
                    conn.id,
                    batch_bytes,
                )
            });
            for ((opcode, seq, _), reply) in run.drain(..).zip(replies) {
                let resp = match reply {
                    WriteReply::Written { existed } => Response::Written { existed },
                    WriteReply::Deleted { existed } => Response::Deleted { existed },
                    WriteReply::Applied { ops } => Response::Applied { ops },
                };
                respond(conn, opcode, seq, &resp, config, stats);
            }
            if let Some(recorder) = flight {
                let total_ns = sweep_start.elapsed().as_nanos() as u64;
                if total_ns >= recorder.threshold_ns() {
                    recorder.record(polytm_obs::SlowSpan {
                        conn: conn.id,
                        first_seq: tag.first_seq,
                        last_seq: tag.last_seq,
                        ops,
                        total_ns,
                        commit_ns,
                    });
                }
            }
        }
        Err(StoreError::ReadOnly) => {
            for (opcode, seq, _) in run.drain(..) {
                stats.read_only_errors.fetch_add(1, Ordering::Relaxed);
                respond(conn, opcode, seq, &Response::Error(ErrorCode::ReadOnly), config, stats);
            }
        }
    }
}

/// Execute a non-coalescable request as its own transaction.
fn execute_barrier(
    store: &dyn ServerStore,
    req: &Request,
    config: &ServerConfig,
    stats: &ServerStats,
    registry: Option<&MetricsRegistry>,
) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Get { key } => Response::Value(store.get(*key)),
        Request::Scan { lo, hi, limit } => {
            let cap = config.scan_cap.max(1);
            let effective = if *limit == 0 { cap } else { (*limit).min(cap) };
            let (entries, truncated) = store.scan(*lo, *hi, effective as usize);
            Response::Entries { entries, truncated }
        }
        Request::Cas { key, expected, new } => match store.cas(*key, expected.as_deref(), new) {
            Ok(swapped) => Response::Swapped { swapped },
            Err(StoreError::ReadOnly) => {
                stats.read_only_errors.fetch_add(1, Ordering::Relaxed);
                Response::Error(ErrorCode::ReadOnly)
            }
        },
        Request::Txn { ops } => match store.txn(ops) {
            Ok(gets) => Response::TxnResults { gets },
            Err(StoreError::ReadOnly) => {
                stats.read_only_errors.fetch_add(1, Ordering::Relaxed);
                Response::Error(ErrorCode::ReadOnly)
            }
        },
        Request::Stats { text } => {
            let payload = match registry {
                Some(reg) => {
                    if *text {
                        reg.exposition().into_bytes()
                    } else {
                        encode_entries(&reg.snapshot())
                    }
                }
                // No registry attached: an empty snapshot, still
                // well-formed under either format.
                None => {
                    if *text {
                        Vec::new()
                    } else {
                        encode_entries(&[])
                    }
                }
            };
            Response::Stats { payload }
        }
        // Writes never reach here; `admit` coalesces them.
        Request::Put { .. } | Request::Delete { .. } | Request::Multi { .. } => {
            Response::Error(ErrorCode::BadRequest)
        }
    }
}

/// Encode a response into the connection's output buffer, demoting
/// over-cap payloads to `TooLarge`.
fn respond(
    conn: &mut Conn,
    request_op: u8,
    seq: u32,
    resp: &Response,
    config: &ServerConfig,
    stats: &ServerStats,
) {
    let mut wire = encode_response(resp, request_op, seq, config.crc);
    if wire.len() > MAX_PAYLOAD + 64 {
        wire = encode_response(&Response::Error(ErrorCode::TooLarge), request_op, seq, config.crc);
    }
    stats.responses.fetch_add(1, Ordering::Relaxed);
    conn.out_buf.extend_from_slice(&wire);
    // The request span closes here: the response is encoded and
    // buffered (kernel flush time is the NET_STALL event's business,
    // not the request's).
    trace::emit(|| {
        TraceEvent::new(
            trace::code::REQ_DONE,
            request_op,
            trace::NO_CLASS,
            seq,
            conn.id,
            wire.len() as u64,
        )
    });
}

/// Flush pending response bytes until `WouldBlock`; returns whether
/// any bytes moved.
fn flush(conn: &mut Conn, stats: &ServerStats) -> bool {
    let mut moved = 0usize;
    while conn.out_pos < conn.out_buf.len() {
        match conn.stream.write(&conn.out_buf[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.out_pos += n;
                moved += n;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.out_pos == conn.out_buf.len() {
        conn.out_buf.clear();
        conn.out_pos = 0;
    }
    stats.bytes_out.fetch_add(moved as u64, Ordering::Relaxed);
    moved > 0
}
