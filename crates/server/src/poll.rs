//! A minimal readiness poller over raw `poll(2)`.
//!
//! The workspace is offline (no `mio`, no `libc` crate), so on Linux
//! this module declares the one FFI symbol it needs itself — `poll(2)`
//! is in the C library every Rust binary already links. Elsewhere it
//! degrades to an optimistic poller that reports everything ready and
//! lets the non-blocking sockets return `WouldBlock`, sleeping briefly
//! when a sweep makes no progress (the event loop tells it via
//! [`Poller::idle_backoff`]).

use std::time::Duration;

/// Interest / readiness: readable.
pub const READ: u8 = 0b01;
/// Interest / readiness: writable.
pub const WRITE: u8 = 0b10;

/// One registered descriptor's interest for a single [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Interest {
    /// Raw file descriptor (ignored by the fallback poller).
    pub fd: i32,
    /// Bitmask of [`READ`] / [`WRITE`].
    pub events: u8,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Interest, READ, WRITE};
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Block until a registered descriptor is ready or `timeout`
    /// elapses; returns per-entry readiness masks.
    pub fn wait(interests: &[Interest], timeout: Duration) -> Vec<u8> {
        let mut fds: Vec<PollFd> = interests
            .iter()
            .map(|i| PollFd {
                fd: i.fd,
                events: {
                    let mut e = 0i16;
                    if i.events & READ != 0 {
                        e |= POLLIN;
                    }
                    if i.events & WRITE != 0 {
                        e |= POLLOUT;
                    }
                    e
                },
                revents: 0,
            })
            .collect();
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        // SAFETY: `fds` is a valid, exclusively borrowed array of
        // `nfds` pollfd structs matching the kernel ABI layout, live
        // for the duration of the call.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, ms) };
        if rc <= 0 {
            return vec![0; interests.len()];
        }
        fds.iter()
            .map(|f| {
                let mut r = 0u8;
                if f.revents & (POLLIN | POLLERR | POLLHUP) != 0 {
                    r |= READ;
                }
                if f.revents & (POLLOUT | POLLERR | POLLHUP) != 0 {
                    r |= WRITE;
                }
                r
            })
            .collect()
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::Interest;
    use std::time::Duration;

    /// Portable fallback: claim every registered interest is ready and
    /// let non-blocking I/O sort it out. The event loop backs off via
    /// `idle_backoff` when a sweep does no work, so this spins gently
    /// rather than hot.
    pub fn wait(interests: &[Interest], _timeout: Duration) -> Vec<u8> {
        interests.iter().map(|i| i.events).collect()
    }
}

/// Readiness poller used by acceptor and worker loops.
#[derive(Debug, Default)]
pub struct Poller {
    _private: (),
}

impl Poller {
    /// Create a poller.
    pub fn new() -> Self {
        Poller { _private: () }
    }

    /// Wait for readiness on `interests`, up to `timeout`. The result
    /// has one bitmask per entry, in order. Entries with an empty
    /// interest mask always come back not-ready.
    pub fn wait(&self, interests: &[Interest], timeout: Duration) -> Vec<u8> {
        if interests.iter().all(|i| i.events == 0) {
            // Nothing to watch: plain sleep keeps the contract that
            // `wait` blocks up to `timeout`.
            std::thread::sleep(timeout.min(Duration::from_millis(50)));
            return vec![0; interests.len()];
        }
        sys::wait(interests, timeout)
    }

    /// Sleep briefly after a sweep that made no progress. A no-op on
    /// Linux (readiness is real there); on the fallback poller this is
    /// what keeps the optimistic loop from spinning.
    pub fn idle_backoff(&self) {
        #[cfg(not(target_os = "linux"))]
        std::thread::sleep(Duration::from_micros(500));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new();

        let quiet = poller.wait(
            &[Interest { fd: listener.as_raw_fd(), events: READ }],
            Duration::from_millis(10),
        );
        #[cfg(target_os = "linux")]
        assert_eq!(quiet[0] & READ, 0, "no pending connection yet");
        let _ = quiet;

        let _client = TcpStream::connect(addr).unwrap();
        let ready = poller.wait(
            &[Interest { fd: listener.as_raw_fd(), events: READ }],
            Duration::from_millis(2000),
        );
        assert_ne!(ready[0] & READ, 0, "pending connection must report readable");
    }

    #[test]
    fn stream_reports_writable_and_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut served, _) = listener.accept().unwrap();

        let poller = Poller::new();
        let ready = poller.wait(
            &[Interest { fd: client.as_raw_fd(), events: READ | WRITE }],
            Duration::from_millis(2000),
        );
        assert_ne!(ready[0] & WRITE, 0, "fresh socket should be writable");

        served.write_all(b"ping").unwrap();
        let ready = poller.wait(
            &[Interest { fd: client.as_raw_fd(), events: READ }],
            Duration::from_millis(2000),
        );
        assert_ne!(ready[0] & READ, 0, "bytes in flight should report readable");
    }
}
