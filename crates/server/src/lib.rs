//! # polytm-server — the network front end
//!
//! A pipelined TCP server for the polymorphic KV store, hand-rolled on
//! `std::net` (the workspace is offline: no `mio`, no `tokio`). It
//! speaks the length-prefixed binary `PTM1` protocol specified in
//! `docs/PROTOCOL.md` and serves either the in-memory
//! [`polytm_kv::KvStore`] or the write-ahead-logged
//! [`polytm_durable::DurableKv`] through the [`ServerStore`] trait.
//!
//! The layer that earns its keep is **write coalescing**: pipelined
//! `PUT`/`DELETE`/`MULTI` requests decoded from one read sweep are
//! admitted into a single STM commit — the WAL's group-commit shape
//! repeated one level up — with per-connection backpressure so
//! response buffering stays bounded. `DESIGN.md` §10 carries the
//! correctness argument; `docs/RUNBOOK.md` tells an operator how to
//! run it.
//!
//! ```no_run
//! use polytm_server::{Client, Server, ServerConfig};
//! use polytm_kv::KvStore;
//! use polytm::Stm;
//! use std::sync::Arc;
//!
//! let store = Arc::new(KvStore::new(Arc::new(Stm::new())));
//! let handle = Server::spawn(store, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! client.put(7, b"hello").unwrap();
//! assert_eq!(client.get(7).unwrap().as_deref(), Some(&b"hello"[..]));
//! handle.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod loadgen;
pub mod poll;
pub mod protocol;
pub mod server;
pub mod store;

pub use client::{Client, ClientError};
pub use loadgen::{run_load, LoadMeasurement, LoadSpec};
pub use protocol::{ErrorCode, Request, Response, TxnOp, WriteOp};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};
pub use store::{BatchTag, ServerStore, StoreError, WriteReply, WriteRequest};
