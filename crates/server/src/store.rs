//! [`ServerStore`]: the narrow storage interface the event loop
//! drives, implemented for both the in-memory [`KvStore`] and the
//! write-ahead-logged [`DurableKv`].
//!
//! The one interesting method is [`ServerStore::commit_writes`]: it
//! takes a *run* of admitted write requests — each itself a `PUT`,
//! `DELETE`, or `MULTI` — and commits them in **one** transaction,
//! returning one reply per request. That is the coalescing contract
//! `docs/PROTOCOL.md` §6 promises: per-request replies are computed
//! inside the same atomic commit, so a reply's `existed` bit reflects
//! the state the batch actually observed.

use polytm_durable::{DurabilityLost, DurableKv};
use polytm_kv::{KvStore, Value};

use crate::protocol::{TxnOp, WriteOp};

/// Storage-level failure surfaced to the wire as an error response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The durable store has latched read-only: the commit was not
    /// acknowledged durable (it may still be visible in memory — see
    /// `docs/RUNBOOK.md` on degraded mode).
    ReadOnly,
}

/// Wire identity of a coalesced batch, threaded from the event loop
/// into [`ServerStore::commit_writes`] so the commit can stamp its
/// `BATCH_COMMIT` trace event with the connection and request range it
/// answers. `Copy` and two words wide — threading it through the store
/// costs nothing on the hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchTag {
    /// Connection the batch belongs to (`0` = untagged embedder call).
    pub conn: u64,
    /// First wire sequence number admitted into the batch.
    pub first_seq: u32,
    /// Last wire sequence number admitted into the batch.
    pub last_seq: u32,
}

impl BatchTag {
    /// Tag for calls that did not come off a connection (prefills,
    /// embedder batches, tests). The waterfall joiner ignores
    /// connection `0`.
    pub const UNTAGGED: BatchTag = BatchTag { conn: 0, first_seq: 0, last_seq: 0 };
}

/// One `BATCH_COMMIT` event per successful coalesced commit. Emitted
/// from inside the store — *after* the transaction's `WAIT_*` and WAL
/// wait events, on the same thread's ring — which is exactly the order
/// the waterfall joiner relies on to attribute those waits to this
/// batch's requests.
fn emit_batch_commit(tag: BatchTag, ops: usize) {
    polytm::trace::emit(|| {
        polytm::TraceEvent::new(
            polytm::trace::code::BATCH_COMMIT,
            0,
            polytm::trace::NO_CLASS,
            ops.min(u32::MAX as usize) as u32,
            tag.conn,
            polytm::trace::pack_seq_range(tag.first_seq, tag.last_seq),
        )
    });
}

/// One admitted write request inside a coalesced batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WriteRequest {
    /// A single `PUT`.
    Put {
        /// Target key.
        key: u64,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// A single `DELETE`.
    Delete {
        /// Target key.
        key: u64,
    },
    /// A whole `MULTI` body (already atomic on its own; coalescing
    /// nests it into the shared commit).
    Multi {
        /// The batch's writes, in order.
        ops: Vec<WriteOp>,
    },
}

/// Per-request outcome of a coalesced commit, in request order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteReply {
    /// Outcome of a `PUT`.
    Written {
        /// Whether the key existed before this batch reached it.
        existed: bool,
    },
    /// Outcome of a `DELETE`.
    Deleted {
        /// Whether a value was removed.
        existed: bool,
    },
    /// Outcome of a `MULTI`.
    Applied {
        /// Number of ops in the committed batch.
        ops: u32,
    },
}

/// The storage surface the server loop needs. Object-safe so the
/// event loop can hold `Arc<dyn ServerStore>`.
pub trait ServerStore: Send + Sync {
    /// Point read (runs as its own elastic/snapshot transaction).
    fn get(&self, key: u64) -> Option<Vec<u8>>;
    /// Snapshot scan of the half-open range `[lo, hi)`, truncated to
    /// `limit` entries. Returns the entries and whether truncation
    /// occurred.
    fn scan(&self, lo: u64, hi: u64, limit: usize) -> (Vec<(u64, Vec<u8>)>, bool);
    /// Compare-and-swap in one atomic commit.
    fn cas(&self, key: u64, expected: Option<&[u8]>, new: &[u8]) -> Result<bool, StoreError>;
    /// Commit a run of admitted writes as **one** transaction,
    /// producing one reply per request, in order. `tag` carries the
    /// batch's wire identity for trace attribution; callers off the
    /// wire pass [`BatchTag::UNTAGGED`].
    fn commit_writes(
        &self,
        batch: &[WriteRequest],
        tag: BatchTag,
    ) -> Result<Vec<WriteReply>, StoreError>;
    /// Run a mixed read/write body in one atomic commit; returns the
    /// body's `Get` results in body order.
    fn txn(&self, ops: &[TxnOp]) -> Result<Vec<Option<Vec<u8>>>, StoreError>;
    /// Whether the store has latched read-only (always `false` for a
    /// purely in-memory store).
    fn is_read_only(&self) -> bool {
        false
    }
}

fn to_bytes(v: Value) -> Vec<u8> {
    v.as_bytes().to_vec()
}

fn truncate_scan(mut entries: Vec<(u64, Value)>, limit: usize) -> (Vec<(u64, Vec<u8>)>, bool) {
    let truncated = entries.len() > limit;
    entries.truncate(limit);
    (entries.into_iter().map(|(k, v)| (k, to_bytes(v))).collect(), truncated)
}

impl ServerStore for KvStore {
    fn get(&self, key: u64) -> Option<Vec<u8>> {
        KvStore::get(self, key).map(to_bytes)
    }

    fn scan(&self, lo: u64, hi: u64, limit: usize) -> (Vec<(u64, Vec<u8>)>, bool) {
        truncate_scan(self.scan_range(lo, hi), limit)
    }

    fn cas(&self, key: u64, expected: Option<&[u8]>, new: &[u8]) -> Result<bool, StoreError> {
        let expected = expected.map(Value::from_bytes);
        Ok(KvStore::cas(self, key, expected.as_ref(), Value::from_bytes(new)))
    }

    fn commit_writes(
        &self,
        batch: &[WriteRequest],
        tag: BatchTag,
    ) -> Result<Vec<WriteReply>, StoreError> {
        // The closure may retry on STM aborts: replies are rebuilt
        // from scratch each attempt so a partial attempt leaves no
        // trace (the all-or-nothing regression test leans on this).
        let replies = self.txn(|kv| {
            let mut replies = Vec::with_capacity(batch.len());
            for req in batch {
                match req {
                    WriteRequest::Put { key, value } => {
                        let prev = kv.put(*key, Value::from_bytes(value))?;
                        replies.push(WriteReply::Written { existed: prev.is_some() });
                    }
                    WriteRequest::Delete { key } => {
                        let prev = kv.delete(*key)?;
                        replies.push(WriteReply::Deleted { existed: prev.is_some() });
                    }
                    WriteRequest::Multi { ops } => {
                        for op in ops {
                            match op {
                                WriteOp::Put { key, value } => {
                                    kv.put(*key, Value::from_bytes(value))?;
                                }
                                WriteOp::Delete { key } => {
                                    kv.delete(*key)?;
                                }
                            }
                        }
                        replies.push(WriteReply::Applied { ops: ops.len() as u32 });
                    }
                }
            }
            Ok(replies)
        });
        emit_batch_commit(tag, batch.len());
        Ok(replies)
    }

    fn txn(&self, ops: &[TxnOp]) -> Result<Vec<Option<Vec<u8>>>, StoreError> {
        Ok(KvStore::txn(self, |kv| {
            let mut gets = Vec::new();
            for op in ops {
                match op {
                    TxnOp::Get { key } => gets.push(kv.get(*key)?.map(to_bytes)),
                    TxnOp::Put { key, value } => {
                        kv.put(*key, Value::from_bytes(value))?;
                    }
                    TxnOp::Delete { key } => {
                        kv.delete(*key)?;
                    }
                }
            }
            Ok(gets)
        }))
    }
}

impl ServerStore for DurableKv {
    fn get(&self, key: u64) -> Option<Vec<u8>> {
        DurableKv::get(self, key).map(to_bytes)
    }

    fn scan(&self, lo: u64, hi: u64, limit: usize) -> (Vec<(u64, Vec<u8>)>, bool) {
        truncate_scan(self.scan_range(lo, hi), limit)
    }

    fn cas(&self, key: u64, expected: Option<&[u8]>, new: &[u8]) -> Result<bool, StoreError> {
        DurableKv::txn(self, |tx| {
            let current = tx.get(key)?;
            let matches = match (&current, expected) {
                (None, None) => true,
                (Some(cur), Some(exp)) => cur.as_bytes() == exp,
                _ => false,
            };
            if matches {
                tx.put(key, Value::from_bytes(new))?;
            }
            Ok(matches)
        })
        .map_err(|DurabilityLost| StoreError::ReadOnly)
    }

    fn commit_writes(
        &self,
        batch: &[WriteRequest],
        tag: BatchTag,
    ) -> Result<Vec<WriteReply>, StoreError> {
        let replies = DurableKv::txn(self, |tx| {
            let mut replies = Vec::with_capacity(batch.len());
            for req in batch {
                match req {
                    WriteRequest::Put { key, value } => {
                        let prev = tx.put(*key, Value::from_bytes(value))?;
                        replies.push(WriteReply::Written { existed: prev.is_some() });
                    }
                    WriteRequest::Delete { key } => {
                        let prev = tx.delete(*key)?;
                        replies.push(WriteReply::Deleted { existed: prev.is_some() });
                    }
                    WriteRequest::Multi { ops } => {
                        for op in ops {
                            match op {
                                WriteOp::Put { key, value } => {
                                    tx.put(*key, Value::from_bytes(value))?;
                                }
                                WriteOp::Delete { key } => {
                                    tx.delete(*key)?;
                                }
                            }
                        }
                        replies.push(WriteReply::Applied { ops: ops.len() as u32 });
                    }
                }
            }
            Ok(replies)
        })
        .map_err(|DurabilityLost| StoreError::ReadOnly)?;
        // Only after the durability wait: a batch the WAL never acked
        // has no commit point to attribute waits to.
        emit_batch_commit(tag, batch.len());
        Ok(replies)
    }

    fn txn(&self, ops: &[TxnOp]) -> Result<Vec<Option<Vec<u8>>>, StoreError> {
        DurableKv::txn(self, |tx| {
            let mut gets = Vec::new();
            for op in ops {
                match op {
                    TxnOp::Get { key } => gets.push(tx.get(*key)?.map(to_bytes)),
                    TxnOp::Put { key, value } => {
                        tx.put(*key, Value::from_bytes(value))?;
                    }
                    TxnOp::Delete { key } => {
                        tx.delete(*key)?;
                    }
                }
            }
            Ok(gets)
        })
        .map_err(|DurabilityLost| StoreError::ReadOnly)
    }

    fn is_read_only(&self) -> bool {
        DurableKv::is_read_only(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polytm::Stm;
    use std::sync::Arc;

    fn store() -> KvStore {
        KvStore::new(Arc::new(Stm::new()))
    }

    #[test]
    fn coalesced_batch_reports_per_request_outcomes() {
        let kv = store();
        let batch = vec![
            WriteRequest::Put { key: 1, value: b"a".to_vec() },
            WriteRequest::Put { key: 1, value: b"b".to_vec() },
            WriteRequest::Delete { key: 2 },
            WriteRequest::Multi {
                ops: vec![
                    WriteOp::Put { key: 3, value: b"c".to_vec() },
                    WriteOp::Delete { key: 1 },
                ],
            },
        ];
        let replies = ServerStore::commit_writes(&kv, &batch, BatchTag::UNTAGGED).unwrap();
        assert_eq!(
            replies,
            vec![
                WriteReply::Written { existed: false },
                // The second put sees the first one's write: same commit.
                WriteReply::Written { existed: true },
                WriteReply::Deleted { existed: false },
                WriteReply::Applied { ops: 2 },
            ]
        );
        assert_eq!(ServerStore::get(&kv, 1), None, "multi's delete won");
        assert_eq!(ServerStore::get(&kv, 3), Some(b"c".to_vec()));
    }

    #[test]
    fn txn_gets_observe_earlier_writes_in_body() {
        let kv = store();
        let gets = ServerStore::txn(
            &kv,
            &[
                TxnOp::Get { key: 9 },
                TxnOp::Put { key: 9, value: b"now".to_vec() },
                TxnOp::Get { key: 9 },
            ],
        )
        .unwrap();
        assert_eq!(gets, vec![None, Some(b"now".to_vec())]);
    }

    #[test]
    fn cas_respects_expectation() {
        let kv = store();
        assert!(ServerStore::cas(&kv, 5, None, b"v1").unwrap());
        assert!(!ServerStore::cas(&kv, 5, None, b"v2").unwrap());
        assert!(!ServerStore::cas(&kv, 5, Some(b"wrong"), b"v2").unwrap());
        assert!(ServerStore::cas(&kv, 5, Some(b"v1"), b"v2").unwrap());
        assert_eq!(ServerStore::get(&kv, 5), Some(b"v2".to_vec()));
    }

    #[test]
    fn scan_truncation_flags() {
        let kv = store();
        for k in 0..10u64 {
            kv.put(k, polytm_kv::Value::from_u64(k));
        }
        let (entries, truncated) = ServerStore::scan(&kv, 0, 100, 4);
        assert_eq!(entries.len(), 4);
        assert!(truncated);
        let (entries, truncated) = ServerStore::scan(&kv, 0, 100, 50);
        assert_eq!(entries.len(), 10);
        assert!(!truncated);
    }
}
