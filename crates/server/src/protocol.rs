//! The `PTM1` wire protocol: length-prefixed binary frames carrying KV
//! requests and responses.
//!
//! ## Frame layout
//!
//! ```text
//! [magic u32][len u32][opcode u8][flags u8][seq u32][payload ...][crc u32?]
//! ```
//!
//! All integers little-endian. `magic` is the four ASCII bytes `PTM1`.
//! `len` counts the *body*: everything after the 8-byte header —
//! opcode, flags, seq, payload, and the optional CRC trailer. `flags`
//! bit 0 announces a CRC-32 (IEEE) trailer computed over the body
//! minus the trailer itself (opcode through end of payload). All other
//! flag bits must be zero.
//!
//! Decoding never panics and never allocates more than [`MAX_PAYLOAD`]
//! bytes for a single frame: a `len` above the cap is corruption, not
//! an allocation request — the same rule the WAL's on-disk framing
//! uses. The normative specification lives in `docs/PROTOCOL.md`; this
//! module and that document are kept in lockstep.

use polytm_durable::frame::crc32;

/// Frame magic: the ASCII bytes `PTM1` read as a little-endian u32.
pub const MAGIC: u32 = u32::from_le_bytes(*b"PTM1");
/// Fixed prefix before the body: magic + len.
pub const HEADER: usize = 8;
/// Fixed body prefix: opcode + flags + seq.
pub const BODY_PREFIX: usize = 6;
/// Flag bit 0: body carries a CRC-32 trailer.
pub const FLAG_CRC: u8 = 0x01;
/// Upper bound on a frame's payload. A `len` implying more is treated
/// as corruption.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Request opcodes. Response frames echo the request opcode with the
/// high bit set ([`RESPONSE_BIT`]); error responses use [`OP_ERROR`].
pub mod op {
    /// Liveness probe; empty payload.
    pub const PING: u8 = 0x01;
    /// Point read.
    pub const GET: u8 = 0x02;
    /// Blind write.
    pub const PUT: u8 = 0x03;
    /// Point delete.
    pub const DELETE: u8 = 0x04;
    /// Compare-and-swap.
    pub const CAS: u8 = 0x05;
    /// Snapshot range scan.
    pub const SCAN: u8 = 0x06;
    /// Atomic multi-write batch.
    pub const MULTI: u8 = 0x07;
    /// Atomic mixed read/write transaction.
    pub const TXN: u8 = 0x08;
    /// Unified metrics snapshot (binary entries or text exposition).
    pub const STATS: u8 = 0x09;
}

/// High bit distinguishing responses from requests.
pub const RESPONSE_BIT: u8 = 0x80;
/// Opcode of an error response (any request may fail).
pub const OP_ERROR: u8 = 0xFF;

/// Error codes carried by an [`OP_ERROR`] response payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request payload did not parse under its opcode's grammar.
    BadRequest = 1,
    /// The request opcode is not assigned.
    UnknownOpcode = 2,
    /// The store has latched read-only (durability lost); the write
    /// was **not acknowledged durable**. See `docs/RUNBOOK.md`.
    ReadOnly = 3,
    /// The request or its response would exceed the frame payload cap.
    TooLarge = 4,
}

impl ErrorCode {
    /// Decode a wire byte back into an error code.
    pub fn from_u8(byte: u8) -> Option<Self> {
        match byte {
            1 => Some(Self::BadRequest),
            2 => Some(Self::UnknownOpcode),
            3 => Some(Self::ReadOnly),
            4 => Some(Self::TooLarge),
            _ => None,
        }
    }
}

/// One write inside a [`Request::Multi`] batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WriteOp {
    /// Insert or overwrite `key`.
    Put {
        /// Target key.
        key: u64,
        /// New value bytes.
        value: Vec<u8>,
    },
    /// Remove `key` if present.
    Delete {
        /// Target key.
        key: u64,
    },
}

/// One operation inside a [`Request::Txn`] body; `Get`s read from the
/// transaction's own snapshot (and see earlier writes in the same
/// body).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxnOp {
    /// Transactional read; result is returned in body order.
    Get {
        /// Target key.
        key: u64,
    },
    /// Transactional write.
    Put {
        /// Target key.
        key: u64,
        /// New value bytes.
        value: Vec<u8>,
    },
    /// Transactional delete.
    Delete {
        /// Target key.
        key: u64,
    },
}

/// A decoded client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Read one key.
    Get {
        /// Target key.
        key: u64,
    },
    /// Write one key.
    Put {
        /// Target key.
        key: u64,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Delete one key.
    Delete {
        /// Target key.
        key: u64,
    },
    /// Compare-and-swap: install `new` iff the current value equals
    /// `expected` (`None` = key absent).
    Cas {
        /// Target key.
        key: u64,
        /// Expected current value, `None` for "absent".
        expected: Option<Vec<u8>>,
        /// Replacement value.
        new: Vec<u8>,
    },
    /// Snapshot scan of the half-open range `[lo, hi)`, truncated to
    /// `limit` entries (0 = server's cap).
    Scan {
        /// Inclusive lower key bound.
        lo: u64,
        /// Exclusive upper key bound.
        hi: u64,
        /// Client-requested entry cap (0 = server default).
        limit: u32,
    },
    /// Atomic multi-write batch: all ops commit in one transaction.
    Multi {
        /// Writes, applied in order within one commit.
        ops: Vec<WriteOp>,
    },
    /// Atomic mixed transaction: reads and writes in one commit.
    Txn {
        /// Operations, applied in order within one commit.
        ops: Vec<TxnOp>,
    },
    /// Snapshot of the server's unified metrics plane (`polytm-obs`
    /// flat key space). Acts as a barrier: the pending coalesced run
    /// commits first, so counters reflect everything pipelined ahead
    /// of this request on the same connection.
    Stats {
        /// `true` for the plain-text exposition format, `false` for
        /// the binary entries codec (`polytm_obs::decode_entries`).
        text: bool,
    },
}

impl Request {
    /// The request's wire opcode.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Ping => op::PING,
            Request::Get { .. } => op::GET,
            Request::Put { .. } => op::PUT,
            Request::Delete { .. } => op::DELETE,
            Request::Cas { .. } => op::CAS,
            Request::Scan { .. } => op::SCAN,
            Request::Multi { .. } => op::MULTI,
            Request::Txn { .. } => op::TXN,
            Request::Stats { .. } => op::STATS,
        }
    }
}

/// A decoded server response. `Error` pairs with any request opcode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Get`]: the value, if present.
    Value(Option<Vec<u8>>),
    /// Reply to [`Request::Put`]: whether the key already existed.
    Written {
        /// True if the put overwrote an existing value.
        existed: bool,
    },
    /// Reply to [`Request::Delete`]: whether the key existed.
    Deleted {
        /// True if a value was actually removed.
        existed: bool,
    },
    /// Reply to [`Request::Cas`]: whether the swap was applied.
    Swapped {
        /// True if the expectation held and `new` was installed.
        swapped: bool,
    },
    /// Reply to [`Request::Scan`]: entries in ascending key order.
    Entries {
        /// `(key, value)` pairs from one consistent snapshot.
        entries: Vec<(u64, Vec<u8>)>,
        /// True if the scan was cut short by a limit.
        truncated: bool,
    },
    /// Reply to [`Request::Multi`]: number of ops applied (all of
    /// them — the batch is atomic).
    Applied {
        /// Count of writes in the committed batch.
        ops: u32,
    },
    /// Reply to [`Request::Txn`]: results of the body's `Get`s in
    /// body order.
    TxnResults {
        /// One entry per `TxnOp::Get`, in order.
        gets: Vec<Option<Vec<u8>>>,
    },
    /// Reply to [`Request::Stats`]: the snapshot in the requested
    /// format. A server spawned without a metrics registry answers
    /// with an empty snapshot rather than an error.
    Stats {
        /// Binary entries (`polytm_obs::decode_entries`) or UTF-8
        /// exposition text, per the request's `text` flag.
        payload: Vec<u8>,
    },
    /// The request failed; carried under [`OP_ERROR`].
    Error(ErrorCode),
}

impl Response {
    /// The wire opcode for this response when answering `request_op`.
    pub fn opcode(&self, request_op: u8) -> u8 {
        match self {
            Response::Error(_) => OP_ERROR,
            _ => request_op | RESPONSE_BIT,
        }
    }
}

/// Why a frame was rejected outright (resynchronisation is not
/// attempted: a corrupt stream closes the connection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corrupt {
    /// The first four bytes were not [`MAGIC`].
    BadMagic,
    /// `len` was below the fixed body prefix or above the cap.
    BadLength,
    /// The CRC trailer did not match the body.
    BadCrc,
    /// Reserved flag bits were set.
    BadFlags,
}

/// Outcome of [`decode_frame`] on a byte buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameEvent<'a> {
    /// Not enough bytes yet; read more and retry. `need` is the total
    /// buffer length required to make progress.
    Incomplete {
        /// Total bytes (from buffer start) needed for the next check.
        need: usize,
    },
    /// One whole frame. `consumed` bytes may be drained from the
    /// buffer; `payload` borrows from it.
    Frame {
        /// Bytes this frame occupied, including header.
        consumed: usize,
        /// Body opcode.
        opcode: u8,
        /// Request/response sequence number.
        seq: u32,
        /// Payload slice (CRC trailer already stripped and verified).
        payload: &'a [u8],
    },
    /// The stream is corrupt at the buffer's start.
    Corrupt(Corrupt),
}

/// Encode one frame. `crc` appends and flags a CRC-32 trailer.
pub fn encode_frame(opcode: u8, seq: u32, payload: &[u8], crc: bool) -> Vec<u8> {
    let flags = if crc { FLAG_CRC } else { 0 };
    let body_len = BODY_PREFIX + payload.len() + if crc { 4 } else { 0 };
    let mut out = Vec::with_capacity(HEADER + body_len);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(opcode);
    out.push(flags);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
    if crc {
        let sum = crc32(&out[HEADER..]);
        out.extend_from_slice(&sum.to_le_bytes());
    }
    out
}

/// Try to decode one frame from the front of `buf`. Never panics; a
/// hostile buffer yields `Incomplete` (read more) or `Corrupt` (drop
/// the connection), never an allocation larger than [`MAX_PAYLOAD`].
pub fn decode_frame(buf: &[u8]) -> FrameEvent<'_> {
    if buf.len() < HEADER {
        // Check whatever magic bytes have arrived so garbage fails
        // fast instead of waiting for 8 bytes that never come.
        let magic = MAGIC.to_le_bytes();
        if !magic.starts_with(&buf[..buf.len().min(4)]) {
            return FrameEvent::Corrupt(Corrupt::BadMagic);
        }
        return FrameEvent::Incomplete { need: HEADER };
    }
    let magic = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if magic != MAGIC {
        return FrameEvent::Corrupt(Corrupt::BadMagic);
    }
    let body_len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if !(BODY_PREFIX..=BODY_PREFIX + MAX_PAYLOAD + 4).contains(&body_len) {
        return FrameEvent::Corrupt(Corrupt::BadLength);
    }
    let total = HEADER + body_len;
    if buf.len() < total {
        return FrameEvent::Incomplete { need: total };
    }
    let body = &buf[HEADER..total];
    let opcode = body[0];
    let flags = body[1];
    if flags & !FLAG_CRC != 0 {
        return FrameEvent::Corrupt(Corrupt::BadFlags);
    }
    let seq = u32::from_le_bytes([body[2], body[3], body[4], body[5]]);
    let payload = if flags & FLAG_CRC != 0 {
        if body.len() < BODY_PREFIX + 4 {
            return FrameEvent::Corrupt(Corrupt::BadLength);
        }
        let split = body.len() - 4;
        let want =
            u32::from_le_bytes([body[split], body[split + 1], body[split + 2], body[split + 3]]);
        if crc32(&body[..split]) != want {
            return FrameEvent::Corrupt(Corrupt::BadCrc);
        }
        &body[BODY_PREFIX..split]
    } else {
        &body[BODY_PREFIX..]
    };
    if payload.len() > MAX_PAYLOAD {
        return FrameEvent::Corrupt(Corrupt::BadLength);
    }
    FrameEvent::Frame { consumed: total, opcode, seq, payload }
}

// ---- payload grammars -------------------------------------------------

/// Cursor over a payload slice; every read is bounds-checked so the
/// parsers below cannot panic on truncated or hostile input.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let s = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        let s = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(s.try_into().ok()?))
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(s)
    }

    /// Length-prefixed byte string: `[len u32][len bytes]`.
    fn lp_bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.u32()? as usize;
        Some(self.bytes(n)?.to_vec())
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Parse a request payload under `opcode`'s grammar.
pub fn parse_request(opcode: u8, payload: &[u8]) -> Result<Request, ErrorCode> {
    let mut c = Cursor::new(payload);
    let req = match opcode {
        op::PING => Request::Ping,
        op::GET => Request::Get { key: c.u64().ok_or(ErrorCode::BadRequest)? },
        op::PUT => {
            let key = c.u64().ok_or(ErrorCode::BadRequest)?;
            Request::Put { key, value: c.rest().to_vec() }
        }
        op::DELETE => Request::Delete { key: c.u64().ok_or(ErrorCode::BadRequest)? },
        op::CAS => {
            let key = c.u64().ok_or(ErrorCode::BadRequest)?;
            let expected = match c.u8().ok_or(ErrorCode::BadRequest)? {
                0 => None,
                1 => Some(c.lp_bytes().ok_or(ErrorCode::BadRequest)?),
                _ => return Err(ErrorCode::BadRequest),
            };
            Request::Cas { key, expected, new: c.rest().to_vec() }
        }
        op::SCAN => {
            let lo = c.u64().ok_or(ErrorCode::BadRequest)?;
            let hi = c.u64().ok_or(ErrorCode::BadRequest)?;
            let limit = c.u32().ok_or(ErrorCode::BadRequest)?;
            Request::Scan { lo, hi, limit }
        }
        op::MULTI => {
            let count = c.u32().ok_or(ErrorCode::BadRequest)? as usize;
            let mut ops = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                ops.push(parse_write_op(&mut c)?);
            }
            Request::Multi { ops }
        }
        op::TXN => {
            let count = c.u32().ok_or(ErrorCode::BadRequest)? as usize;
            let mut ops = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                ops.push(parse_txn_op(&mut c)?);
            }
            Request::Txn { ops }
        }
        op::STATS => match c.u8().ok_or(ErrorCode::BadRequest)? {
            0 => Request::Stats { text: false },
            1 => Request::Stats { text: true },
            _ => return Err(ErrorCode::BadRequest),
        },
        _ => return Err(ErrorCode::UnknownOpcode),
    };
    if c.done() {
        Ok(req)
    } else {
        Err(ErrorCode::BadRequest)
    }
}

fn parse_write_op(c: &mut Cursor<'_>) -> Result<WriteOp, ErrorCode> {
    match c.u8().ok_or(ErrorCode::BadRequest)? {
        1 => {
            let key = c.u64().ok_or(ErrorCode::BadRequest)?;
            let value = c.lp_bytes().ok_or(ErrorCode::BadRequest)?;
            Ok(WriteOp::Put { key, value })
        }
        2 => Ok(WriteOp::Delete { key: c.u64().ok_or(ErrorCode::BadRequest)? }),
        _ => Err(ErrorCode::BadRequest),
    }
}

fn parse_txn_op(c: &mut Cursor<'_>) -> Result<TxnOp, ErrorCode> {
    match c.u8().ok_or(ErrorCode::BadRequest)? {
        0 => Ok(TxnOp::Get { key: c.u64().ok_or(ErrorCode::BadRequest)? }),
        1 => {
            let key = c.u64().ok_or(ErrorCode::BadRequest)?;
            let value = c.lp_bytes().ok_or(ErrorCode::BadRequest)?;
            Ok(TxnOp::Put { key, value })
        }
        2 => Ok(TxnOp::Delete { key: c.u64().ok_or(ErrorCode::BadRequest)? }),
        _ => Err(ErrorCode::BadRequest),
    }
}

/// Encode a request's payload (the frame body's payload section).
pub fn encode_request_payload(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Ping => {}
        Request::Get { key } | Request::Delete { key } => {
            out.extend_from_slice(&key.to_le_bytes());
        }
        Request::Put { key, value } => {
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(value);
        }
        Request::Cas { key, expected, new } => {
            out.extend_from_slice(&key.to_le_bytes());
            match expected {
                None => out.push(0),
                Some(e) => {
                    out.push(1);
                    out.extend_from_slice(&(e.len() as u32).to_le_bytes());
                    out.extend_from_slice(e);
                }
            }
            out.extend_from_slice(new);
        }
        Request::Scan { lo, hi, limit } => {
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
            out.extend_from_slice(&limit.to_le_bytes());
        }
        Request::Multi { ops } => {
            out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
            for w in ops {
                encode_write_op(&mut out, w);
            }
        }
        Request::Txn { ops } => {
            out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
            for t in ops {
                match t {
                    TxnOp::Get { key } => {
                        out.push(0);
                        out.extend_from_slice(&key.to_le_bytes());
                    }
                    TxnOp::Put { key, value } => {
                        out.push(1);
                        out.extend_from_slice(&key.to_le_bytes());
                        out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                        out.extend_from_slice(value);
                    }
                    TxnOp::Delete { key } => {
                        out.push(2);
                        out.extend_from_slice(&key.to_le_bytes());
                    }
                }
            }
        }
        Request::Stats { text } => out.push(u8::from(*text)),
    }
    out
}

fn encode_write_op(out: &mut Vec<u8>, w: &WriteOp) {
    match w {
        WriteOp::Put { key, value } => {
            out.push(1);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&(value.len() as u32).to_le_bytes());
            out.extend_from_slice(value);
        }
        WriteOp::Delete { key } => {
            out.push(2);
            out.extend_from_slice(&key.to_le_bytes());
        }
    }
}

/// Encode a whole request frame.
pub fn encode_request(req: &Request, seq: u32, crc: bool) -> Vec<u8> {
    encode_frame(req.opcode(), seq, &encode_request_payload(req), crc)
}

/// Encode a response's payload under its (request) opcode pairing.
pub fn encode_response_payload(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Pong => {}
        Response::Value(v) => match v {
            None => out.push(0),
            Some(bytes) => {
                out.push(1);
                out.extend_from_slice(bytes);
            }
        },
        Response::Written { existed } | Response::Deleted { existed } => {
            out.push(u8::from(*existed));
        }
        Response::Swapped { swapped } => out.push(u8::from(*swapped)),
        Response::Entries { entries, truncated } => {
            out.push(u8::from(*truncated));
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (key, value) in entries {
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                out.extend_from_slice(value);
            }
        }
        Response::Applied { ops } => out.extend_from_slice(&ops.to_le_bytes()),
        Response::TxnResults { gets } => {
            out.extend_from_slice(&(gets.len() as u32).to_le_bytes());
            for g in gets {
                match g {
                    None => out.push(0),
                    Some(bytes) => {
                        out.push(1);
                        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                        out.extend_from_slice(bytes);
                    }
                }
            }
        }
        Response::Stats { payload } => out.extend_from_slice(payload),
        Response::Error(code) => out.push(*code as u8),
    }
    out
}

/// Encode a whole response frame answering a request with opcode
/// `request_op` and sequence `seq`.
pub fn encode_response(resp: &Response, request_op: u8, seq: u32, crc: bool) -> Vec<u8> {
    encode_frame(resp.opcode(request_op), seq, &encode_response_payload(resp), crc)
}

/// Parse a response payload. `opcode` is the *response* frame opcode.
pub fn parse_response(opcode: u8, payload: &[u8]) -> Result<Response, ErrorCode> {
    let mut c = Cursor::new(payload);
    if opcode == OP_ERROR {
        let code = ErrorCode::from_u8(c.u8().ok_or(ErrorCode::BadRequest)?)
            .ok_or(ErrorCode::BadRequest)?;
        return if c.done() { Ok(Response::Error(code)) } else { Err(ErrorCode::BadRequest) };
    }
    let resp = match opcode & !RESPONSE_BIT {
        op::PING => Response::Pong,
        op::GET => match c.u8().ok_or(ErrorCode::BadRequest)? {
            0 => Response::Value(None),
            1 => Response::Value(Some(c.rest().to_vec())),
            _ => return Err(ErrorCode::BadRequest),
        },
        op::PUT => Response::Written { existed: c.u8().ok_or(ErrorCode::BadRequest)? != 0 },
        op::DELETE => Response::Deleted { existed: c.u8().ok_or(ErrorCode::BadRequest)? != 0 },
        op::CAS => Response::Swapped { swapped: c.u8().ok_or(ErrorCode::BadRequest)? != 0 },
        op::SCAN => {
            let truncated = c.u8().ok_or(ErrorCode::BadRequest)? != 0;
            let count = c.u32().ok_or(ErrorCode::BadRequest)? as usize;
            let mut entries = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let key = c.u64().ok_or(ErrorCode::BadRequest)?;
                let value = c.lp_bytes().ok_or(ErrorCode::BadRequest)?;
                entries.push((key, value));
            }
            Response::Entries { entries, truncated }
        }
        op::MULTI => Response::Applied { ops: c.u32().ok_or(ErrorCode::BadRequest)? },
        op::TXN => {
            let count = c.u32().ok_or(ErrorCode::BadRequest)? as usize;
            let mut gets = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                match c.u8().ok_or(ErrorCode::BadRequest)? {
                    0 => gets.push(None),
                    1 => gets.push(Some(c.lp_bytes().ok_or(ErrorCode::BadRequest)?)),
                    _ => return Err(ErrorCode::BadRequest),
                }
            }
            Response::TxnResults { gets }
        }
        op::STATS => Response::Stats { payload: c.rest().to_vec() },
        _ => return Err(ErrorCode::UnknownOpcode),
    };
    if c.done() {
        Ok(resp)
    } else {
        Err(ErrorCode::BadRequest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Get { key: 7 },
            Request::Put { key: 9, value: b"hello".to_vec() },
            Request::Put { key: 10, value: Vec::new() },
            Request::Delete { key: u64::MAX },
            Request::Cas { key: 3, expected: None, new: b"n".to_vec() },
            Request::Cas { key: 3, expected: Some(b"old".to_vec()), new: Vec::new() },
            Request::Scan { lo: 0, hi: 1 << 40, limit: 128 },
            Request::Multi {
                ops: vec![
                    WriteOp::Put { key: 1, value: b"a".to_vec() },
                    WriteOp::Delete { key: 2 },
                ],
            },
            Request::Txn {
                ops: vec![
                    TxnOp::Get { key: 1 },
                    TxnOp::Put { key: 2, value: b"bb".to_vec() },
                    TxnOp::Delete { key: 3 },
                ],
            },
            Request::Stats { text: false },
            Request::Stats { text: true },
        ]
    }

    fn sample_responses() -> Vec<(u8, Response)> {
        vec![
            (op::PING, Response::Pong),
            (op::GET, Response::Value(None)),
            (op::GET, Response::Value(Some(b"v".to_vec()))),
            (op::PUT, Response::Written { existed: true }),
            (op::DELETE, Response::Deleted { existed: false }),
            (op::CAS, Response::Swapped { swapped: true }),
            (
                op::SCAN,
                Response::Entries {
                    entries: vec![(1, b"x".to_vec()), (2, Vec::new())],
                    truncated: true,
                },
            ),
            (op::MULTI, Response::Applied { ops: 3 }),
            (op::TXN, Response::TxnResults { gets: vec![None, Some(b"yes".to_vec())] }),
            (op::STATS, Response::Stats { payload: Vec::new() }),
            (op::STATS, Response::Stats { payload: b"stm.commits 41\n".to_vec() }),
            (op::PUT, Response::Error(ErrorCode::ReadOnly)),
        ]
    }

    #[test]
    fn request_round_trip_with_and_without_crc() {
        for crc in [false, true] {
            for (i, req) in sample_requests().into_iter().enumerate() {
                let seq = i as u32 * 3 + 1;
                let wire = encode_request(&req, seq, crc);
                match decode_frame(&wire) {
                    FrameEvent::Frame { consumed, opcode, seq: got_seq, payload } => {
                        assert_eq!(consumed, wire.len());
                        assert_eq!(opcode, req.opcode());
                        assert_eq!(got_seq, seq);
                        assert_eq!(parse_request(opcode, payload), Ok(req));
                    }
                    other => panic!("expected frame, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn response_round_trip_with_and_without_crc() {
        for crc in [false, true] {
            for (i, (req_op, resp)) in sample_responses().into_iter().enumerate() {
                let seq = 100 + i as u32;
                let wire = encode_response(&resp, req_op, seq, crc);
                match decode_frame(&wire) {
                    FrameEvent::Frame { opcode, seq: got_seq, payload, .. } => {
                        assert_eq!(opcode, resp.opcode(req_op));
                        assert_eq!(got_seq, seq);
                        assert_eq!(parse_response(opcode, payload), Ok(resp));
                    }
                    other => panic!("expected frame, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn every_strict_prefix_is_incomplete() {
        let wire = encode_request(&Request::Put { key: 1, value: b"abcdef".to_vec() }, 5, true);
        for cut in 0..wire.len() {
            match decode_frame(&wire[..cut]) {
                FrameEvent::Incomplete { need } => assert!(need > cut),
                other => panic!("prefix {cut}: expected incomplete, got {other:?}"),
            }
        }
    }

    #[test]
    fn corruption_is_detected() {
        assert_eq!(decode_frame(b"nope-not-a-frame"), FrameEvent::Corrupt(Corrupt::BadMagic));
        // Early magic check: a single wrong byte already fails.
        assert_eq!(decode_frame(b"X"), FrameEvent::Corrupt(Corrupt::BadMagic));

        // Oversized len field.
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&MAGIC.to_le_bytes());
        oversized.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_frame(&oversized), FrameEvent::Corrupt(Corrupt::BadLength));

        // Undersized len field (body can't hold opcode+flags+seq).
        let mut tiny = Vec::new();
        tiny.extend_from_slice(&MAGIC.to_le_bytes());
        tiny.extend_from_slice(&2u32.to_le_bytes());
        assert_eq!(decode_frame(&tiny), FrameEvent::Corrupt(Corrupt::BadLength));

        // Flipped payload bit under CRC.
        let mut wire = encode_request(&Request::Put { key: 1, value: b"abc".to_vec() }, 1, true);
        let at = wire.len() - 6;
        wire[at] ^= 0x01;
        assert_eq!(decode_frame(&wire), FrameEvent::Corrupt(Corrupt::BadCrc));

        // Reserved flag bit.
        let mut wire = encode_request(&Request::Ping, 1, false);
        wire[9] |= 0x40;
        assert_eq!(decode_frame(&wire), FrameEvent::Corrupt(Corrupt::BadFlags));
    }

    #[test]
    fn trailing_garbage_in_payload_is_bad_request() {
        let mut payload = encode_request_payload(&Request::Get { key: 1 });
        payload.push(0xAA);
        assert_eq!(parse_request(op::GET, &payload), Err(ErrorCode::BadRequest));
    }

    #[test]
    fn unknown_opcode_is_reported() {
        assert_eq!(parse_request(0x6F, &[]), Err(ErrorCode::UnknownOpcode));
    }

    #[test]
    fn back_to_back_frames_decode_in_sequence() {
        let mut wire = encode_request(&Request::Get { key: 1 }, 1, false);
        wire.extend_from_slice(&encode_request(&Request::Delete { key: 2 }, 2, true));
        let FrameEvent::Frame { consumed, seq, .. } = decode_frame(&wire) else {
            panic!("first frame");
        };
        assert_eq!(seq, 1);
        let FrameEvent::Frame { seq, .. } = decode_frame(&wire[consumed..]) else {
            panic!("second frame");
        };
        assert_eq!(seq, 2);
    }
}
