//! A small blocking client for the `PTM1` protocol: one socket, explicit
//! pipelining (`send` many, `recv` in order), and convenience wrappers
//! for each opcode. This is what the loopback tests, the example, and
//! the open-loop load generator drive the server with.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    decode_frame, encode_request, parse_response, FrameEvent, Request, Response,
};

/// Blocking protocol client. Not thread-safe; one per connection.
pub struct Client {
    stream: TcpStream,
    /// Bytes received but not yet decoded.
    buf: Vec<u8>,
    next_seq: u32,
    /// Attach CRC trailers to outgoing frames.
    pub crc: bool,
}

/// Client-side failure: transport error or an undecodable reply.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's byte stream failed to decode.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(what) => write!(f, "protocol: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, buf: Vec::new(), next_seq: 1, crc: false })
    }

    /// Bound how long [`Client::recv`] blocks for socket bytes; a
    /// timeout surfaces as `ClientError::Io` with kind
    /// `WouldBlock`/`TimedOut` and leaves the stream decodable (partial
    /// frames stay buffered).
    pub fn set_read_timeout(
        &self,
        timeout: Option<std::time::Duration>,
    ) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Pipelined send: write one request, return its sequence number
    /// without waiting for the reply.
    pub fn send(&mut self, req: &Request) -> Result<u32, ClientError> {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let wire = encode_request(req, seq, self.crc);
        self.stream.write_all(&wire)?;
        Ok(seq)
    }

    /// Receive the next response in arrival order (the server
    /// guarantees arrival order == request order per connection).
    pub fn recv(&mut self) -> Result<(u32, Response), ClientError> {
        loop {
            match decode_frame(&self.buf) {
                FrameEvent::Frame { consumed, opcode, seq, payload } => {
                    let resp = parse_response(opcode, payload)
                        .map_err(|_| ClientError::Protocol("bad response payload"))?;
                    self.buf.drain(..consumed);
                    return Ok((seq, resp));
                }
                FrameEvent::Corrupt(_) => {
                    return Err(ClientError::Protocol("corrupt response frame"));
                }
                FrameEvent::Incomplete { .. } => {
                    let mut chunk = [0u8; 16 << 10];
                    match self.stream.read(&mut chunk) {
                        Ok(0) => return Err(ClientError::Protocol("connection closed")),
                        Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(e) => return Err(ClientError::Io(e)),
                    }
                }
            }
        }
    }

    /// Round-trip one request.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let seq = self.send(req)?;
        let (got, resp) = self.recv()?;
        if got != seq {
            return Err(ClientError::Protocol("response sequence mismatch"));
        }
        Ok(resp)
    }

    /// `GET key`.
    pub fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, ClientError> {
        match self.call(&Request::Get { key })? {
            Response::Value(v) => Ok(v),
            _ => Err(ClientError::Protocol("unexpected reply to GET")),
        }
    }

    /// `PUT key value`; returns whether the key existed.
    pub fn put(&mut self, key: u64, value: &[u8]) -> Result<bool, ClientError> {
        match self.call(&Request::Put { key, value: value.to_vec() })? {
            Response::Written { existed } => Ok(existed),
            _ => Err(ClientError::Protocol("unexpected reply to PUT")),
        }
    }

    /// `DELETE key`; returns whether the key existed.
    pub fn delete(&mut self, key: u64) -> Result<bool, ClientError> {
        match self.call(&Request::Delete { key })? {
            Response::Deleted { existed } => Ok(existed),
            _ => Err(ClientError::Protocol("unexpected reply to DELETE")),
        }
    }

    /// `CAS key expected new`; returns whether the swap applied.
    pub fn cas(
        &mut self,
        key: u64,
        expected: Option<&[u8]>,
        new: &[u8],
    ) -> Result<bool, ClientError> {
        let req = Request::Cas { key, expected: expected.map(<[u8]>::to_vec), new: new.to_vec() };
        match self.call(&req)? {
            Response::Swapped { swapped } => Ok(swapped),
            _ => Err(ClientError::Protocol("unexpected reply to CAS")),
        }
    }

    /// `SCAN [lo, hi) limit`; returns entries plus the truncation flag.
    pub fn scan(&mut self, lo: u64, hi: u64, limit: u32) -> Result<ScanResult, ClientError> {
        match self.call(&Request::Scan { lo, hi, limit })? {
            Response::Entries { entries, truncated } => Ok((entries, truncated)),
            _ => Err(ClientError::Protocol("unexpected reply to SCAN")),
        }
    }

    /// `STATS` (binary): one snapshot of the server's unified metrics
    /// plane as sorted `(key, value)` entries. Empty if the server was
    /// spawned without a metrics registry.
    pub fn stats(&mut self) -> Result<Vec<(String, f64)>, ClientError> {
        match self.call(&Request::Stats { text: false })? {
            Response::Stats { payload } => polytm_obs::decode_entries(&payload)
                .map_err(|_| ClientError::Protocol("bad STATS entries payload")),
            _ => Err(ClientError::Protocol("unexpected reply to STATS")),
        }
    }

    /// `STATS` (text): the plain-text exposition dump, one
    /// `key value` line per metric.
    pub fn stats_text(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Stats { text: true })? {
            Response::Stats { payload } => String::from_utf8(payload)
                .map_err(|_| ClientError::Protocol("STATS exposition is not UTF-8")),
            _ => Err(ClientError::Protocol("unexpected reply to STATS")),
        }
    }
}

/// A `SCAN` outcome: `(key, value)` entries in ascending key order,
/// plus whether a limit truncated the result.
pub type ScanResult = (Vec<(u64, Vec<u8>)>, bool);
