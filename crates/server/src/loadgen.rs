//! Open-loop network load generator: target-rate request scheduling
//! over pipelined [`Client`] connections, with coordinated-omission-
//! safe latency recording (see `polytm_workload::openloop`).
//!
//! Each connection runs its own thread and its own [`Pacer`] slice of
//! the total target rate, staggered so the fleet's intended instants
//! interleave instead of arriving in phase. Latency is measured from
//! an operation's *intended* start to its response — an op stuck
//! behind a stalled pipeline is charged its full queueing delay, so
//! the recorded tail reflects what an outside client would see, not
//! what a polite closed-loop driver would admit to.

use std::io::ErrorKind;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use polytm_workload::openloop::{record_sample, Pacer};
use polytm_workload::{LatencyHistogram, SplitMix64};

use crate::client::{Client, ClientError};
use crate::protocol::{Request, Response, WriteOp};

/// Workload shape for [`run_load`].
#[derive(Clone, Copy, Debug)]
pub struct LoadSpec {
    /// Concurrent connections (one thread each).
    pub conns: usize,
    /// Total target rate, ops/second, across all connections.
    pub rate: f64,
    /// Measured window (after warmup).
    pub duration: Duration,
    /// Warmup window; samples intended before its end are discarded.
    pub warmup: Duration,
    /// Keys are drawn uniformly from `[0, key_space)`.
    pub key_space: u64,
    /// Percentage of operations that are writes (`PUT`), `0..=100`.
    pub write_pct: u32,
    /// Every Nth write becomes an atomic `MULTI` of
    /// [`LoadSpec::multi_size`] puts (0 = never).
    pub multi_every: u32,
    /// Ops per `MULTI` batch.
    pub multi_size: usize,
    /// Value payload length in bytes.
    pub value_len: usize,
    /// Max in-flight requests per connection before the sender blocks
    /// on a response. Bounds memory; latency accounting stays honest
    /// because samples are measured from intended time regardless.
    pub pipeline_cap: usize,
    /// Deterministic workload seed.
    pub seed: u64,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            conns: 2,
            rate: 20_000.0,
            duration: Duration::from_millis(300),
            warmup: Duration::from_millis(60),
            key_space: 1 << 14,
            write_pct: 30,
            multi_every: 8,
            multi_size: 8,
            value_len: 12,
            pipeline_cap: 64,
            seed: 0x9E3779B97F4A7C15,
        }
    }
}

/// Aggregated outcome of one [`run_load`] run.
#[derive(Debug)]
pub struct LoadMeasurement {
    /// Operations completed whose intended start fell in the measured
    /// window.
    pub ops: u64,
    /// The measured window length.
    pub elapsed: Duration,
    /// Intended-start-to-response latencies for measured ops.
    pub hist: LatencyHistogram,
    /// Error responses received (measured window or not).
    pub errors: u64,
}

impl LoadMeasurement {
    /// Completed measured ops per second of measured window.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// In-flight bookkeeping: one entry per unanswered request, FIFO —
/// per-connection response order matches request order, so the front
/// entry always pairs with the next response.
struct Inflight {
    intended: Instant,
    measured: bool,
}

/// Run the open-loop workload against `addr`. Returns the merged
/// measurement; any connection-level failure aborts the whole run.
pub fn run_load(addr: SocketAddr, spec: &LoadSpec) -> Result<LoadMeasurement, ClientError> {
    assert!(spec.conns > 0, "need at least one connection");
    assert!(spec.pipeline_cap > 0, "pipeline cap must be positive");
    let origin = Instant::now();
    let measure_start = origin + spec.warmup;
    let deadline = measure_start + spec.duration;
    let per_conn_rate = spec.rate / spec.conns as f64;

    let mut handles = Vec::with_capacity(spec.conns);
    for t in 0..spec.conns {
        let spec = *spec;
        handles.push(std::thread::spawn(move || {
            conn_loop(addr, &spec, t, origin, measure_start, deadline, per_conn_rate)
        }));
    }

    let mut hist = LatencyHistogram::new();
    let mut ops = 0u64;
    let mut errors = 0u64;
    for h in handles {
        let (conn_hist, conn_ops, conn_errors) =
            h.join().map_err(|_| ClientError::Protocol("load thread panicked"))??;
        hist.merge(&conn_hist);
        ops += conn_ops;
        errors += conn_errors;
    }
    Ok(LoadMeasurement { ops, elapsed: spec.duration, hist, errors })
}

fn conn_loop(
    addr: SocketAddr,
    spec: &LoadSpec,
    index: usize,
    origin: Instant,
    measure_start: Instant,
    deadline: Instant,
    rate: f64,
) -> Result<(LatencyHistogram, u64, u64), ClientError> {
    let mut client = Client::connect(addr)?;
    client.set_read_timeout(Some(Duration::from_millis(1)))?;
    // Stagger this connection's schedule inside one inter-arrival gap
    // so the fleet doesn't fire in phase.
    let stagger = Duration::from_nanos((1.0e9 / rate * index as f64 / spec.conns as f64) as u64);
    let mut pacer = Pacer::starting_at(origin + stagger, rate);
    let mut rng = SplitMix64::for_thread(spec.seed, index);

    let mut inflight: std::collections::VecDeque<Inflight> = std::collections::VecDeque::new();
    let mut hist = LatencyHistogram::new();
    let mut ops = 0u64;
    let mut errors = 0u64;
    let mut writes = 0u32;
    let value = vec![0x5Au8; spec.value_len];

    while pacer.peek() < deadline {
        // Sleep (draining responses opportunistically) until the next
        // intended instant.
        loop {
            let wait = pacer.due(Instant::now());
            if wait.is_zero() {
                break;
            }
            if !inflight.is_empty() {
                drain_one(&mut client, &mut inflight, &mut hist, &mut ops, &mut errors)?;
            } else {
                std::thread::sleep(wait.min(Duration::from_millis(1)));
            }
        }
        let intended = pacer.take();

        let r = rng.next_u64();
        let key = r % spec.key_space.max(1);
        let req = if (r >> 33) % 100 < spec.write_pct as u64 {
            writes += 1;
            if spec.multi_every > 0 && writes.is_multiple_of(spec.multi_every) {
                let ops = (0..spec.multi_size)
                    .map(|i| WriteOp::Put {
                        key: (key + i as u64) % spec.key_space.max(1),
                        value: value.clone(),
                    })
                    .collect();
                Request::Multi { ops }
            } else {
                Request::Put { key, value: value.clone() }
            }
        } else {
            Request::Get { key }
        };
        client.send(&req)?;
        inflight.push_back(Inflight {
            intended,
            measured: intended >= measure_start && intended < deadline,
        });

        // Bound the pipeline: block for one response once full.
        while inflight.len() >= spec.pipeline_cap {
            if !drain_one(&mut client, &mut inflight, &mut hist, &mut ops, &mut errors)? {
                std::thread::yield_now();
            }
        }
    }

    // Tail drain: every in-flight request still gets its sample.
    client.set_read_timeout(Some(Duration::from_secs(5)))?;
    while !inflight.is_empty() {
        if !drain_one(&mut client, &mut inflight, &mut hist, &mut ops, &mut errors)? {
            return Err(ClientError::Protocol("tail drain timed out"));
        }
    }
    Ok((hist, ops, errors))
}

/// Try to receive one response; `Ok(false)` means the read timed out.
fn drain_one(
    client: &mut Client,
    inflight: &mut std::collections::VecDeque<Inflight>,
    hist: &mut LatencyHistogram,
    ops: &mut u64,
    errors: &mut u64,
) -> Result<bool, ClientError> {
    match client.recv() {
        Ok((_seq, resp)) => {
            let done = inflight
                .pop_front()
                .ok_or(ClientError::Protocol("response without matching request"))?;
            if matches!(resp, Response::Error(_)) {
                *errors += 1;
            }
            if done.measured {
                record_sample(hist, done.intended, Instant::now());
                *ops += 1;
            }
            Ok(true)
        }
        Err(ClientError::Io(e))
            if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
        {
            Ok(false)
        }
        Err(e) => Err(e),
    }
}
