//! Store-level durability tests: recovery roundtrips, checkpoint
//! truncation, group-commit amortization, poisoned-log degradation,
//! and checkpoint-vs-live-snapshot interaction.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use polytm_durable::storage::FaultFs;
use polytm_durable::store::SNAP_TMP;
use polytm_durable::wal::segment_name;
use polytm_durable::{
    Durability, DurabilityLost, DurabilityOutcome, DurableKv, DurableKvConfig, RealFs, Storage,
    WalConfig, SNAP_NAME,
};
use polytm_kv::{KvConfig, Value};

fn small_config(mode: Durability) -> DurableKvConfig {
    DurableKvConfig {
        kv: KvConfig { shards: 4, initial_slots: 16, ..KvConfig::default() },
        wal: WalConfig {
            mode,
            segment_bytes: 512,
            group_window: Duration::ZERO,
            ..WalConfig::default()
        },
    }
}

fn dump(store: &DurableKv) -> Vec<(u64, Vec<u8>)> {
    store.scan_range(0, u64::MAX).into_iter().map(|(k, v)| (k, v.as_bytes().to_vec())).collect()
}

#[test]
fn sync_commits_survive_reopen() {
    let fs = Arc::new(FaultFs::new(101));
    let store = DurableKv::open(fs.clone(), small_config(Durability::Sync)).unwrap();
    for k in 0..40u64 {
        store.put(k, Value::from_u64(k * 7)).unwrap();
    }
    store.delete(3).unwrap();
    store.delete(999).unwrap(); // absent: logs nothing
    let before = dump(&store);
    drop(store);
    fs.crash(); // nothing volatile in sync mode: pure reopen
    let recovered = DurableKv::open(fs, small_config(Durability::Sync)).unwrap();
    assert_eq!(dump(&recovered), before);
    assert_eq!(recovered.get(3), None);
    assert_eq!(recovered.get(5).unwrap().as_u64(), Some(35));
}

#[test]
fn async_flush_then_reopen_recovers() {
    let fs = Arc::new(FaultFs::new(202));
    let store = DurableKv::open(fs.clone(), small_config(Durability::Async)).unwrap();
    let mut last = DurabilityOutcome::Durable;
    for k in 0..20u64 {
        let (_, _, outcome) = store.txn_logged(|tx| tx.put(k, Value::from_u64(k))).unwrap();
        last = outcome;
    }
    assert_eq!(last, DurabilityOutcome::Pending, "async commits ack before the fsync");
    store.flush().unwrap();
    let before = dump(&store);
    drop(store);
    fs.crash();
    let recovered = DurableKv::open(fs, small_config(Durability::Async)).unwrap();
    assert_eq!(dump(&recovered), before);
}

#[test]
fn read_only_txns_log_nothing() {
    let fs = Arc::new(FaultFs::new(7));
    let store = DurableKv::open(fs, small_config(Durability::Sync)).unwrap();
    store.put(1, Value::from_u64(10)).unwrap();
    let durable_before = store.wal().durable_seq();
    let (found, info, outcome) = store.txn_logged(|tx| tx.get(1)).unwrap();
    assert_eq!(found.unwrap().as_u64(), Some(10));
    assert_eq!(info.seq, None, "pure reads take no log sequence number");
    assert_eq!(outcome, DurabilityOutcome::Durable);
    assert_eq!(store.wal().durable_seq(), durable_before, "no flush was needed");
}

#[test]
fn checkpoint_truncates_and_recovery_uses_it() {
    let fs = Arc::new(FaultFs::new(303));
    let store = DurableKv::open(fs.clone(), small_config(Durability::Sync)).unwrap();
    for k in 0..30u64 {
        store.put(k, Value::from_u64(k + 100)).unwrap();
    }
    store.checkpoint().unwrap();
    // Pre-checkpoint segments are gone, the snapshot is installed.
    let names = fs.list().unwrap();
    assert!(names.contains(&SNAP_NAME.to_string()), "snapshot installed: {names:?}");
    assert!(!names.contains(&SNAP_TMP.to_string()), "tmp renamed away: {names:?}");
    assert!(
        !names.contains(&segment_name(0)),
        "wholly-covered segment must be truncated: {names:?}"
    );
    // Post-checkpoint writes land in the rotated segment and recover
    // on top of the snapshot.
    for k in 0..5u64 {
        store.put(k, Value::from_u64(k)).unwrap();
    }
    store.delete(29).unwrap();
    let before = dump(&store);
    drop(store);
    fs.crash();
    let recovered = DurableKv::open(fs, small_config(Durability::Sync)).unwrap();
    assert_eq!(dump(&recovered), before);
}

#[test]
fn commit_clock_survives_recovery_across_two_restarts() {
    // Regression: recovery must catch the commit clock up to the
    // checkpoint cut. A first incarnation checkpoints at some W (the
    // clock has advanced once per commit); if the second incarnation
    // reopens with a fresh clock, its commits are stamped wv << W, get
    // acked Durable — and the THIRD incarnation's `wv > W` replay
    // filter silently skips them. Two restarts are required to see the
    // loss.
    let fs = Arc::new(FaultFs::new(606));
    let store = DurableKv::open(fs.clone(), small_config(Durability::Sync)).unwrap();
    for k in 0..50u64 {
        store.put(k, Value::from_u64(k)).unwrap();
    }
    store.checkpoint().unwrap();
    drop(store);
    fs.crash();

    // Second incarnation: its commits must land above the snapshot cut.
    let store = DurableKv::open(fs.clone(), small_config(Durability::Sync)).unwrap();
    store.put(1000, Value::from_u64(0xBEEF)).unwrap();
    store.put(3, Value::from_u64(333)).unwrap();
    let before = dump(&store);
    drop(store);
    fs.crash();

    // Third incarnation: the acked-durable second-incarnation writes
    // must still be there.
    let recovered = DurableKv::open(fs, small_config(Durability::Sync)).unwrap();
    assert_eq!(dump(&recovered), before);
    assert_eq!(recovered.get(1000).unwrap().as_u64(), Some(0xBEEF));
    assert_eq!(recovered.get(3).unwrap().as_u64(), Some(333));
}

#[test]
fn concurrent_checkpoints_never_lose_committed_writes() {
    // Checkpoints are serialized internally; racing them against each
    // other and a writer must never produce a snapshot/truncation
    // interleaving that loses a committed update.
    let fs = Arc::new(FaultFs::new(707));
    let store = Arc::new(DurableKv::open(fs.clone(), small_config(Durability::Sync)).unwrap());
    std::thread::scope(|scope| {
        let writer = {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for i in 0..300u64 {
                    store.put(i % 32, Value::from_u64(i)).unwrap();
                }
            })
        };
        for _ in 0..2 {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for _ in 0..6 {
                    store.checkpoint().unwrap();
                }
            });
        }
        writer.join().unwrap();
    });
    store.checkpoint().unwrap();
    let before = dump(&store);
    drop(store);
    fs.crash();
    let recovered = DurableKv::open(fs, small_config(Durability::Sync)).unwrap();
    assert_eq!(dump(&recovered), before);
}

#[test]
fn io_failure_degrades_to_read_only_not_panic() {
    // Arm the crash point a few storage ops in: some writes succeed,
    // then the log poisons.
    let fs = Arc::new(FaultFs::with_crash_after(11, 5));
    let store = DurableKv::open(fs, small_config(Durability::Sync)).unwrap();
    let mut lost_at = None;
    for k in 0..10u64 {
        match store.txn_logged(|tx| tx.put(k, Value::from_u64(k))) {
            Ok((_, _, DurabilityOutcome::Lost)) => {
                lost_at = Some(k);
                break;
            }
            Ok(_) => {}
            Err(DurabilityLost) => panic!("latch must trip via Lost first"),
        }
    }
    let lost_at = lost_at.expect("the armed op must surface as Lost");
    assert!(store.is_read_only());
    // Writes now fail fast; reads keep serving the in-memory state,
    // including the commit whose durability was lost.
    assert_eq!(store.put(99, Value::from_u64(1)), Err(DurabilityLost));
    assert_eq!(store.txn(|tx| tx.delete(0)), Err(DurabilityLost));
    for k in 0..=lost_at {
        assert_eq!(store.get(k).unwrap().as_u64(), Some(k));
    }
}

#[test]
fn group_commit_amortizes_fsyncs_across_committers() {
    let fs = Arc::new(FaultFs::new(404));
    let cfg = DurableKvConfig {
        wal: WalConfig {
            mode: Durability::Sync,
            // A real linger so concurrent committers pile into one
            // batch even on a single core.
            group_window: Duration::from_millis(2),
            ..WalConfig::default()
        },
        ..DurableKvConfig::default()
    };
    let store = Arc::new(DurableKv::open(fs, cfg).unwrap());
    let per_thread = 40u64;
    std::thread::scope(|scope| {
        for t in 0..2u64 {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for i in 0..per_thread {
                    store.put(t * 1000 + i, Value::from_u64(i)).unwrap();
                }
            });
        }
    });
    let stats = store.stm().stats();
    assert_eq!(stats.commits_durable, 2 * per_thread);
    assert!(stats.fsyncs >= 1 && stats.group_commit_batches == stats.fsyncs);
    assert!(
        stats.fsyncs < stats.commits_durable,
        "group commit must batch: {} fsyncs for {} commits",
        stats.fsyncs,
        stats.commits_durable
    );
    assert!(stats.wal_bytes > 0);
}

#[test]
fn checkpoint_never_tears_a_concurrent_snapshot_scan() {
    // Constant-sum invariant: transfers between keys keep the total
    // fixed; snapshot scans and checkpoints run concurrently. Every
    // scan must see the full sum, and the checkpointed state (what
    // recovery yields) must too.
    const KEYS: u64 = 16;
    const PER_KEY: u64 = 1000;
    let fs = Arc::new(FaultFs::new(505));
    let store = Arc::new(DurableKv::open(fs.clone(), small_config(Durability::Sync)).unwrap());
    let entries: Vec<(u64, Value)> = (0..KEYS).map(|k| (k, Value::from_u64(PER_KEY))).collect();
    store.multi_put(&entries).unwrap();
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let writer = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut x = 9u64;
                while !stop.load(Ordering::Relaxed) {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (x >> 33) % KEYS;
                    let to = (x >> 13) % KEYS;
                    store
                        .txn(|tx| {
                            let a = tx.get(from)?.and_then(|v| v.as_u64()).unwrap_or(0);
                            let b = tx.get(to)?.and_then(|v| v.as_u64()).unwrap_or(0);
                            if from != to && a > 0 {
                                tx.put(from, Value::from_u64(a - 1))?;
                                tx.put(to, Value::from_u64(b + 1))?;
                            }
                            Ok(())
                        })
                        .unwrap();
                }
            })
        };
        for _ in 0..8 {
            store.checkpoint().unwrap();
            let sum: u64 =
                store.scan_range(0, u64::MAX).iter().filter_map(|(_, v)| v.as_u64()).sum();
            assert_eq!(sum, KEYS * PER_KEY, "snapshot scan tore during checkpoint");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    });

    drop(store);
    fs.crash();
    let recovered = DurableKv::open(fs, small_config(Durability::Sync)).unwrap();
    let sum: u64 = recovered.scan_range(0, u64::MAX).iter().filter_map(|(_, v)| v.as_u64()).sum();
    assert_eq!(sum, KEYS * PER_KEY, "recovered state tore");
}

#[test]
fn real_fs_recovery_roundtrip() {
    let dir = std::env::temp_dir().join(format!("polytm-durable-rt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fs = Arc::new(RealFs::open(&dir).unwrap());
    let store = DurableKv::open(fs.clone(), small_config(Durability::Sync)).unwrap();
    for k in 0..25u64 {
        store.put(k, Value::from_u64(k * k)).unwrap();
    }
    store.checkpoint().unwrap();
    store.put(1, Value::from_u64(777)).unwrap();
    store.delete(2).unwrap();
    let before = dump(&store);
    drop(store);
    // Reopen against the same directory through a fresh handle cache.
    let fs2 = Arc::new(RealFs::open(&dir).unwrap());
    let recovered = DurableKv::open(fs2, small_config(Durability::Sync)).unwrap();
    assert_eq!(dump(&recovered), before);
    assert_eq!(recovered.get(1).unwrap().as_u64(), Some(777));
    assert_eq!(recovered.get(2), None);
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}
