//! Seeded crash-torture sweep: for each seed, run a workload against a
//! [`FaultFs`] armed with a crash point (torn appends, short fsyncs and
//! clean failures, chosen by the seed), resolve the power loss, recover
//! and compare against a committed-prefix oracle:
//!
//! * every commit acknowledged durable is present after recovery;
//! * the recovered state equals the replay of some *prefix* of the
//!   commit order — no phantom records, no torn writesets, no
//!   reordering;
//! * that prefix covers at least every acknowledged commit.
//!
//! Each seed lives through [`CYCLES`] crash/recover incarnations: after
//! a recovery checks out against the oracle, the crash point is
//! re-armed and the *recovered* store is tortured again, with the
//! oracle carried across incarnations. Single-incarnation sweeps miss
//! whole classes of bugs that only surface on the second crash —
//! commit-clock restoration (post-recovery commits stamped below the
//! checkpoint cut get skipped by the *next* recovery) and
//! recovery-created segment numbering among them.
//!
//! The workload is single-threaded over a sync-mode store with a zero
//! group window, so a seed replays the exact same storage-op schedule —
//! a failing seed is a deterministic reproducer.
//!
//! Seed budget: `POLYTM_TORTURE_SEEDS` (the nightly job raises it), or
//! a debug/release-scaled default.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use polytm_durable::{
    Durability, DurabilityLost, DurabilityOutcome, DurableKv, DurableKvConfig, FaultFs, WalConfig,
};
use polytm_kv::{KvConfig, Value};

/// One oracle-visible committed write.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    Put(u64, u64),
    Delete(u64),
}

fn apply(model: &mut BTreeMap<u64, u64>, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Put(k, v) => {
                model.insert(k, v);
            }
            Op::Delete(k) => {
                model.remove(&k);
            }
        }
    }
}

fn dump(store: &DurableKv) -> BTreeMap<u64, u64> {
    store
        .scan_range(0, u64::MAX)
        .into_iter()
        .map(|(k, v)| (k, v.as_u64().expect("torture writes u64 values")))
        .collect()
}

fn config() -> DurableKvConfig {
    DurableKvConfig {
        kv: KvConfig { shards: 4, initial_slots: 16, ..KvConfig::default() },
        wal: WalConfig {
            mode: Durability::Sync,
            // Tiny segments so rotation, truncation and multi-segment
            // recovery all happen inside a short run.
            segment_bytes: 384,
            group_window: Duration::ZERO,
            ..WalConfig::default()
        },
    }
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Crash/recover incarnations per seed. Two would already cover the
/// second-crash invariants; three also crash an incarnation whose
/// recovery itself replayed a recovered incarnation's log.
const CYCLES: usize = 3;

/// Run one seed through [`CYCLES`] crash/recover incarnations; returns
/// how many armed crash points actually fired mid-workload (vs. the
/// workload finishing first).
fn run_seed(seed: u64) -> u64 {
    let fs = Arc::new(FaultFs::new(seed.wrapping_mul(0x9E37_79B9).max(1)));
    let mut rng = XorShift(seed | 1);
    let mut store = DurableKv::open(fs.clone(), config()).unwrap_or_else(|e| {
        panic!("seed {seed}: fresh open failed: {e}");
    });
    // Committed state as of the last recovery: the base every later
    // incarnation's oracle replays on top of.
    let mut base: BTreeMap<u64, u64> = BTreeMap::new();
    let mut fired = 0u64;

    for cycle in 0..CYCLES {
        // Between ~8 and ~160 storage ops in: early enough to hit
        // recovery of half-written first segments, late enough to cross
        // checkpoints. Armed only now, after open — recovery I/O runs
        // on healthy storage, like a real reboot.
        let crash_after = 8 + rng.next() % 152;
        fs.arm_after(crash_after);

        // Committed writesets in log-sequence order, plus the count of
        // them that were acknowledged durable.
        let mut oracle: Vec<(u64, Vec<Op>)> = Vec::new();
        let mut acked = 0usize;

        for i in 0..200usize {
            if store.is_read_only() {
                break;
            }
            if i % 41 == 40 {
                // Periodic checkpoint; mid-checkpoint crashes are part
                // of the sweep (a failed checkpoint must never lose
                // state).
                let _ = store.checkpoint();
                continue;
            }
            let key = rng.next() % 24;
            let roll = rng.next();
            let result = if !roll.is_multiple_of(4) {
                let value = rng.next();
                store
                    .txn_logged(|tx| tx.put(key, Value::from_u64(value)))
                    .map(|(_prev, info, outcome)| (vec![Op::Put(key, value)], info, outcome))
            } else {
                store.txn_logged(|tx| tx.delete(key)).map(|(prev, info, outcome)| {
                    let ops = if prev.is_some() { vec![Op::Delete(key)] } else { Vec::new() };
                    (ops, info, outcome)
                })
            };
            match result {
                Err(DurabilityLost) => break,
                Ok((ops, info, outcome)) => {
                    match info.seq {
                        Some(seq) => {
                            assert!(
                                !ops.is_empty(),
                                "seed {seed} cycle {cycle}: logged commit with empty writeset"
                            );
                            if let Some((last, _)) = oracle.last() {
                                assert!(*last < seq, "seed {seed} cycle {cycle}: seq not monotone");
                            }
                            oracle.push((seq, ops));
                        }
                        None => assert!(
                            ops.is_empty(),
                            "seed {seed} cycle {cycle}: state-changing commit took no sequence \
                             number"
                        ),
                    }
                    match outcome {
                        DurabilityOutcome::Durable => acked = oracle.len(),
                        DurabilityOutcome::Lost => break,
                        DurabilityOutcome::Pending => {
                            panic!("seed {seed} cycle {cycle}: sync mode acked Pending")
                        }
                    }
                }
            }
        }

        if fs.is_down() {
            fired += 1;
        }
        // Power loss: the store is dropped cold (Drop does no storage
        // I/O), the device resolves its volatile tails, the machine
        // reboots.
        drop(store);
        fs.crash();

        store = DurableKv::open(fs.clone(), config())
            .unwrap_or_else(|e| panic!("seed {seed} cycle {cycle}: recovery failed: {e}"));
        let got = dump(&store);

        // The recovered state must equal base + replay of oracle[..k]
        // for some k covering every acked commit.
        let mut model = base.clone();
        let mut matched = None;
        for k in 0..=oracle.len() {
            if k > 0 {
                apply(&mut model, &oracle[k - 1].1);
            }
            if k >= acked && model == got {
                matched = Some(k);
                // Any match at k >= acked satisfies the oracle.
                break;
            }
        }
        assert!(
            matched.is_some(),
            "seed {seed} cycle {cycle} (crash_after {crash_after}): recovered state is not a \
             committed prefix covering all {acked} acked commits of {} total.\nrecovered: {got:?}",
            oracle.len()
        );
        // The recovered dump — not the matched model — is the next
        // incarnation's base: they are equal by the assertion above.
        base = got;
    }

    // After the last incarnation the store must still accept new
    // durable writes (fresh segment, healthy storage).
    store.put(7, Value::from_u64(0xDEAD)).unwrap_or_else(|e| {
        panic!("seed {seed}: post-recovery write failed: {e}");
    });
    fired
}

fn seed_budget() -> u64 {
    if let Ok(v) = std::env::var("POLYTM_TORTURE_SEEDS") {
        return v.parse().expect("POLYTM_TORTURE_SEEDS must be an integer");
    }
    if cfg!(debug_assertions) {
        300
    } else {
        1500
    }
}

#[test]
fn seeded_crash_torture_recovers_committed_prefix() {
    let seeds = seed_budget();
    let mut fired = 0u64;
    for seed in 0..seeds {
        fired += run_seed(seed);
    }
    // The sweep must actually be exercising crashes, not clean
    // shutdowns: the crash window tops out at 160 storage ops and each
    // incarnation's workload performs more, so nearly every armed point
    // should fire.
    let armed = seeds * CYCLES as u64;
    assert!(
        fired * 10 >= armed * 8,
        "only {fired}/{armed} armed crash points fired across {seeds} seeds"
    );
}
