//! The storage plane: a minimal append/sync/rename file abstraction
//! ([`Storage`]) with a real-filesystem backend ([`RealFs`]) and a
//! deterministic fault-injection simulator ([`FaultFs`]).
//!
//! `FaultFs` models exactly the failure surface the WAL's correctness
//! argument depends on:
//!
//! * **volatile vs durable bytes** — appended bytes sit in a volatile
//!   tail until `sync` moves them to the durable prefix; a crash throws
//!   the volatile tail away (mostly — see below);
//! * **crash points** — a seeded operation counter arms one mutating
//!   operation to fail; every later mutation fails too (the process is
//!   "dead" until [`FaultFs::crash`] resolves the power loss);
//! * **torn tail writes** — the armed append transfers only a seeded
//!   prefix of its bytes into the volatile tail before dying;
//! * **short fsyncs** — the armed sync persists only a seeded prefix of
//!   the volatile tail and returns an error (so no caller was acked);
//! * **delayed visibility** — at [`FaultFs::crash`], each file
//!   independently keeps a seeded prefix of its volatile tail (the
//!   bytes the device happened to have written back), optionally with a
//!   single bit flipped in the last surviving byte (a torn sector
//!   edge).
//!
//! Determinism: every choice above is drawn from one seeded xorshift
//! stream, so a failing torture seed replays exactly.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Read as _, Seek as _, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Append-only file storage with explicit durability points. All paths
/// are flat names inside one logical directory; implementations must be
/// safe for concurrent use.
pub trait Storage: Send + Sync {
    /// Append `bytes` to `name`, creating it when absent. The bytes are
    /// *not* durable until [`Storage::sync`] succeeds.
    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Make every byte appended to `name` so far durable.
    fn sync(&self, name: &str) -> io::Result<()>;
    /// Full current contents of `name`.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;
    /// True when `name` exists.
    fn exists(&self, name: &str) -> io::Result<bool>;
    /// Atomically replace `to` with `from` (the classic
    /// write-tmp/fsync/rename publication step).
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;
    /// Delete `name`; deleting an absent file is not an error.
    fn remove(&self, name: &str) -> io::Result<()>;
    /// All file names, sorted.
    fn list(&self) -> io::Result<Vec<String>>;
}

// ---------------------------------------------------------------------
// RealFs
// ---------------------------------------------------------------------

/// [`Storage`] over a real directory. Append handles are cached so the
/// group-commit loop does not reopen the segment per batch.
pub struct RealFs {
    dir: PathBuf,
    handles: Mutex<HashMap<String, fs::File>>,
}

impl RealFs {
    /// Open (creating if needed) a storage directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir, handles: Mutex::new(HashMap::new()) })
    }

    fn with_handle<T>(
        &self,
        name: &str,
        f: impl FnOnce(&mut fs::File) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut handles = self.handles.lock().expect("storage handle cache poisoned");
        if !handles.contains_key(name) {
            let path = self.dir.join(name);
            let existed = path.try_exists()?;
            let file = fs::OpenOptions::new().create(true).append(true).read(true).open(&path)?;
            if !existed {
                // Persist the new directory entry now, before any
                // caller's sync() can succeed: on filesystems that
                // require an explicit directory fsync, losing the
                // entry after a synced batch would drop the whole file
                // — every acked commit in a freshly rotated segment.
                self.sync_dir()?;
            }
            handles.insert(name.to_string(), file);
        }
        f(handles.get_mut(name).expect("inserted above"))
    }

    /// Best-effort directory fsync, so renames and removals survive a
    /// metadata-journal gap. Errors are surfaced: a durability layer
    /// that cannot sync its directory cannot keep its promises.
    fn sync_dir(&self) -> io::Result<()> {
        fs::File::open(&self.dir)?.sync_all()
    }
}

impl Storage for RealFs {
    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.with_handle(name, |file| file.write_all(bytes))
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        self.with_handle(name, |file| file.sync_data())
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        // Read through the cached handle when one exists (an
        // independent open would also work; this keeps the handle count
        // flat), rewinding to the start.
        let mut handles = self.handles.lock().expect("storage handle cache poisoned");
        if let Some(file) = handles.get_mut(name) {
            let mut buf = Vec::new();
            file.seek(io::SeekFrom::Start(0))?;
            file.read_to_end(&mut buf)?;
            file.seek(io::SeekFrom::End(0))?;
            return Ok(buf);
        }
        drop(handles);
        fs::read(self.dir.join(name))
    }

    fn exists(&self, name: &str) -> io::Result<bool> {
        self.dir.join(name).try_exists()
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut handles = self.handles.lock().expect("storage handle cache poisoned");
        handles.remove(from);
        handles.remove(to);
        drop(handles);
        fs::rename(self.dir.join(from), self.dir.join(to))?;
        self.sync_dir()
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.handles.lock().expect("storage handle cache poisoned").remove(name);
        match fs::remove_file(self.dir.join(name)) {
            Ok(()) => self.sync_dir(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

// ---------------------------------------------------------------------
// FaultFs
// ---------------------------------------------------------------------

/// How the armed operation dies (chosen from the seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultMode {
    /// The operation fails cleanly, no partial effect.
    Clean,
    /// An armed append transfers a seeded prefix of its bytes first.
    TornAppend,
    /// An armed sync persists a seeded prefix of the volatile tail.
    ShortSync,
}

#[derive(Default)]
struct FaultFile {
    durable: Vec<u8>,
    volatile: Vec<u8>,
}

impl FaultFile {
    fn contents(&self) -> Vec<u8> {
        let mut all = self.durable.clone();
        all.extend_from_slice(&self.volatile);
        all
    }
}

/// Deterministic in-memory [`Storage`] simulator. See the module docs
/// for the fault matrix.
pub struct FaultFs {
    files: Mutex<HashMap<String, FaultFile>>,
    rng: Mutex<u64>,
    /// Mutating operations performed so far.
    ops: AtomicU64,
    /// Operation index that fails (then everything after); `u64::MAX`
    /// disarms.
    crash_at: AtomicU64,
    crashed: AtomicBool,
    mode: FaultMode,
}

fn simulated(msg: &str) -> io::Error {
    io::Error::other(format!("faultfs: {msg}"))
}

impl FaultFs {
    /// Fault-free simulator (still deterministic; useful as a fast
    /// in-memory storage for tests).
    pub fn new(seed: u64) -> Self {
        Self::with_crash_after(seed, u64::MAX)
    }

    /// Simulator armed to fail the `crash_after`-th mutating operation
    /// (1-based), in a seed-chosen mode: cleanly, as a torn append, or
    /// as a short fsync.
    pub fn with_crash_after(seed: u64, crash_after: u64) -> Self {
        // Derive the failure mode from the seed without consuming the
        // stream the per-file torn-tail draws use.
        let mode = match seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 61 {
            0..=2 => FaultMode::Clean,
            3..=5 => FaultMode::TornAppend,
            _ => FaultMode::ShortSync,
        };
        Self {
            files: Mutex::new(HashMap::new()),
            rng: Mutex::new(seed | 1),
            ops: AtomicU64::new(0),
            crash_at: AtomicU64::new(crash_after),
            crashed: AtomicBool::new(false),
            mode,
        }
    }

    fn next_rand(&self) -> u64 {
        let mut s = self.rng.lock().expect("faultfs rng poisoned");
        let mut x = *s;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *s = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Account one mutating operation; `Ok(false)` = proceed normally,
    /// `Ok(true)` = this is the armed operation (caller applies its
    /// partial effect then fails), `Err` = already dead.
    fn step(&self) -> io::Result<bool> {
        if self.crashed.load(Ordering::Acquire) {
            return Err(simulated("crashed"));
        }
        let op = self.ops.fetch_add(1, Ordering::AcqRel) + 1;
        if op >= self.crash_at.load(Ordering::Acquire) {
            self.crashed.store(true, Ordering::Release);
            return Ok(true);
        }
        Ok(false)
    }

    /// True once the armed crash point has fired (all further mutating
    /// operations fail until [`FaultFs::crash`]).
    pub fn is_down(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// Resolve the power loss: every file keeps its durable prefix plus
    /// a seeded prefix of its volatile tail (with a possible bit flip
    /// in the last surviving byte), volatile state is gone, and the
    /// simulator is healthy again (the "machine" rebooted) with the
    /// crash point disarmed — recovery I/O runs normally.
    pub fn crash(&self) {
        let mut files = self.files.lock().expect("faultfs files poisoned");
        for file in files.values_mut() {
            let keep = if file.volatile.is_empty() {
                0
            } else {
                (self.next_rand() % (file.volatile.len() as u64 + 1)) as usize
            };
            file.volatile.truncate(keep);
            if keep > 0 && self.next_rand().is_multiple_of(4) {
                let bit = (self.next_rand() % 8) as u32;
                file.volatile[keep - 1] ^= 1u8 << bit;
            }
            file.durable.append(&mut file.volatile);
        }
        drop(files);
        self.crashed.store(false, Ordering::Release);
        self.crash_at.store(u64::MAX, Ordering::Release);
    }

    /// Re-arm the crash point: the `after`-th mutating operation from
    /// now (1-based) fails, then every later one, until
    /// [`FaultFs::crash`] resolves the power loss again. Lets a torture
    /// run crash the *recovered* incarnation too — multi-incarnation
    /// invariants (clock restoration, recovery-created segment
    /// numbering) only surface on the second crash.
    pub fn arm_after(&self, after: u64) {
        let now = self.ops.load(Ordering::Acquire);
        self.crash_at.store(now.saturating_add(after), Ordering::Release);
    }

    /// Bytes currently guaranteed durable for `name` (test oracle
    /// hook).
    pub fn durable_len(&self, name: &str) -> usize {
        self.files.lock().expect("faultfs files poisoned").get(name).map_or(0, |f| f.durable.len())
    }
}

impl Storage for FaultFs {
    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let armed = self.step()?;
        let mut files = self.files.lock().expect("faultfs files poisoned");
        let file = files.entry(name.to_string()).or_default();
        if armed {
            if self.mode == FaultMode::TornAppend && !bytes.is_empty() {
                let keep = (self.next_rand() % (bytes.len() as u64 + 1)) as usize;
                file.volatile.extend_from_slice(&bytes[..keep]);
            }
            return Err(simulated("crash point hit in append"));
        }
        file.volatile.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        let armed = self.step()?;
        let mut files = self.files.lock().expect("faultfs files poisoned");
        let file = files.entry(name.to_string()).or_default();
        if armed {
            if self.mode == FaultMode::ShortSync && !file.volatile.is_empty() {
                let keep = (self.next_rand() % (file.volatile.len() as u64 + 1)) as usize;
                let persisted: Vec<u8> = file.volatile.drain(..keep).collect();
                file.durable.extend_from_slice(&persisted);
            }
            return Err(simulated("crash point hit in sync"));
        }
        let tail = std::mem::take(&mut file.volatile);
        file.durable.extend_from_slice(&tail);
        Ok(())
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.files
            .lock()
            .expect("faultfs files poisoned")
            .get(name)
            .map(FaultFile::contents)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("faultfs: {name}")))
    }

    fn exists(&self, name: &str) -> io::Result<bool> {
        Ok(self.files.lock().expect("faultfs files poisoned").contains_key(name))
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        if self.step()? {
            // An armed rename either happened or did not — both are
            // atomic outcomes, chosen by the seed.
            if self.next_rand().is_multiple_of(2) {
                let mut files = self.files.lock().expect("faultfs files poisoned");
                if let Some(file) = files.remove(from) {
                    files.insert(to.to_string(), file);
                }
            }
            return Err(simulated("crash point hit in rename"));
        }
        let mut files = self.files.lock().expect("faultfs files poisoned");
        let file = files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("faultfs: {from}")))?;
        files.insert(to.to_string(), file);
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        if self.step()? {
            if self.next_rand().is_multiple_of(2) {
                self.files.lock().expect("faultfs files poisoned").remove(name);
            }
            return Err(simulated("crash point hit in remove"));
        }
        self.files.lock().expect("faultfs files poisoned").remove(name);
        Ok(())
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names: Vec<String> =
            self.files.lock().expect("faultfs files poisoned").keys().cloned().collect();
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volatile_bytes_need_a_sync_to_survive() {
        let fs = FaultFs::new(1);
        fs.append("a", b"hello").unwrap();
        assert_eq!(fs.durable_len("a"), 0);
        fs.sync("a").unwrap();
        assert_eq!(fs.durable_len("a"), 5);
        fs.append("a", b" world").unwrap();
        fs.crash();
        let after = fs.read("a").unwrap();
        assert!(after.len() >= 5, "durable prefix must survive");
        assert!(after.starts_with(b"hello") || after.len() == 6, "prefix rule (modulo bit flip)");
    }

    #[test]
    fn crash_point_kills_every_later_operation() {
        let fs = FaultFs::with_crash_after(7, 3);
        fs.append("a", b"1").unwrap();
        fs.sync("a").unwrap();
        assert!(fs.append("a", b"2").is_err(), "third op is armed");
        assert!(fs.is_down());
        assert!(fs.sync("a").is_err());
        assert!(fs.append("b", b"x").is_err());
        fs.crash();
        assert!(fs.append("b", b"x").is_ok(), "rebooted simulator is healthy");
    }

    #[test]
    fn same_seed_same_history() {
        let run = |seed| {
            let fs = FaultFs::with_crash_after(seed, 6);
            for i in 0..10u8 {
                let _ = fs.append("f", &[i; 33]);
                let _ = fs.sync("f");
            }
            fs.crash();
            fs.read("f").unwrap()
        };
        assert_eq!(run(42), run(42));
        // Not a fixed outcome across seeds (the schedule really is
        // seeded): at least one nearby seed must differ.
        assert!((0..16).any(|s| run(s) != run(42)));
    }

    #[test]
    fn real_fs_roundtrip() {
        let dir = std::env::temp_dir().join(format!("polytm-durable-test-{}", std::process::id()));
        let fs = RealFs::open(&dir).unwrap();
        fs.append("seg", b"abc").unwrap();
        fs.sync("seg").unwrap();
        fs.append("seg", b"def").unwrap();
        assert_eq!(fs.read("seg").unwrap(), b"abcdef");
        fs.append("tmp", b"snap").unwrap();
        fs.rename("tmp", "snap.bin").unwrap();
        assert!(fs.exists("snap.bin").unwrap());
        assert!(!fs.exists("tmp").unwrap());
        assert_eq!(fs.list().unwrap(), vec!["seg".to_string(), "snap.bin".to_string()]);
        fs.remove("seg").unwrap();
        fs.remove("seg").unwrap(); // idempotent
        assert_eq!(fs.list().unwrap(), vec!["snap.bin".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
