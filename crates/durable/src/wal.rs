//! The redo-only write-ahead log with group commit.
//!
//! ## Group-commit protocol
//!
//! Committers never write to storage themselves. The STM commit path
//! (holding the transaction's location locks) calls
//! [`RedoSink::append`], which assigns the next log sequence number and
//! copies the framed entry into an in-memory staging buffer — O(memcpy)
//! under a mutex, no I/O. Durability happens in *batches*:
//!
//! * In [`Durability::Sync`] mode a committer then calls
//!   [`Wal::wait_durable`]. The first waiter that finds no flush in
//!   flight becomes the **leader**: it lingers for
//!   [`WalConfig::group_window`] (letting concurrent committers pile
//!   into the staging buffer), then takes the whole buffer, appends it
//!   to the current segment and issues **one** fsync for every commit
//!   in the batch. Followers just sleep on the condvar until
//!   `durable_seq` covers their sequence number. This is the classic
//!   leader/follower group commit: fsyncs per second is bounded by
//!   `1 / group_window`, not by the commit rate.
//! * In [`Durability::Async`] mode nobody waits; a background flusher
//!   (owned by `DurableKv`) calls [`Wal::flush_tick`] every
//!   [`WalConfig::async_interval`]. Acked commits may be lost on a
//!   crash, but recovery still yields a *prefix* of the commit order.
//!
//! ## Failure and backpressure
//!
//! A failed append or fsync **poisons** the log: `durable_seq` stops
//! advancing, every `wait_durable` returns [`DurabilityLost`], and the
//! owning store degrades to read-only. We never retry I/O into a file
//! whose tail state is unknown — the durable prefix on disk stays
//! exactly the prefix recovery will replay.
//!
//! [`Wal::throttle`] bounds staged-but-unflushed bytes
//! ([`WalConfig::max_inflight_bytes`]): callers invoke it *before*
//! entering the STM transaction (the sink itself must never block — it
//! runs under location locks), so commit admission slows to the flush
//! rate instead of staging growing without bound.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, Weak};
use std::time::Duration;

use polytm::{RedoSink, Stm};

use crate::error::DurabilityLost;
use crate::frame::encode_entry;
use crate::storage::Storage;

/// When a commit is acknowledged relative to the fsync that persists
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Commit acknowledgement waits for the group fsync: every acked
    /// commit survives any crash.
    Sync,
    /// Commits return immediately; a background flusher persists the
    /// tail every [`WalConfig::async_interval`]. A crash may lose the
    /// most recent commits but never yields a torn or reordered state.
    Async,
}

/// Write-ahead log tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Sync vs async acknowledgement (see [`Durability`]).
    pub mode: Durability,
    /// Rotate to a new segment file once the current one reaches this
    /// many bytes (checked at flush boundaries, so segments overshoot
    /// by at most one batch).
    pub segment_bytes: u64,
    /// Backpressure cap: [`Wal::throttle`] blocks while staged bytes
    /// exceed this.
    pub max_inflight_bytes: usize,
    /// Leader linger before taking a batch. Zero disables the linger
    /// (torture tests use zero to maximize distinct crash points).
    pub group_window: Duration,
    /// Background flush period in [`Durability::Async`] mode.
    pub async_interval: Duration,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            mode: Durability::Sync,
            segment_bytes: 1 << 20,
            max_inflight_bytes: 4 << 20,
            group_window: Duration::from_micros(150),
            async_interval: Duration::from_millis(1),
        }
    }
}

/// Segment file name for segment number `n` (`wal-00000000.log`,
/// sortable lexicographically up to 10^8 segments).
pub fn segment_name(n: u64) -> String {
    format!("wal-{n:08}.log")
}

/// Inverse of [`segment_name`]; `None` for non-segment files.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if digits.len() < 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

struct WalInner {
    /// Framed entries staged since the last flush took the buffer.
    staging: Vec<u8>,
    /// Commits staged in `staging`.
    staged_entries: u64,
    /// Highest sequence number staged in `staging`.
    staged_hi_seq: u64,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Highest sequence number known durable on storage.
    durable_seq: u64,
    /// A leader is between taking the buffer and publishing the flush
    /// outcome.
    flushing: bool,
    /// A log I/O failed; durability promises can no longer be kept.
    poisoned: bool,
    /// Current segment number appends go to.
    segment: u64,
    /// Bytes flushed into the current segment so far.
    segment_fill: u64,
}

/// The write-ahead log. One per [`crate::DurableKv`]; installed into
/// the store's [`Stm`] as its [`RedoSink`].
pub struct Wal {
    storage: Arc<dyn Storage>,
    cfg: WalConfig,
    inner: Mutex<WalInner>,
    cond: Condvar,
    /// Stats sink (weak: the `Stm` owns an `Arc` of this log, and a
    /// strong back-edge would leak both).
    stm: OnceLock<Weak<Stm>>,
    /// Highest staging occupancy observed (backpressure test witness).
    high_water: AtomicU64,
}

impl Wal {
    /// A log appending to `storage`, with sequence numbers starting at
    /// `next_seq` and writes going to segment `segment` (recovery picks
    /// both; a fresh store uses `1` and `0`).
    pub fn new(storage: Arc<dyn Storage>, cfg: WalConfig, next_seq: u64, segment: u64) -> Self {
        Self {
            storage,
            cfg,
            inner: Mutex::new(WalInner {
                staging: Vec::new(),
                staged_entries: 0,
                staged_hi_seq: 0,
                next_seq,
                durable_seq: next_seq.saturating_sub(1),
                flushing: false,
                poisoned: false,
                segment,
                segment_fill: 0,
            }),
            cond: Condvar::new(),
            stm: OnceLock::new(),
            high_water: AtomicU64::new(0),
        }
    }

    /// Install the stats sink. Called once by `DurableKv::open` after
    /// the `Stm` is built (the log must exist first to be the redo
    /// sink).
    pub fn attach_stm(&self, stm: &Arc<Stm>) {
        let _ = self.stm.set(Arc::downgrade(stm));
    }

    /// The log's configuration.
    pub fn config(&self) -> &WalConfig {
        &self.cfg
    }

    fn lock(&self) -> MutexGuard<'_, WalInner> {
        self.inner.lock().expect("wal mutex poisoned")
    }

    /// Block until every sequence number up to `seq` is durable,
    /// leading a group flush if nobody else is. Errors once the log is
    /// poisoned.
    pub fn wait_durable(&self, seq: u64) -> Result<(), DurabilityLost> {
        let mut inner = self.lock();
        if inner.durable_seq >= seq {
            return Ok(());
        }
        // Past this point the committer genuinely blocks (leading a
        // flush or sleeping as a follower); charge the whole stretch to
        // the WAL wait component. The already-durable fast path above
        // never reads the clock.
        let wait_start = std::time::Instant::now();
        let result = loop {
            if inner.durable_seq >= seq {
                break Ok(());
            }
            if inner.poisoned {
                break Err(DurabilityLost);
            }
            if !inner.flushing && !inner.staging.is_empty() {
                inner = self.flush_locked(inner);
            } else {
                inner = self.cond.wait(inner).expect("wal mutex poisoned");
            }
        };
        drop(inner);
        let wait_ns = wait_start.elapsed().as_nanos() as u64;
        if wait_ns > 0 {
            if let Some(stm) = self.stm.get().and_then(Weak::upgrade) {
                stm.record_wal_wait(wait_ns);
            }
            polytm::trace::emit(|| {
                polytm::trace::TraceEvent::new(
                    polytm::trace::code::WAL_FOLLOWER_WAIT,
                    0,
                    polytm::trace::NO_CLASS,
                    0,
                    wait_ns,
                    seq,
                )
            });
        }
        result
    }

    /// Flush until nothing is staged (or the log is poisoned). Used by
    /// checkpoints and shutdown.
    pub fn flush_all(&self) -> Result<(), DurabilityLost> {
        let mut inner = self.lock();
        loop {
            if inner.poisoned {
                return Err(DurabilityLost);
            }
            if inner.staging.is_empty() && !inner.flushing {
                return Ok(());
            }
            if !inner.flushing && !inner.staging.is_empty() {
                inner = self.flush_locked(inner);
            } else {
                inner = self.cond.wait(inner).expect("wal mutex poisoned");
            }
        }
    }

    /// One background flush attempt (async-mode flusher tick): flush
    /// the current staging buffer if any and nobody else is flushing;
    /// never blocks waiting for others.
    pub fn flush_tick(&self) {
        let inner = self.lock();
        if !inner.poisoned && !inner.flushing && !inner.staging.is_empty() {
            drop(self.flush_locked(inner));
        }
    }

    /// Commit-admission backpressure: block while staged bytes are at
    /// or over [`WalConfig::max_inflight_bytes`]. Call *before*
    /// starting a logged transaction — never from inside the commit
    /// path.
    pub fn throttle(&self) {
        let mut inner = self.lock();
        while inner.staging.len() >= self.cfg.max_inflight_bytes && !inner.poisoned {
            if !inner.flushing {
                inner = self.flush_locked(inner);
            } else {
                inner = self.cond.wait(inner).expect("wal mutex poisoned");
            }
        }
    }

    /// Start a new segment (checkpoint cut); returns the number of the
    /// segment that was current. Entries staged before the rotation
    /// flush into the *new* segment — sound for checkpoints because the
    /// snapshot cut `W` covers every commit whose entry was staged
    /// before the checkpoint transaction's read point, and replay skips
    /// `wv <= W`.
    pub fn rotate(&self) -> u64 {
        let mut inner = self.lock();
        let old = inner.segment;
        inner.segment += 1;
        inner.segment_fill = 0;
        old
    }

    /// True once a log I/O error has poisoned the log.
    pub fn is_poisoned(&self) -> bool {
        self.lock().poisoned
    }

    /// Highest sequence number known durable.
    pub fn durable_seq(&self) -> u64 {
        self.lock().durable_seq
    }

    /// Highest staging-buffer occupancy (bytes) seen so far; the
    /// backpressure tests assert this stays near the configured cap.
    pub fn inflight_high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }

    /// The leader path: mark a flush in flight, linger for the group
    /// window, take the whole staging buffer, do one append + one fsync
    /// for the batch, publish the outcome. Consumes and returns the
    /// guard because the I/O (and the linger) run unlocked.
    fn flush_locked<'a>(&'a self, mut inner: MutexGuard<'a, WalInner>) -> MutexGuard<'a, WalInner> {
        inner.flushing = true;
        let mut linger_ns = 0u64;
        if !self.cfg.group_window.is_zero() {
            drop(inner);
            let linger_start = std::time::Instant::now();
            std::thread::sleep(self.cfg.group_window);
            linger_ns = linger_start.elapsed().as_nanos() as u64;
            inner = self.lock();
        }
        let buf = std::mem::take(&mut inner.staging);
        let entries = std::mem::take(&mut inner.staged_entries);
        let hi = inner.staged_hi_seq;
        let seg = inner.segment;
        drop(inner);

        if linger_ns > 0 {
            // How long the leader held the batch open — the time every
            // commit in the group spends waiting for stragglers.
            polytm::trace::emit(|| {
                polytm::trace::TraceEvent::new(
                    polytm::trace::code::WAL_LINGER,
                    0,
                    polytm::trace::NO_CLASS,
                    entries.min(u64::from(u32::MAX)) as u32,
                    linger_ns,
                    0,
                )
            });
        }

        let io_start = std::time::Instant::now();
        let mut fsync_ns = 0u64;
        let result = if buf.is_empty() {
            Ok(())
        } else {
            let name = segment_name(seg);
            self.storage.append(&name, &buf).and_then(|()| {
                let sync_start = std::time::Instant::now();
                let r = self.storage.sync(&name);
                fsync_ns = sync_start.elapsed().as_nanos() as u64;
                r
            })
        };
        let io_ns = io_start.elapsed().as_nanos() as u64;

        let mut inner = self.lock();
        inner.flushing = false;
        match result {
            Ok(()) => {
                if !buf.is_empty() {
                    inner.durable_seq = inner.durable_seq.max(hi);
                    // Rotation is a flush-boundary decision, so every
                    // non-current segment ends exactly at a synced
                    // batch edge — torn bytes can only exist in the
                    // highest-numbered segment. Skip the bookkeeping if
                    // a checkpoint rotated underneath the flush.
                    if inner.segment == seg {
                        inner.segment_fill += buf.len() as u64;
                        if inner.segment_fill >= self.cfg.segment_bytes {
                            inner.segment += 1;
                            inner.segment_fill = 0;
                        }
                    }
                    if let Some(stm) = self.stm.get().and_then(Weak::upgrade) {
                        stm.record_durable(entries, 1, 1, buf.len() as u64);
                    }
                    // One event per group-commit flush: the batch the
                    // leader drained, its append+fsync latency, and the
                    // bytes it made durable.
                    polytm::trace::emit(|| {
                        polytm::trace::TraceEvent::new(
                            polytm::trace::code::WAL_FLUSH,
                            0,
                            polytm::trace::NO_CLASS,
                            entries.min(u64::from(u32::MAX)) as u32,
                            io_ns,
                            buf.len() as u64,
                        )
                    });
                    // The fsync alone (WAL_FLUSH's `a` also covers the
                    // append memcpy into the page cache): the floor any
                    // group-window tuning has to live with.
                    polytm::trace::emit(|| {
                        polytm::trace::TraceEvent::new(
                            polytm::trace::code::WAL_FSYNC,
                            0,
                            polytm::trace::NO_CLASS,
                            entries.min(u64::from(u32::MAX)) as u32,
                            fsync_ns,
                            buf.len() as u64,
                        )
                    });
                }
            }
            Err(_) => inner.poisoned = true,
        }
        self.cond.notify_all();
        inner
    }
}

impl RedoSink for Wal {
    /// Stage one commit's redo bytes; called by the STM commit path
    /// *under the transaction's location locks*, so it only copies into
    /// memory — the sequence number it returns is the commit's position
    /// in the durable order. Appends to a poisoned log still consume a
    /// sequence number but stage nothing (the commit will learn its
    /// fate from [`Wal::wait_durable`] / the store's read-only latch).
    fn append(&self, wv: u64, redo: &[u8]) -> u64 {
        let mut inner = self.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if !inner.poisoned {
            encode_entry(&mut inner.staging, seq, wv, redo);
            inner.staged_hi_seq = seq;
            inner.staged_entries += 1;
            let occupancy = inner.staging.len() as u64;
            self.high_water.fetch_max(occupancy, Ordering::Relaxed);
        }
        self.cond.notify_all();
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::decode_entry;
    use crate::storage::FaultFs;

    fn test_cfg() -> WalConfig {
        WalConfig { group_window: Duration::ZERO, ..WalConfig::default() }
    }

    #[test]
    fn segment_names_roundtrip_and_sort() {
        assert_eq!(segment_name(0), "wal-00000000.log");
        assert_eq!(parse_segment_name("wal-00000042.log"), Some(42));
        assert_eq!(parse_segment_name("snap.bin"), None);
        assert_eq!(parse_segment_name("wal-0000troj.log"), None);
        assert!(segment_name(9) < segment_name(10));
    }

    #[test]
    fn wait_durable_leads_a_flush_and_batches() {
        let fs = Arc::new(FaultFs::new(3));
        let wal = Wal::new(fs.clone(), test_cfg(), 1, 0);
        let s1 = wal.append(10, b"alpha");
        let s2 = wal.append(11, b"beta");
        assert_eq!((s1, s2), (1, 2));
        wal.wait_durable(s2).expect("healthy log");
        assert_eq!(wal.durable_seq(), 2);
        let bytes = fs.read(&segment_name(0)).expect("segment exists");
        let (e1, next) = decode_entry(&bytes, 0).expect("first entry");
        let (e2, end) = decode_entry(&bytes, next).expect("second entry");
        assert_eq!((e1.seq, e1.wv, e1.payload), (1, 10, &b"alpha"[..]));
        assert_eq!((e2.seq, e2.wv, e2.payload), (2, 11, &b"beta"[..]));
        assert_eq!(end, bytes.len());
        // One batch, so all bytes are durable (one sync call happened).
        assert_eq!(fs.durable_len(&segment_name(0)), bytes.len());
    }

    #[test]
    fn io_failure_poisons_and_unblocks_waiters() {
        // Fail the very first mutating storage op (the batch append).
        let fs = Arc::new(FaultFs::with_crash_after(5, 1));
        let wal = Wal::new(fs, test_cfg(), 1, 0);
        let seq = wal.append(7, b"doomed");
        assert_eq!(wal.wait_durable(seq), Err(DurabilityLost));
        assert!(wal.is_poisoned());
        // Later appends still hand out sequence numbers but stage
        // nothing, and waiting on them fails fast.
        let seq2 = wal.append(8, b"late");
        assert_eq!(seq2, seq + 1);
        assert_eq!(wal.wait_durable(seq2), Err(DurabilityLost));
    }

    #[test]
    fn rotation_at_flush_boundary() {
        let fs = Arc::new(FaultFs::new(9));
        let cfg = WalConfig { segment_bytes: 64, ..test_cfg() };
        let wal = Wal::new(fs.clone(), cfg, 1, 0);
        // Each flush carries one ~60-byte entry; the fill crosses 64
        // after each batch, so every flush rotates.
        for i in 0..3u64 {
            let seq = wal.append(i + 1, &[0u8; 40]);
            wal.wait_durable(seq).unwrap();
        }
        let names = fs.list().unwrap();
        assert_eq!(
            names,
            vec![segment_name(0), segment_name(1), segment_name(2)],
            "one segment per over-cap batch"
        );
    }

    #[test]
    fn throttle_bounds_staging() {
        let fs = Arc::new(FaultFs::new(11));
        let cfg = WalConfig { max_inflight_bytes: 256, ..test_cfg() };
        let wal = Wal::new(fs, cfg, 1, 0);
        for i in 0..64u64 {
            wal.throttle();
            wal.append(i + 1, &[7u8; 32]);
        }
        // Each entry is 28 + 32 = 60 bytes; throttle flushes whenever
        // staging is at/over 256, so occupancy never exceeds cap + one
        // entry.
        assert!(
            wal.inflight_high_water() <= 256 + 60,
            "high water {} exceeds cap + one entry",
            wal.inflight_high_water()
        );
        wal.flush_all().unwrap();
        assert_eq!(wal.durable_seq(), 64);
    }
}
