//! [`DurableKv`]: a [`KvStore`] whose writes survive crashes.
//!
//! ## Write path
//!
//! Every mutating operation runs as a *logged transaction*: a
//! [`DurableTxn`] mirrors each `put`/`delete` into a compact redo
//! record staged on the transaction descriptor, and the STM commit path
//! hands those bytes to the WAL ([`crate::wal::Wal`]) *while the
//! commit's location locks are held* — so the log's sequence order is
//! consistent with the store's per-key serialization, and any prefix of
//! the log replays to a state the store actually passed through.
//!
//! ## Recovery
//!
//! `open` loads `snap.bin` (atomic-renamed checkpoint: record set at
//! cut `W`, first live segment), then replays live segments in order,
//! taking the longest CRC-valid, strictly-seq-monotone prefix and
//! applying every entry with `wv > W`. Torn bytes can only exist at the
//! tail of the highest-numbered segment (rotation happens at synced
//! flush boundaries), and post-recovery appends always start a *fresh*
//! segment — the log never appends after garbage, so "stop at the first
//! invalid frame, continue with the next segment" is exactly the
//! committed-prefix rule. Before admitting transactions the commit
//! clock is caught up to `max(W, highest replayed wv)`: the `wv > W`
//! replay filter is only sound if every post-recovery commit is stamped
//! above every persisted one.
//!
//! ## Checkpoint
//!
//! [`DurableKv::checkpoint`] rotates the segment *first*, then scans
//! under snapshot semantics at cut `W`: every entry in the old segments
//! has `wv <= W` (their flushes preceded the rotation, which preceded
//! reading `W`) and is covered by the snapshot (MVCC scans wait out
//! in-flight publishers at or below their read point), so deleting the
//! old segments after the snapshot renames into place loses nothing.
//! Entries staged before the rotation may *flush* into the new segment;
//! they carry `wv <= W` and replay skips them — re-application is never
//! needed, idempotence never relied on.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use polytm::{CommitInfo, Semantics, Stm, StmConfig, TxParams, TxResult};
use polytm_kv::{KvConfig, KvStore, KvTxn, Value};

use crate::error::DurabilityLost;
use crate::frame::{decode_entry, decode_snapshot, encode_snapshot, Snapshot};
use crate::storage::Storage;
use crate::wal::{parse_segment_name, Durability, Wal, WalConfig};

/// Checkpoint file name.
pub const SNAP_NAME: &str = "snap.bin";
/// Checkpoint staging name (written, fsynced, renamed over
/// [`SNAP_NAME`]).
pub const SNAP_TMP: &str = "snap.tmp";

const REDO_PUT: u8 = 1;
const REDO_DELETE: u8 = 2;

/// Construction knobs for a [`DurableKv`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DurableKvConfig {
    /// The in-memory store's layout and semantics parameters.
    pub kv: KvConfig,
    /// The write-ahead log's durability mode and tuning.
    pub wal: WalConfig,
}

/// What the log promised about a just-committed transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityOutcome {
    /// The commit (and every commit ordered before it) is on storage.
    Durable,
    /// Async mode: the commit is staged and will persist within
    /// [`WalConfig::async_interval`]; a crash before then loses it (but
    /// never tears it).
    Pending,
    /// The log failed while persisting this commit. It is visible in
    /// memory but may not survive a crash; the store is now read-only.
    Lost,
}

/// One decoded redo operation.
enum RedoOp {
    Put(u64, Vec<u8>),
    Delete(u64),
}

fn decode_redo(payload: &[u8]) -> Option<Vec<RedoOp>> {
    let mut ops = Vec::new();
    let mut at = 0usize;
    while at < payload.len() {
        let tag = payload[at];
        let key = u64::from_le_bytes(payload.get(at + 1..at + 9)?.try_into().ok()?);
        at += 9;
        match tag {
            REDO_PUT => {
                let vlen = u32::from_le_bytes(payload.get(at..at + 4)?.try_into().ok()?) as usize;
                let value = payload.get(at + 4..at + 4 + vlen)?;
                ops.push(RedoOp::Put(key, value.to_vec()));
                at += 4 + vlen;
            }
            REDO_DELETE => ops.push(RedoOp::Delete(key)),
            _ => return None,
        }
    }
    Some(ops)
}

/// Transactional view inside [`DurableKv::txn`]: the [`KvTxn`] surface
/// with every write mirrored into the transaction's redo record.
pub struct DurableTxn<'a, 's, 'tx> {
    kv: &'a mut KvTxn<'s, 'tx>,
}

impl DurableTxn<'_, '_, '_> {
    /// Read `key` (see [`KvTxn::get`]).
    pub fn get(&mut self, key: u64) -> TxResult<Option<Value>> {
        self.kv.get(key)
    }

    /// Membership probe for `key` (see [`KvTxn::contains`]).
    pub fn contains(&mut self, key: u64) -> TxResult<bool> {
        self.kv.contains(key)
    }

    /// Count keys in `[lo, hi)` (see [`KvTxn::range_count`]).
    pub fn range_count(&mut self, lo: u64, hi: u64) -> TxResult<usize> {
        self.kv.range_count(lo, hi)
    }

    /// Write `key`, logging a redo `put`.
    pub fn put(&mut self, key: u64, value: Value) -> TxResult<Option<Value>> {
        let prev = self.kv.put(key, value.clone())?;
        let bytes = value.as_bytes();
        let mut rec = Vec::with_capacity(13 + bytes.len());
        rec.push(REDO_PUT);
        rec.extend_from_slice(&key.to_le_bytes());
        rec.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        rec.extend_from_slice(bytes);
        self.kv.tx().stage_redo(&rec);
        Ok(prev)
    }

    /// Delete `key`, logging a redo `delete` when the key was present
    /// (deleting an absent key changes nothing and logs nothing).
    pub fn delete(&mut self, key: u64) -> TxResult<Option<Value>> {
        let prev = self.kv.delete(key)?;
        if prev.is_some() {
            let mut rec = Vec::with_capacity(9);
            rec.push(REDO_DELETE);
            rec.extend_from_slice(&key.to_le_bytes());
            self.kv.tx().stage_redo(&rec);
        }
        Ok(prev)
    }
}

/// A crash-durable transactional KV store: [`KvStore`] semantics in
/// memory, a group-committed redo WAL underneath, checkpoint +
/// truncation, and recovery back to the committed prefix. See the
/// module docs for the protocol.
pub struct DurableKv {
    store: KvStore,
    wal: Arc<Wal>,
    storage: Arc<dyn Storage>,
    mode: Durability,
    read_only: AtomicBool,
    /// Serializes [`DurableKv::checkpoint`]: two interleaved
    /// checkpoints could install the older cut over the newer one
    /// *after* the newer one truncated segments the older cut still
    /// needs.
    ckpt: Mutex<()>,
    shutdown: Arc<AtomicBool>,
    flusher: Option<JoinHandle<()>>,
}

impl DurableKv {
    /// Open (recovering if the storage holds state) a durable store.
    ///
    /// Errors are real I/O failures or a structurally corrupt
    /// checkpoint file — the latter is a hard error because the
    /// write-fsync-rename protocol never produces one. A torn log tail
    /// is *not* an error: it is the expected shape of a crash and is
    /// simply not replayed.
    pub fn open(storage: Arc<dyn Storage>, config: DurableKvConfig) -> io::Result<Self> {
        // 1. Checkpoint, if any.
        let snap = if storage.exists(SNAP_NAME)? {
            decode_snapshot(&storage.read(SNAP_NAME)?).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "corrupt checkpoint snap.bin")
            })?
        } else {
            Snapshot::default()
        };
        let _ = storage.remove(SNAP_TMP);

        // 2. Segment inventory: live segments replay; stragglers below
        // the snapshot's first live segment are a crashed truncation's
        // leftovers — drop them.
        let mut live = Vec::new();
        let mut max_seen = None::<u64>;
        for name in storage.list()? {
            if let Some(n) = parse_segment_name(&name) {
                max_seen = Some(max_seen.map_or(n, |m| m.max(n)));
                if n >= snap.start_seg {
                    live.push(n);
                } else {
                    let _ = storage.remove(&name);
                }
            }
        }
        live.sort_unstable();

        // 3. Longest valid prefix: stop a segment at its first invalid
        // frame or seq regression, keep going with the next segment
        // (garbage only ever sits where a crash cut a tail; later
        // segments were opened by a recovered incarnation).
        let mut last_seq = 0u64;
        let mut max_wv = snap.w;
        let mut replay = Vec::new();
        'segments: for n in &live {
            let bytes = storage.read(&crate::wal::segment_name(*n))?;
            let mut at = 0usize;
            while let Some((entry, next)) = decode_entry(&bytes, at) {
                if entry.seq <= last_seq {
                    break 'segments;
                }
                last_seq = entry.seq;
                max_wv = max_wv.max(entry.wv);
                if entry.wv > snap.w {
                    match decode_redo(entry.payload) {
                        Some(ops) => replay.push(ops),
                        // CRC-valid but unparseable: not a torn tail,
                        // a version/codec mismatch — stop here rather
                        // than guess.
                        None => break 'segments,
                    }
                }
                at = next;
            }
        }

        // 4. Build the log and the store, then load the state. Replay
        // goes through plain store operations: they stage no redo, so
        // nothing is re-logged.
        let next_segment = max_seen.map_or(snap.start_seg, |m| (m + 1).max(snap.start_seg));
        let wal = Arc::new(Wal::new(storage.clone(), config.wal, last_seq + 1, next_segment));
        let stm = Arc::new(Stm::with_redo_sink(StmConfig::default(), wal.clone()));
        // Restore the commit clock before any transaction runs: new
        // commits must be stamped above every persisted `wv` (the
        // snapshot cut and the whole replayed prefix), or the *next*
        // recovery's `wv > W` filter would silently skip them —
        // acknowledged-durable loss one restart later.
        stm.catch_up_clock(max_wv);
        wal.attach_stm(&stm);
        let store = KvStore::with_config(stm, config.kv);
        let loaded: Vec<(u64, Value)> =
            snap.records.iter().map(|(key, value)| (*key, Value::from_bytes(value))).collect();
        store.multi_put(&loaded);
        for ops in replay {
            for op in ops {
                match op {
                    RedoOp::Put(key, value) => {
                        store.put(key, Value::from_bytes(&value));
                    }
                    RedoOp::Delete(key) => {
                        store.delete(key);
                    }
                }
            }
        }

        // 5. Async mode gets a background flusher.
        let shutdown = Arc::new(AtomicBool::new(false));
        let flusher = if config.wal.mode == Durability::Async {
            let wal = wal.clone();
            let shutdown = shutdown.clone();
            let interval = config.wal.async_interval;
            Some(std::thread::spawn(move || {
                while !shutdown.load(Ordering::Acquire) {
                    wal.flush_tick();
                    std::thread::park_timeout(interval);
                }
            }))
        } else {
            None
        };

        Ok(Self {
            store,
            wal,
            storage,
            mode: config.wal.mode,
            read_only: AtomicBool::new(false),
            ckpt: Mutex::new(()),
            shutdown,
            flusher,
        })
    }

    /// Run one atomic, logged transaction and report its durability
    /// fate. `Err` means the store is already read-only (an earlier log
    /// failure); [`DurabilityOutcome::Lost`] means *this* call's log
    /// write failed and flipped the store read-only — the transaction
    /// is visible in memory either way.
    pub fn txn_logged<T>(
        &self,
        mut f: impl FnMut(&mut DurableTxn<'_, '_, '_>) -> TxResult<T>,
    ) -> Result<(T, CommitInfo, DurabilityOutcome), DurabilityLost> {
        if self.read_only.load(Ordering::Acquire) {
            return Err(DurabilityLost);
        }
        if self.wal.is_poisoned() {
            self.read_only.store(true, Ordering::Release);
            return Err(DurabilityLost);
        }
        // Backpressure *before* the transaction: the redo sink runs
        // under location locks and must never block.
        self.wal.throttle();
        let (value, info) = self.store.txn_logged(|kv| f(&mut DurableTxn { kv }));
        let outcome = match info.seq {
            // Read-only transaction (or one whose writes all vanished):
            // nothing to persist.
            None => DurabilityOutcome::Durable,
            Some(seq) => match self.mode {
                Durability::Sync => match self.wal.wait_durable(seq) {
                    Ok(()) => DurabilityOutcome::Durable,
                    Err(DurabilityLost) => {
                        self.read_only.store(true, Ordering::Release);
                        DurabilityOutcome::Lost
                    }
                },
                Durability::Async => {
                    if self.wal.is_poisoned() {
                        self.read_only.store(true, Ordering::Release);
                        DurabilityOutcome::Lost
                    } else {
                        DurabilityOutcome::Pending
                    }
                }
            },
        };
        Ok((value, info, outcome))
    }

    /// Run one atomic, logged transaction; collapse
    /// [`DurabilityOutcome::Lost`] into `Err` (the value is still
    /// applied in memory — callers who need it anyway use
    /// [`DurableKv::txn_logged`]).
    pub fn txn<T>(
        &self,
        f: impl FnMut(&mut DurableTxn<'_, '_, '_>) -> TxResult<T>,
    ) -> Result<T, DurabilityLost> {
        let (value, _, outcome) = self.txn_logged(f)?;
        match outcome {
            DurabilityOutcome::Lost => Err(DurabilityLost),
            _ => Ok(value),
        }
    }

    /// Durable point write; returns the previous value.
    pub fn put(&self, key: u64, value: Value) -> Result<Option<Value>, DurabilityLost> {
        self.txn(|tx| tx.put(key, value.clone()))
    }

    /// Durable point delete; returns the deleted value.
    pub fn delete(&self, key: u64) -> Result<Option<Value>, DurabilityLost> {
        self.txn(|tx| tx.delete(key))
    }

    /// Durable batched ingest. Chunks internally; duplicate keys are
    /// last-write-wins, matching [`KvStore::multi_put`].
    pub fn multi_put(&self, entries: &[(u64, Value)]) -> Result<(), DurabilityLost> {
        for chunk in entries.chunks(256) {
            self.txn(|tx| {
                for (key, value) in chunk {
                    tx.put(*key, value.clone())?;
                }
                Ok(())
            })?;
        }
        Ok(())
    }

    /// Point read (never blocked by durability state).
    pub fn get(&self, key: u64) -> Option<Value> {
        self.store.get(key)
    }

    /// Membership probe.
    pub fn contains(&self, key: u64) -> bool {
        self.store.contains(key)
    }

    /// Snapshot range scan over `[lo, hi)`.
    pub fn scan_range(&self, lo: u64, hi: u64) -> Vec<(u64, Value)> {
        self.store.scan_range(lo, hi)
    }

    /// Snapshot count of keys in `[lo, hi)`.
    pub fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.store.range_count(lo, hi)
    }

    /// Live record count.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// True once a log failure has latched the store read-only.
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::Acquire)
    }

    /// Force everything staged onto storage (async mode's graceful
    /// shutdown; a no-op when nothing is pending).
    pub fn flush(&self) -> Result<(), DurabilityLost> {
        self.wal.flush_all()
    }

    /// The store's STM (stats, advisor installation).
    pub fn stm(&self) -> &Arc<Stm> {
        self.store.stm()
    }

    /// The write-ahead log (tests and instrumentation).
    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// Checkpoint: write the current record set to `snap.bin` and
    /// truncate every wholly-covered log segment. Concurrent writers
    /// keep committing throughout — the only global effect is a segment
    /// rotation. The snapshot's cut is bounded below by the MVCC
    /// snapshot registry: a scan bound registered in `snapreg` pins the
    /// version history it can reach, and this checkpoint reads through
    /// exactly that machinery, so it can never observe (or persist) a
    /// state newer than its own registered bound allows. Concurrent
    /// calls are serialized internally: an interleaving where an older
    /// cut's snapshot renames over a newer one whose truncation already
    /// ran would lose the segments between the two cuts.
    pub fn checkpoint(&self) -> io::Result<()> {
        let _serialize = self.ckpt.lock().expect("checkpoint mutex poisoned");
        // Rotate first: everything already flushed lives in segments
        // `<= old_last` with `wv <= W` (their flushes happened before
        // we read W below).
        let old_last = self.wal.rotate();
        let (w, records) = self.stm().run(TxParams::new(Semantics::Snapshot), |tx| {
            let w = tx.read_version();
            let mut records = self.store.scan_range_in(tx, 0, u64::MAX)?;
            if let Some(value) = self.store.get_in(tx, u64::MAX)? {
                records.push((u64::MAX, value));
            }
            Ok((w, records))
        });
        let raw: Vec<(u64, Vec<u8>)> =
            records.iter().map(|(key, value)| (*key, value.as_bytes().to_vec())).collect();
        let start_seg = old_last + 1;
        let bytes = encode_snapshot(w, start_seg, &raw);
        self.storage.remove(SNAP_TMP)?;
        self.storage.append(SNAP_TMP, &bytes)?;
        self.storage.sync(SNAP_TMP)?;
        self.storage.rename(SNAP_TMP, SNAP_NAME)?;
        for name in self.storage.list()? {
            if let Some(n) = parse_segment_name(&name) {
                if n <= old_last {
                    self.storage.remove(&name)?;
                }
            }
        }
        Ok(())
    }
}

impl Drop for DurableKv {
    /// Stop the background flusher. Deliberately does *not* flush:
    /// dropping an async store mid-stream is the crash case its
    /// semantics already cover, and the torture harness relies on drops
    /// doing no storage I/O. Call [`DurableKv::flush`] for a graceful
    /// async shutdown.
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(flusher) = self.flusher.take() {
            flusher.thread().unpark();
            let _ = flusher.join();
        }
    }
}
