//! On-disk framing: CRC32, length-prefixed redo entry frames, and the
//! snapshot file layout.
//!
//! ## Entry frame
//!
//! ```text
//! [magic u32][len u32][seq u64][wv u64][crc u32][payload: len bytes]
//! ```
//!
//! All integers little-endian. `crc` is CRC-32 (IEEE) over the `len`,
//! `seq` and `wv` fields followed by the payload, so a torn header and
//! a torn payload are equally detectable. Decoding stops at the first
//! frame that is truncated, mis-magicked, implausibly sized, or fails
//! its CRC — the **longest valid prefix** rule recovery is built on.
//!
//! ## Snapshot file
//!
//! ```text
//! [magic u32][cut W u64][start_seg u64][count u64]
//! [count × (key u64, vlen u32, vlen bytes)][crc u32]
//! ```
//!
//! `crc` covers everything after the magic. The snapshot is written to
//! a temporary name, fsynced, then renamed over `snap.bin`, so a valid
//! file is replaced atomically; recovery treats a missing file as an
//! empty store and a corrupt one as a hard error (the write protocol
//! never produces one — see `store.rs`).

/// Entry frame magic: "PLOG".
pub const ENTRY_MAGIC: u32 = 0x504C_4F47;
/// Snapshot file magic: "PSNP".
pub const SNAP_MAGIC: u32 = 0x5053_4E50;
/// Entry frame header size in bytes.
pub const ENTRY_HEADER: usize = 4 + 4 + 8 + 8 + 4;
/// Sanity cap on a single entry's payload — anything larger than this
/// in a length field is treated as corruption, not an allocation
/// request.
pub const MAX_ENTRY_PAYLOAD: u32 = 64 << 20;

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Streaming CRC-32 step (state in, state out; pre/post-inversion is
/// the caller's job — use [`crc32`] unless chaining slices).
fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state ^= b as u32;
        for _ in 0..8 {
            let mask = (state & 1).wrapping_neg();
            state = (state >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    state
}

/// CRC over an entry's protected region: `len`, `seq`, `wv`, payload.
fn entry_crc(len: u32, seq: u64, wv: u64, payload: &[u8]) -> u32 {
    let mut state = 0xFFFF_FFFFu32;
    state = crc32_update(state, &len.to_le_bytes());
    state = crc32_update(state, &seq.to_le_bytes());
    state = crc32_update(state, &wv.to_le_bytes());
    state = crc32_update(state, payload);
    state ^ 0xFFFF_FFFF
}

/// Append one framed entry to `buf`.
pub fn encode_entry(buf: &mut Vec<u8>, seq: u64, wv: u64, payload: &[u8]) {
    let len = payload.len() as u32;
    buf.extend_from_slice(&ENTRY_MAGIC.to_le_bytes());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&wv.to_le_bytes());
    buf.extend_from_slice(&entry_crc(len, seq, wv, payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// One decoded entry frame, borrowing its payload from the log bytes.
#[derive(Debug, PartialEq, Eq)]
pub struct Entry<'a> {
    /// Log sequence number (monotone across the whole log).
    pub seq: u64,
    /// Commit clock stamp.
    pub wv: u64,
    /// Opaque redo payload.
    pub payload: &'a [u8],
}

fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("caller checked length"))
}

fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("caller checked length"))
}

/// Decode the next frame at `bytes[at..]`. Returns the entry and the
/// offset just past it, or `None` for anything that is not a complete,
/// CRC-valid frame (truncation, torn tail, bit rot — recovery stops
/// here).
pub fn decode_entry(bytes: &[u8], at: usize) -> Option<(Entry<'_>, usize)> {
    let b = bytes.get(at..)?;
    if b.len() < ENTRY_HEADER {
        return None;
    }
    if read_u32(b) != ENTRY_MAGIC {
        return None;
    }
    let len = read_u32(&b[4..]);
    if len > MAX_ENTRY_PAYLOAD {
        return None;
    }
    let seq = read_u64(&b[8..]);
    let wv = read_u64(&b[16..]);
    let crc = read_u32(&b[24..]);
    let payload = b.get(ENTRY_HEADER..ENTRY_HEADER + len as usize)?;
    if entry_crc(len, seq, wv, payload) != crc {
        return None;
    }
    Some((Entry { seq, wv, payload }, at + ENTRY_HEADER + len as usize))
}

/// Serialize a snapshot file: cut `w`, first live segment `start_seg`,
/// and the full record set.
pub fn encode_snapshot(w: u64, start_seg: u64, records: &[(u64, Vec<u8>)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32 + records.len() * 24);
    buf.extend_from_slice(&SNAP_MAGIC.to_le_bytes());
    buf.extend_from_slice(&w.to_le_bytes());
    buf.extend_from_slice(&start_seg.to_le_bytes());
    buf.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for (key, value) in records {
        buf.extend_from_slice(&key.to_le_bytes());
        buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
        buf.extend_from_slice(value);
    }
    let crc = crc32(&buf[4..]);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// A decoded snapshot file.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Checkpoint cut: redo entries stamped `wv <= w` are already
    /// reflected in `records` and are skipped at replay.
    pub w: u64,
    /// First segment number recovery replays; lower-numbered stragglers
    /// (a crash between snapshot install and segment deletion) are
    /// ignored.
    pub start_seg: u64,
    /// The record set at the cut.
    pub records: Vec<(u64, Vec<u8>)>,
}

/// Decode a snapshot file. `None` means structurally invalid (bad
/// magic, truncated, CRC mismatch) — the caller decides whether that is
/// "no snapshot" or corruption.
pub fn decode_snapshot(bytes: &[u8]) -> Option<Snapshot> {
    if bytes.len() < 4 + 8 + 8 + 8 + 4 {
        return None;
    }
    if read_u32(bytes) != SNAP_MAGIC {
        return None;
    }
    let body = &bytes[..bytes.len() - 4];
    let crc = read_u32(&bytes[bytes.len() - 4..]);
    if crc32(&body[4..]) != crc {
        return None;
    }
    let w = read_u64(&body[4..]);
    let start_seg = read_u64(&body[12..]);
    let count = read_u64(&body[20..]);
    let mut at = 28usize;
    let mut records = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let key = read_u64(body.get(at..at + 8)?);
        let vlen = read_u32(body.get(at + 8..at + 12)?) as usize;
        let value = body.get(at + 12..at + 12 + vlen)?;
        records.push((key, value.to_vec()));
        at += 12 + vlen;
    }
    if at != body.len() {
        return None;
    }
    Some(Snapshot { w, start_seg, records })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn entry_roundtrip_and_tail_rejection() {
        let mut buf = Vec::new();
        encode_entry(&mut buf, 7, 42, b"hello");
        encode_entry(&mut buf, 8, 43, b"");
        let (e1, next) = decode_entry(&buf, 0).expect("first frame");
        assert_eq!((e1.seq, e1.wv, e1.payload), (7, 42, &b"hello"[..]));
        let (e2, end) = decode_entry(&buf, next).expect("second frame");
        assert_eq!((e2.seq, e2.wv, e2.payload), (8, 43, &b""[..]));
        assert_eq!(end, buf.len());
        assert!(decode_entry(&buf, end).is_none(), "clean end of log");
        // Every strict prefix of a frame is rejected, never mis-parsed.
        for cut in next..buf.len() {
            assert!(decode_entry(&buf[..cut], next).is_none(), "torn tail at {cut}");
        }
    }

    #[test]
    fn entry_bitflips_are_detected() {
        let mut clean = Vec::new();
        encode_entry(&mut clean, 1, 2, b"payload-bytes");
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut torn = clean.clone();
                torn[byte] ^= 1 << bit;
                let decoded = decode_entry(&torn, 0);
                assert!(decoded.is_none(), "flip of byte {byte} bit {bit} must not decode");
            }
        }
    }

    #[test]
    fn snapshot_roundtrip_and_corruption() {
        let records = vec![(1u64, vec![1, 2, 3]), (u64::MAX, vec![]), (9, vec![0; 100])];
        let bytes = encode_snapshot(55, 3, &records);
        let snap = decode_snapshot(&bytes).expect("roundtrip");
        assert_eq!(snap, Snapshot { w: 55, start_seg: 3, records });
        for cut in 0..bytes.len() {
            assert!(decode_snapshot(&bytes[..cut]).is_none(), "truncation at {cut}");
        }
        let mut flipped = bytes.clone();
        flipped[10] ^= 0x40;
        assert!(decode_snapshot(&flipped).is_none());
    }
}
