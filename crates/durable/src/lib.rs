//! # polytm-durable — the durability wing
//!
//! The rest of this workspace keeps every committed state in memory;
//! this crate makes the KV store's commits survive crashes, without
//! giving up the polymorphic STM's commit path:
//!
//! * [`frame`] — CRC-framed, length-prefixed redo entries and the
//!   checkpoint file layout; decoding follows the longest-valid-prefix
//!   rule.
//! * [`storage`] — the [`Storage`] plane: real files ([`RealFs`]) and a
//!   deterministic fault simulator ([`FaultFs`]) that injects seeded
//!   crash points, torn tail writes, and short fsyncs.
//! * [`wal`] — the redo-only write-ahead log with leader/follower group
//!   commit, sync/async durability modes, backpressure, and a poisoned
//!   ([`DurabilityLost`]) degradation path.
//! * [`store`] — [`DurableKv`]: logged transactions over
//!   [`polytm_kv::KvStore`], checkpoint + log truncation keyed off the
//!   MVCC snapshot machinery, and crash recovery back to the committed
//!   prefix.
//!
//! The correctness contract, the group-commit protocol, and the fault
//! matrix the torture tests sweep are documented in `DESIGN.md` §9.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod frame;
pub mod storage;
pub mod store;
pub mod wal;

pub use error::DurabilityLost;
pub use storage::{FaultFs, RealFs, Storage};
pub use store::{DurabilityOutcome, DurableKv, DurableKvConfig, DurableTxn, SNAP_NAME};
pub use wal::{Durability, Wal, WalConfig};
