//! The durability failure type.

use std::fmt;

/// The write-ahead log can no longer honor durability: a log I/O error
/// poisoned the group-commit loop, so new commits could be acknowledged
/// only by lying about persistence. Instead the store degrades to
/// read-only — reads keep serving the last consistent in-memory state,
/// writes return this error, and the recovered-on-restart state is the
/// durable prefix from before the failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityLost;

impl fmt::Display for DurabilityLost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("durability lost: write-ahead log poisoned by an I/O error; store is read-only")
    }
}

impl std::error::Error for DurabilityLost {}
