//! Michael's lock-free hash table (SPAA 2002): a fixed array of
//! Harris–Michael list buckets.
//!
//! Exactly the structure the paper's introduction describes:
//! "a hash table synchronizes efficiently concurrent insert, remove, and
//! contains operations, as long as the number of elements remains
//! proportional to the number of buckets. Unfortunately, this data
//! structure does not support a resize" — which is why experiment E6
//! pits it (and the split-ordered list) against the transactional
//! resizable hash set.

use crate::list::LockFreeList;

/// Fixed-capacity lock-free hash set of `u64` keys.
pub struct MichaelHashSet {
    buckets: Vec<LockFreeList>,
}

fn spread(key: u64) -> u64 {
    // Fibonacci multiplicative hash to de-cluster sequential keys.
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl MichaelHashSet {
    /// A table with a fixed number of buckets (rounded up to ≥ 1).
    pub fn new(buckets: usize) -> Self {
        Self { buckets: (0..buckets.max(1)).map(|_| LockFreeList::new()).collect() }
    }

    fn bucket(&self, key: u64) -> &LockFreeList {
        let i = (spread(key) >> 32) as usize % self.buckets.len();
        &self.buckets[i]
    }

    /// Is `key` present?
    pub fn contains(&self, key: u64) -> bool {
        self.bucket(key).contains(key)
    }

    /// Insert; false if present.
    pub fn insert(&self, key: u64) -> bool {
        self.bucket(key).insert(key)
    }

    /// Remove; false if absent.
    pub fn remove(&self, key: u64) -> bool {
        self.bucket(key).remove(key)
    }

    /// Number of keys (exact only at quiescence).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    /// Number of keys in `[lo, hi)`: a per-bucket wait-free scan summed
    /// across the table — each bucket sees its own instant, so the total
    /// is not an atomic cut (exact only at quiescence).
    pub fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.buckets.iter().map(|b| b.range_count(lo, hi)).sum()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|b| b.is_empty())
    }

    /// Bucket count (fixed for the table's lifetime — the limitation the
    /// paper calls out).
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_semantics() {
        let h = MichaelHashSet::new(8);
        assert!(h.insert(1));
        assert!(h.insert(2));
        assert!(!h.insert(1));
        assert!(h.contains(1) && h.contains(2) && !h.contains(3));
        assert!(h.remove(1));
        assert!(!h.remove(1));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn range_count_sums_across_buckets() {
        let h = MichaelHashSet::new(8);
        for k in 0..128u64 {
            h.insert(k);
        }
        assert_eq!(h.range_count(0, 128), 128);
        assert_eq!(h.range_count(32, 96), 64);
        assert_eq!(h.range_count(127, 1 << 20), 1);
        assert_eq!(h.range_count(10, 10), 0);
    }

    #[test]
    fn many_keys_across_buckets() {
        let h = MichaelHashSet::new(16);
        for k in 0..1000 {
            assert!(h.insert(k));
        }
        assert_eq!(h.len(), 1000);
        for k in 0..1000 {
            assert!(h.contains(k));
        }
    }

    #[test]
    fn concurrent_mixed_workload() {
        let h = MichaelHashSet::new(32);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    let base = t * 100_000;
                    for i in 0..500 {
                        assert!(h.insert(base + i));
                    }
                    for i in 0..500 {
                        if i % 3 == 0 {
                            assert!(h.remove(base + i));
                        }
                    }
                    for i in 0..500 {
                        assert_eq!(h.contains(base + i), i % 3 != 0);
                    }
                });
            }
        });
        assert_eq!(h.len(), 4 * (500 - 167));
    }

    #[test]
    fn bucket_count_is_fixed() {
        let h = MichaelHashSet::new(4);
        for k in 0..10_000 {
            h.insert(k);
        }
        assert_eq!(h.buckets(), 4, "Michael's table never resizes");
    }
}
