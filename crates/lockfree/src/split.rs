//! Shalev–Shavit split-ordered lists: a lock-free *extensible* hash set
//! (JACM 2006 — the paper's citation \[4\], recommended "if one expects the
//! structure to be unbalanced or overloaded").
//!
//! All keys live in **one** Harris–Michael list sorted by *split-order*
//! (bit-reversed) keys. A directory of lazily-initialized *dummy* nodes
//! provides shortcuts into the list; doubling the table is a single
//! atomic bump of `size` — no keys ever move, new dummies are spliced in
//! on first access. Regular keys are bit-reversed with the low bit set;
//! dummy keys are bit-reversed bucket indices with the low bit clear, so
//! each bucket's dummy precedes exactly its bucket's regular keys.

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use std::sync::atomic::{AtomicUsize, Ordering};

struct Node {
    /// Split-order key (bit-reversed; LSB set for regular nodes).
    so_key: u64,
    /// Original key (meaningful for regular nodes only).
    key: u64,
    next: Atomic<Node>,
}

/// Split-order key of a regular node. `key` must be `< 2^63`.
fn regular_so(key: u64) -> u64 {
    debug_assert!(key < 1 << 63, "split-ordered keys must be < 2^63");
    key.reverse_bits() | 1
}

/// Split-order key of a bucket's dummy node.
fn dummy_so(bucket: usize) -> u64 {
    (bucket as u64).reverse_bits()
}

/// Parent bucket: clear the most significant set bit.
fn parent_of(bucket: usize) -> usize {
    debug_assert!(bucket > 0);
    bucket & !(1usize << (usize::BITS - 1 - bucket.leading_zeros()))
}

struct Position<'g> {
    prev: &'g Atomic<Node>,
    curr: Shared<'g, Node>,
}

/// A lock-free, resizable hash set of `u64` keys (`< 2^63`).
pub struct SplitOrderedSet {
    /// Directory of dummy-node pointers, lazily initialized. Fixed
    /// capacity: the table can double until it has this many buckets.
    buckets: Vec<Atomic<Node>>,
    /// Current number of active buckets (a power of two).
    size: AtomicUsize,
    /// Number of regular keys (drives the load-factor check).
    count: AtomicUsize,
    /// Double when count > size * max_load.
    max_load: usize,
}

impl Default for SplitOrderedSet {
    fn default() -> Self {
        Self::new(1 << 16, 4)
    }
}

impl SplitOrderedSet {
    /// A set that can grow up to `max_buckets` buckets (rounded up to a
    /// power of two), doubling when the average bucket exceeds
    /// `max_load` keys.
    pub fn new(max_buckets: usize, max_load: usize) -> Self {
        let max_buckets = max_buckets.next_power_of_two().max(2);
        let buckets: Vec<Atomic<Node>> = (0..max_buckets).map(|_| Atomic::null()).collect();
        // Bucket 0's dummy is the list head; it exists from the start.
        let head = Owned::new(Node { so_key: dummy_so(0), key: 0, next: Atomic::null() });
        let guard = epoch::pin();
        let head = head.into_shared(&guard);
        buckets[0].store(head, Ordering::Release);
        Self { buckets, size: AtomicUsize::new(2), count: AtomicUsize::new(0), max_load }
    }

    /// Harris–Michael find over split-order keys, starting at the given
    /// bucket link (a dummy node's position), helping unlink marked
    /// nodes.
    fn find<'g>(&'g self, start: &'g Atomic<Node>, so_key: u64, guard: &'g Guard) -> Position<'g> {
        'retry: loop {
            let mut prev = start;
            let mut curr = prev.load(Ordering::Acquire, guard);
            loop {
                let curr_ref = match unsafe { curr.as_ref() } {
                    Some(r) => r,
                    None => return Position { prev, curr },
                };
                let next = curr_ref.next.load(Ordering::Acquire, guard);
                if next.tag() == 1 {
                    match prev.compare_exchange(
                        curr.with_tag(0),
                        next.with_tag(0),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    ) {
                        Ok(_) => {
                            // SAFETY: unlinked from the only path to it.
                            unsafe { guard.defer_destroy(curr) };
                            curr = next.with_tag(0);
                        }
                        Err(_) => continue 'retry,
                    }
                } else {
                    if curr_ref.so_key >= so_key {
                        return Position { prev, curr };
                    }
                    prev = &curr_ref.next;
                    curr = next;
                }
            }
        }
    }

    /// Dummy-node link for `bucket`, initializing the bucket (and,
    /// recursively, its parents) on first touch.
    fn bucket_link<'g>(&'g self, bucket: usize, guard: &'g Guard) -> &'g Atomic<Node> {
        let ptr = self.buckets[bucket].load(Ordering::Acquire, guard);
        let dummy = if ptr.is_null() { self.initialize_bucket(bucket, guard) } else { ptr };
        // SAFETY: dummy nodes are never removed; pinned by `guard`.
        unsafe { &dummy.deref().next }
    }

    fn initialize_bucket<'g>(&'g self, bucket: usize, guard: &'g Guard) -> Shared<'g, Node> {
        debug_assert!(bucket > 0, "bucket 0 is initialized at construction");
        let parent = parent_of(bucket);
        let parent_ptr = self.buckets[parent].load(Ordering::Acquire, guard);
        let parent_ptr =
            if parent_ptr.is_null() { self.initialize_bucket(parent, guard) } else { parent_ptr };
        // SAFETY: dummies are immortal.
        let parent_link = unsafe { &parent_ptr.deref().next };

        let so = dummy_so(bucket);
        let mut new_dummy = Owned::new(Node { so_key: so, key: 0, next: Atomic::null() });
        let dummy_ptr = loop {
            let pos = self.find(parent_link, so, guard);
            if let Some(c) = unsafe { pos.curr.as_ref() } {
                if c.so_key == so {
                    break pos.curr; // another thread spliced it in
                }
            }
            new_dummy.next.store(pos.curr, Ordering::Relaxed);
            match pos.prev.compare_exchange(
                pos.curr,
                new_dummy,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            ) {
                Ok(inserted) => break inserted,
                Err(e) => new_dummy = e.new,
            }
        };
        // Publish the shortcut; a racing initializer found/inserted the
        // same node (find() deduplicates by so_key), so losing is fine.
        let _ = self.buckets[bucket].compare_exchange(
            Shared::null(),
            dummy_ptr,
            Ordering::AcqRel,
            Ordering::Acquire,
            guard,
        );
        self.buckets[bucket].load(Ordering::Acquire, guard)
    }

    fn bucket_of(&self, key: u64) -> usize {
        key as usize % self.size.load(Ordering::Acquire)
    }

    /// Is `key` present?
    pub fn contains(&self, key: u64) -> bool {
        let guard = epoch::pin();
        let link = self.bucket_link(self.bucket_of(key), &guard);
        let so = regular_so(key);
        let mut curr = link.load(Ordering::Acquire, &guard);
        while let Some(node) = unsafe { curr.as_ref() } {
            let next = node.next.load(Ordering::Acquire, &guard);
            if node.so_key >= so {
                return node.so_key == so && next.tag() == 0;
            }
            curr = next.with_tag(0);
        }
        false
    }

    /// Insert; false if present. Doubles the table when the load factor
    /// is exceeded (up to the directory capacity).
    pub fn insert(&self, key: u64) -> bool {
        let guard = epoch::pin();
        let so = regular_so(key);
        let link = self.bucket_link(self.bucket_of(key), &guard);
        let mut node = Owned::new(Node { so_key: so, key, next: Atomic::null() });
        loop {
            let pos = self.find(link, so, &guard);
            if let Some(c) = unsafe { pos.curr.as_ref() } {
                if c.so_key == so {
                    return false;
                }
            }
            node.next.store(pos.curr, Ordering::Relaxed);
            match pos.prev.compare_exchange(
                pos.curr,
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(_) => break,
                Err(e) => node = e.new,
            }
        }
        let count = self.count.fetch_add(1, Ordering::Relaxed) + 1;
        let size = self.size.load(Ordering::Acquire);
        if count > size * self.max_load && size * 2 <= self.buckets.len() {
            // One doubling at a time; losing the race is fine.
            let _ = self.size.compare_exchange(size, size * 2, Ordering::AcqRel, Ordering::Relaxed);
        }
        true
    }

    /// Remove; false if absent.
    pub fn remove(&self, key: u64) -> bool {
        let guard = epoch::pin();
        let so = regular_so(key);
        let link = self.bucket_link(self.bucket_of(key), &guard);
        loop {
            let pos = self.find(link, so, &guard);
            let curr_ref = match unsafe { pos.curr.as_ref() } {
                Some(r) if r.so_key == so => r,
                _ => return false,
            };
            let next = curr_ref.next.load(Ordering::Acquire, &guard);
            if next.tag() == 1 {
                continue;
            }
            if curr_ref
                .next
                .compare_exchange(
                    next,
                    next.with_tag(1),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    &guard,
                )
                .is_err()
            {
                continue;
            }
            if pos
                .prev
                .compare_exchange(
                    pos.curr,
                    next.with_tag(0),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    &guard,
                )
                .is_ok()
            {
                // SAFETY: unlinked.
                unsafe { guard.defer_destroy(pos.curr) };
            }
            self.count.fetch_sub(1, Ordering::Relaxed);
            return true;
        }
    }

    /// Number of keys (counter-based; exact at quiescence).
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// True when no keys are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current number of active buckets (grows by doubling).
    pub fn active_buckets(&self) -> usize {
        self.size.load(Ordering::Relaxed)
    }

    /// Number of keys in `[lo, hi)`: one wait-free walk of the
    /// underlying split-ordered list. Split-order is *not* key order, so
    /// the whole list is traversed whatever the span; like the other
    /// lock-free scans this is not an atomic cut (exact at quiescence).
    pub fn range_count(&self, lo: u64, hi: u64) -> usize {
        let guard = epoch::pin();
        let mut n = 0usize;
        let mut curr = self.buckets[0].load(Ordering::Acquire, &guard);
        while let Some(node) = unsafe { curr.as_ref() } {
            let next = node.next.load(Ordering::Acquire, &guard);
            if node.so_key & 1 == 1 && next.tag() == 0 && lo <= node.key && node.key < hi {
                n += 1;
            }
            curr = next.with_tag(0);
        }
        n
    }

    /// Keys in split-order (for tests; exact only at quiescence).
    pub fn to_vec_unordered(&self) -> Vec<u64> {
        let guard = epoch::pin();
        let mut out = Vec::new();
        let mut curr = self.buckets[0].load(Ordering::Acquire, &guard);
        while let Some(node) = unsafe { curr.as_ref() } {
            let next = node.next.load(Ordering::Acquire, &guard);
            if node.so_key & 1 == 1 && next.tag() == 0 {
                out.push(node.key);
            }
            curr = next.with_tag(0);
        }
        out
    }
}

impl Drop for SplitOrderedSet {
    fn drop(&mut self) {
        // SAFETY: exclusive access; walk the single underlying list.
        unsafe {
            let guard = epoch::unprotected();
            let mut curr = self.buckets[0].load(Ordering::Relaxed, guard);
            while !curr.is_null() {
                let owned = curr.into_owned();
                curr = owned.next.load(Ordering::Relaxed, guard).with_tag(0);
                drop(owned);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_order_keys_interleave_correctly() {
        // Dummies sort before their bucket's regular keys.
        assert!(dummy_so(0) < regular_so(0));
        assert!(regular_so(0) < regular_so(2)); // 0 and 2 share bucket 0 at size 2
        assert!(dummy_so(1) < regular_so(1));
        assert!(dummy_so(0) < dummy_so(1));
        // Parent relation clears the MSB.
        assert_eq!(parent_of(1), 0);
        assert_eq!(parent_of(3), 1);
        assert_eq!(parent_of(6), 2);
        assert_eq!(parent_of(12), 4);
    }

    #[test]
    fn range_count_walks_split_order() {
        let s = SplitOrderedSet::new(64, 4);
        for k in 0..100u64 {
            s.insert(k);
        }
        assert_eq!(s.range_count(0, 100), 100);
        assert_eq!(s.range_count(25, 75), 50);
        assert_eq!(s.range_count(99, 500), 1);
        assert_eq!(s.range_count(40, 40), 0);
    }

    #[test]
    fn basic_set_semantics() {
        let s = SplitOrderedSet::new(64, 4);
        assert!(s.insert(1));
        assert!(s.insert(2));
        assert!(!s.insert(1));
        assert!(s.contains(1) && s.contains(2));
        assert!(!s.contains(3));
        assert!(s.remove(1));
        assert!(!s.remove(1));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn grows_under_load_without_losing_keys() {
        let s = SplitOrderedSet::new(1 << 10, 2);
        for k in 0..2000u64 {
            assert!(s.insert(k), "insert {k}");
        }
        assert!(s.active_buckets() > 2, "table must have doubled");
        for k in 0..2000u64 {
            assert!(s.contains(k), "key {k} lost after growth");
        }
        assert_eq!(s.len(), 2000);
        let mut v = s.to_vec_unordered();
        v.sort_unstable();
        assert_eq!(v, (0..2000).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_inserts_during_growth() {
        let s = SplitOrderedSet::new(1 << 12, 2);
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..500u64 {
                        assert!(s.insert(t * 1_000_000 + i));
                    }
                });
            }
        });
        assert_eq!(s.len(), 2000);
        for t in 0..4u64 {
            for i in 0..500u64 {
                assert!(s.contains(t * 1_000_000 + i));
            }
        }
    }

    #[test]
    fn concurrent_churn_per_key_exactness() {
        let s = SplitOrderedSet::new(1 << 10, 3);
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let s = &s;
                sc.spawn(move || {
                    let base = t * 50_000;
                    for i in 0..300 {
                        assert!(s.insert(base + i));
                    }
                    for i in (0..300).step_by(2) {
                        assert!(s.remove(base + i));
                    }
                    for i in 0..300 {
                        assert_eq!(s.contains(base + i), i % 2 == 1, "key {}", base + i);
                    }
                });
            }
        });
        assert_eq!(s.len(), 4 * 150);
    }

    #[test]
    fn remove_then_reinsert_same_key() {
        let s = SplitOrderedSet::new(16, 4);
        for _ in 0..10 {
            assert!(s.insert(7));
            assert!(s.remove(7));
        }
        assert!(!s.contains(7));
        assert!(s.is_empty());
    }
}
