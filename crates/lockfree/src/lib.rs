//! # polytm-lockfree — the lock-free baselines the paper cites
//!
//! The paper's introduction motivates polymorphism against "highly tuned"
//! non-generic concurrent structures, naming two: Michael's lock-free
//! hash table / list-based sets (SPAA 2002, citation \[3\]) and
//! Shalev–Shavit split-ordered lists (JACM 2006, citation \[4\], the
//! resizable lock-free hash table). These are reimplemented here from
//! scratch on crossbeam-epoch and serve as the lock-free comparators in
//! experiments E4 and E6:
//!
//! * [`list`] — Harris–Michael sorted linked-list set (logical deletion
//!   via pointer marking, physical unlinking during traversal);
//! * [`hash`] — Michael's hash table: a fixed array of Harris–Michael
//!   buckets (fast, but *cannot resize* — the exact limitation the paper
//!   uses to motivate transactional hash tables);
//! * [`split`] — the split-ordered list: a single lock-free list in
//!   bit-reversed key order with a growable directory of dummy nodes,
//!   i.e. a lock-free *resizable* hash set.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hash;
pub mod list;
pub mod split;

pub use hash::MichaelHashSet;
pub use list::LockFreeList;
pub use split::SplitOrderedSet;
