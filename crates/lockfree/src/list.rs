//! Harris–Michael lock-free sorted linked-list set.
//!
//! Deletion is two-phase: a node is *logically* deleted by CAS-marking
//! the low tag bit of its `next` pointer, then *physically* unlinked by
//! any traversal that encounters it (helping). Reclamation is deferred
//! through crossbeam-epoch. Keys are `u64`.

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use std::sync::atomic::Ordering;

pub(crate) struct Node {
    pub(crate) key: u64,
    pub(crate) next: Atomic<Node>,
}

/// A lock-free sorted set of `u64` keys.
pub struct LockFreeList {
    head: Atomic<Node>,
}

impl Default for LockFreeList {
    fn default() -> Self {
        Self::new()
    }
}

/// Position returned by the internal search: the link to CAS and the node
/// it currently points to (first unmarked node with `node.key >= key`, or
/// null).
struct Position<'g> {
    prev: &'g Atomic<Node>,
    curr: Shared<'g, Node>,
}

impl LockFreeList {
    /// Empty set.
    pub fn new() -> Self {
        Self { head: Atomic::null() }
    }

    /// Michael's `find`: locate `key`'s position, physically unlinking
    /// marked nodes encountered on the way.
    fn find<'g>(&'g self, key: u64, guard: &'g Guard) -> Position<'g> {
        'retry: loop {
            let mut prev: &'g Atomic<Node> = &self.head;
            let mut curr = prev.load(Ordering::Acquire, guard);
            loop {
                let curr_ref = match unsafe { curr.as_ref() } {
                    Some(r) => r,
                    None => return Position { prev, curr },
                };
                let next = curr_ref.next.load(Ordering::Acquire, guard);
                if next.tag() == 1 {
                    // curr is logically deleted: help unlink it.
                    match prev.compare_exchange(
                        curr.with_tag(0),
                        next.with_tag(0),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    ) {
                        Ok(_) => {
                            // SAFETY: curr is now unreachable from the
                            // list; epoch defers the free until all
                            // current readers unpin.
                            unsafe { guard.defer_destroy(curr) };
                            curr = next.with_tag(0);
                        }
                        Err(_) => continue 'retry,
                    }
                } else {
                    if curr_ref.key >= key {
                        return Position { prev, curr };
                    }
                    prev = &curr_ref.next;
                    curr = next;
                }
            }
        }
    }

    /// Is `key` present? Wait-free traversal (no helping).
    pub fn contains(&self, key: u64) -> bool {
        let guard = epoch::pin();
        let mut curr = self.head.load(Ordering::Acquire, &guard);
        while let Some(node) = unsafe { curr.as_ref() } {
            let next = node.next.load(Ordering::Acquire, &guard);
            if node.key >= key {
                return node.key == key && next.tag() == 0;
            }
            curr = next.with_tag(0);
        }
        false
    }

    /// Insert `key`; false if present.
    pub fn insert(&self, key: u64) -> bool {
        let guard = epoch::pin();
        let mut node = Owned::new(Node { key, next: Atomic::null() });
        loop {
            let pos = self.find(key, &guard);
            if let Some(c) = unsafe { pos.curr.as_ref() } {
                if c.key == key {
                    return false;
                }
            }
            node.next.store(pos.curr, Ordering::Relaxed);
            match pos.prev.compare_exchange(
                pos.curr,
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(_) => return true,
                Err(e) => node = e.new,
            }
        }
    }

    /// Remove `key`; false if absent.
    pub fn remove(&self, key: u64) -> bool {
        let guard = epoch::pin();
        loop {
            let pos = self.find(key, &guard);
            let curr_ref = match unsafe { pos.curr.as_ref() } {
                Some(r) if r.key == key => r,
                _ => return false,
            };
            let next = curr_ref.next.load(Ordering::Acquire, &guard);
            if next.tag() == 1 {
                continue; // someone else is removing it; re-find (help)
            }
            // Logical deletion: mark the next pointer.
            if curr_ref
                .next
                .compare_exchange(
                    next,
                    next.with_tag(1),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    &guard,
                )
                .is_err()
            {
                continue;
            }
            // Physical unlink (best effort; find() will otherwise help).
            if pos
                .prev
                .compare_exchange(
                    pos.curr,
                    next.with_tag(0),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    &guard,
                )
                .is_ok()
            {
                // SAFETY: unlinked; epoch-deferred.
                unsafe { guard.defer_destroy(pos.curr) };
            }
            return true;
        }
    }

    /// Number of unmarked nodes (O(n); exact only at quiescence).
    pub fn len(&self) -> usize {
        let guard = epoch::pin();
        let mut n = 0;
        let mut curr = self.head.load(Ordering::Acquire, &guard);
        while let Some(node) = unsafe { curr.as_ref() } {
            let next = node.next.load(Ordering::Acquire, &guard);
            if next.tag() == 0 {
                n += 1;
            }
            curr = next.with_tag(0);
        }
        n
    }

    /// True when no unmarked node exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of unmarked keys in `[lo, hi)`. Like every lock-free
    /// traversal here, this is a *wait-free scan*, not an atomic cut:
    /// updates that race past the traversal front may or may not be
    /// observed. The ordered layout at least bounds the walk: it starts
    /// counting at the first node ≥ `lo` and stops at `hi`.
    pub fn range_count(&self, lo: u64, hi: u64) -> usize {
        let guard = epoch::pin();
        let mut n = 0usize;
        let mut curr = self.head.load(Ordering::Acquire, &guard);
        while let Some(node) = unsafe { curr.as_ref() } {
            let next = node.next.load(Ordering::Acquire, &guard);
            if node.key >= hi {
                break;
            }
            if node.key >= lo && next.tag() == 0 {
                n += 1;
            }
            curr = next.with_tag(0);
        }
        n
    }

    /// Snapshot of keys in order (exact only at quiescence).
    pub fn to_vec(&self) -> Vec<u64> {
        let guard = epoch::pin();
        let mut out = Vec::new();
        let mut curr = self.head.load(Ordering::Acquire, &guard);
        while let Some(node) = unsafe { curr.as_ref() } {
            let next = node.next.load(Ordering::Acquire, &guard);
            if next.tag() == 0 {
                out.push(node.key);
            }
            curr = next.with_tag(0);
        }
        out
    }
}

impl Drop for LockFreeList {
    fn drop(&mut self) {
        // SAFETY: exclusive access; free the whole chain eagerly.
        unsafe {
            let guard = epoch::unprotected();
            let mut curr = self.head.load(Ordering::Relaxed, guard);
            while !curr.is_null() {
                let owned = curr.into_owned();
                curr = owned.next.load(Ordering::Relaxed, guard).with_tag(0);
                drop(owned);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_count_half_open_semantics() {
        let l = LockFreeList::new();
        for k in [1u64, 3, 5, 7, 9] {
            l.insert(k);
        }
        assert_eq!(l.range_count(3, 8), 3);
        assert_eq!(l.range_count(0, 100), 5);
        assert_eq!(l.range_count(4, 5), 0);
        l.remove(5);
        assert_eq!(l.range_count(3, 8), 2, "removed key no longer counted");
    }

    #[test]
    fn insert_contains_remove_roundtrip() {
        let l = LockFreeList::new();
        assert!(l.insert(5));
        assert!(l.insert(1));
        assert!(!l.insert(5));
        assert!(l.contains(1));
        assert!(l.contains(5));
        assert!(!l.contains(3));
        assert!(l.remove(5));
        assert!(!l.remove(5));
        assert_eq!(l.to_vec(), vec![1]);
    }

    #[test]
    fn stays_sorted() {
        let l = LockFreeList::new();
        for k in [9, 2, 7, 1, 8, 3] {
            l.insert(k);
        }
        assert_eq!(l.to_vec(), vec![1, 2, 3, 7, 8, 9]);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let l = LockFreeList::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let l = &l;
                s.spawn(move || {
                    for i in 0..200u64 {
                        assert!(l.insert(i * 4 + t));
                    }
                });
            }
        });
        assert_eq!(l.len(), 800);
        let v = l.to_vec();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn concurrent_same_key_insert_once() {
        let l = LockFreeList::new();
        let wins = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = &l;
                let wins = &wins;
                s.spawn(move || {
                    if l.insert(42) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 1);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn concurrent_remove_each_key_removed_once() {
        let l = LockFreeList::new();
        for k in 0..100 {
            l.insert(k);
        }
        let removed = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = &l;
                let removed = &removed;
                s.spawn(move || {
                    for k in 0..100 {
                        if l.remove(k) {
                            removed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(removed.load(Ordering::Relaxed), 100, "every key removed exactly once");
        assert!(l.is_empty());
    }

    #[test]
    fn churn_preserves_sortedness_and_uniqueness() {
        let l = LockFreeList::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let l = &l;
                s.spawn(move || {
                    let mut seed = 7u64 + t;
                    for _ in 0..1000 {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = (seed >> 33) % 32;
                        if seed & 1 == 0 {
                            l.insert(k);
                        } else {
                            l.remove(k);
                        }
                    }
                });
            }
        });
        let v = l.to_vec();
        assert!(v.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates: {v:?}");
    }
}
