//! Hand-over-hand (lock coupling) sorted linked-list set.
//!
//! This is precisely the locking discipline of the paper's Figure 1:
//! a traversal holds at most two node locks at a time, releasing the lock
//! on `x` *before* it reaches `z` — deliberately not two-phase, which is
//! where its extra concurrency over monomorphic transactions comes from.
//! It is the lock-based baseline for experiment E4.

use std::sync::Arc;

use parking_lot::Mutex;

/// A node: key plus next pointer, both guarded by one mutex.
struct Node {
    key: i64,
    next: Mutex<Option<Arc<Node>>>,
}

/// Sorted singly-linked set of `i64` keys with lock-coupling traversal.
///
/// Keys are bounded to `(i64::MIN, i64::MAX)` exclusive: the sentinels
/// use the extremes.
pub struct HandOverHandList {
    head: Arc<Node>,
}

impl Default for HandOverHandList {
    fn default() -> Self {
        Self::new()
    }
}

impl HandOverHandList {
    /// Empty set.
    pub fn new() -> Self {
        let tail = Arc::new(Node { key: i64::MAX, next: Mutex::new(None) });
        let head = Arc::new(Node { key: i64::MIN, next: Mutex::new(Some(tail)) });
        Self { head }
    }

    /// Is `key` in the set?
    ///
    /// Traverses with a sliding per-node lock window: each step locks one
    /// `next` pointer, follows it, and releases it before locking the
    /// following one — exactly Figure 1's discipline, in which the lock
    /// on `x` is released long before `z` is reached.
    pub fn contains(&self, key: i64) -> bool {
        assert!(key > i64::MIN && key < i64::MAX, "sentinel keys are reserved");
        let mut pred = Arc::clone(&self.head);
        loop {
            let curr = {
                let next = pred.next.lock();
                Arc::clone(next.as_ref().expect("tail sentinel never reached as pred"))
            };
            if curr.key >= key {
                return curr.key == key;
            }
            pred = curr;
        }
    }

    /// Insert `key`; false if already present.
    pub fn insert(&self, key: i64) -> bool {
        assert!(key > i64::MIN && key < i64::MAX, "sentinel keys are reserved");
        loop {
            let done = self.try_insert(key);
            if let Some(r) = done {
                return r;
            }
        }
    }

    fn try_insert(&self, key: i64) -> Option<bool> {
        let mut pred = Arc::clone(&self.head);
        loop {
            let mut next_guard = pred.next.lock();
            let curr = Arc::clone(next_guard.as_ref().expect("pred is never the tail"));
            if curr.key == key {
                return Some(false);
            }
            if curr.key > key {
                let node = Arc::new(Node { key, next: Mutex::new(Some(Arc::clone(&curr))) });
                *next_guard = Some(node);
                return Some(true);
            }
            drop(next_guard);
            pred = curr;
        }
    }

    /// Remove `key`; false if absent.
    pub fn remove(&self, key: i64) -> bool {
        assert!(key > i64::MIN && key < i64::MAX, "sentinel keys are reserved");
        let mut pred = Arc::clone(&self.head);
        loop {
            let mut pred_guard = pred.next.lock();
            let curr = Arc::clone(pred_guard.as_ref().expect("pred is never the tail"));
            if curr.key > key {
                return false;
            }
            if curr.key == key {
                // Coupling: lock curr while still holding pred.
                let curr_next = curr.next.lock();
                *pred_guard =
                    Some(Arc::clone(curr_next.as_ref().expect("removed node is never the tail")));
                return true;
            }
            drop(pred_guard);
            pred = curr;
        }
    }

    /// Number of keys (O(n), takes locks hand-over-hand).
    pub fn len(&self) -> usize {
        let mut count = 0;
        let mut cur = Arc::clone(&self.head);
        loop {
            let next = {
                let g = cur.next.lock();
                match g.as_ref() {
                    Some(n) => Arc::clone(n),
                    None => break,
                }
            };
            if next.key != i64::MAX {
                count += 1;
            }
            cur = next;
        }
        count
    }

    /// Number of keys in `[lo, hi)`. The traversal holds one node lock
    /// at a time (the list's own discipline), so the count is a
    /// *sliding-window* view, not an atomic cut — concurrent updates
    /// behind the traversal front are not observed. That is precisely
    /// the consistency a lock-coupled structure can offer a range scan,
    /// and the contrast the scenario matrix measures against the
    /// snapshot-backed transactional scans.
    pub fn range_count(&self, lo: i64, hi: i64) -> usize {
        let mut n = 0usize;
        let mut pred = Arc::clone(&self.head);
        loop {
            let curr = {
                let next = pred.next.lock();
                match next.as_ref() {
                    Some(c) => Arc::clone(c),
                    None => return n,
                }
            };
            if curr.key >= hi {
                return n;
            }
            if curr.key >= lo {
                n += 1;
            }
            pred = curr;
        }
    }

    /// True when the set has no keys.
    pub fn is_empty(&self) -> bool {
        let g = self.head.next.lock();
        g.as_ref().map(|n| n.key == i64::MAX).unwrap_or(true)
    }

    /// Snapshot of the keys in order (for tests; not atomic).
    pub fn to_vec(&self) -> Vec<i64> {
        let mut out = Vec::new();
        let mut cur = Arc::clone(&self.head);
        loop {
            let next = {
                let g = cur.next.lock();
                match g.as_ref() {
                    Some(n) => Arc::clone(n),
                    None => break,
                }
            };
            if next.key != i64::MAX {
                out.push(next.key);
            }
            cur = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let l = HandOverHandList::new();
        assert!(l.is_empty());
        assert!(l.insert(5));
        assert!(l.insert(1));
        assert!(l.insert(9));
        assert!(!l.insert(5), "duplicate insert must fail");
        assert!(l.contains(1) && l.contains(5) && l.contains(9));
        assert!(!l.contains(4));
        assert_eq!(l.to_vec(), vec![1, 5, 9]);
        assert!(l.remove(5));
        assert!(!l.remove(5));
        assert_eq!(l.to_vec(), vec![1, 9]);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn range_count_half_open_semantics() {
        let l = HandOverHandList::new();
        for k in [2, 4, 6, 8, 10] {
            l.insert(k);
        }
        assert_eq!(l.range_count(4, 9), 3); // 4, 6, 8
        assert_eq!(l.range_count(0, 100), 5);
        assert_eq!(l.range_count(5, 5), 0);
        assert_eq!(l.range_count(10, i64::MAX - 1), 1, "sentinel never counted");
    }

    #[test]
    fn ordered_after_random_inserts() {
        let l = HandOverHandList::new();
        let keys = [7, 3, 9, 1, 8, 2, 6, 4, 5];
        for k in keys {
            l.insert(k);
        }
        assert_eq!(l.to_vec(), (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let l = HandOverHandList::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let l = &l;
                s.spawn(move || {
                    for i in 0..100 {
                        assert!(l.insert((i * 4 + t) as i64));
                    }
                });
            }
        });
        assert_eq!(l.len(), 400);
        let v = l.to_vec();
        assert!(v.windows(2).all(|w| w[0] < w[1]), "keys must stay sorted");
    }

    #[test]
    fn concurrent_insert_remove_churn_keeps_invariants() {
        let l = HandOverHandList::new();
        for i in 0..64 {
            l.insert(i);
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let l = &l;
                s.spawn(move || {
                    let mut seed = 99u64 + t;
                    for _ in 0..500 {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = ((seed >> 33) % 64) as i64;
                        if seed & 1 == 0 {
                            l.insert(k);
                        } else {
                            l.remove(k);
                        }
                    }
                });
            }
        });
        let v = l.to_vec();
        assert!(v.windows(2).all(|w| w[0] < w[1]), "sorted and duplicate-free");
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sentinel_keys_rejected() {
        HandOverHandList::new().insert(i64::MAX);
    }
}
