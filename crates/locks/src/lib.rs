//! # polytm-locks — lock-based synchronization substrate
//!
//! The paper's Theorem 1 compares transactions against *lock-based
//! synchronization*; its Figure 1 relies on a hand-over-hand (lock
//! coupling) traversal, and its proof notes that "fine-grained locks can
//! implement 2-phase-locking". This crate provides those lock-based
//! building blocks as real, usable data structures and executors:
//!
//! * [`twopl`] — a pessimistic two-phase-locking engine over lock-guarded
//!   variables with wait-die deadlock avoidance (every 2PL history is a
//!   valid lock-based history; used as the "locks can do whatever
//!   monomorphic TMs do" half of Theorem 1);
//! * [`hoh`] — a hand-over-hand locked sorted list set (the *non*-2PL
//!   discipline that accepts Figure 1's schedule), used as the lock-based
//!   baseline in the list benchmarks;
//! * [`striped`] — a striped-lock hash set with coarse full-lock resize,
//!   used as the lock-based baseline in the hash benchmarks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hoh;
pub mod striped;
pub mod twopl;

pub use hoh::HandOverHandList;
pub use striped::StripedHashSet;
pub use twopl::{LockVar, TwoPhaseEngine, TwoPlError};
