//! Striped-lock hash set: the classic "efficient as long as the number of
//! elements remains proportional to the number of buckets" structure the
//! paper's introduction cites, with the equally classic pain point —
//! resizing requires taking *every* stripe lock.
//!
//! This is the lock-based baseline for experiment E6 (hash table with
//! resize), contrasted with the transactional hash set (elastic
//! operations + a monomorphic resize transaction) and the split-ordered
//! lock-free table.

use parking_lot::{Mutex, RwLock};

/// A hash set of `u64` keys with per-stripe mutexes and stop-the-world
/// resize.
pub struct StripedHashSet {
    /// Guards the bucket directory; writers (resize) take it exclusively.
    directory: RwLock<Directory>,
    /// Resize when len > buckets * LOAD_FACTOR.
    max_load: usize,
}

struct Directory {
    stripes: Vec<Mutex<Vec<u64>>>,
    len: std::sync::atomic::AtomicUsize,
}

const DEFAULT_STRIPES: usize = 16;

fn bucket_of(key: u64, n: usize) -> usize {
    // Fibonacci hashing: spreads sequential keys well.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % n
}

impl Default for StripedHashSet {
    fn default() -> Self {
        Self::new(DEFAULT_STRIPES, 4)
    }
}

impl StripedHashSet {
    /// `stripes` initial buckets, resizing when average bucket length
    /// exceeds `max_load`.
    pub fn new(stripes: usize, max_load: usize) -> Self {
        assert!(stripes > 0 && max_load > 0);
        Self {
            directory: RwLock::new(Directory {
                stripes: (0..stripes).map(|_| Mutex::new(Vec::new())).collect(),
                len: std::sync::atomic::AtomicUsize::new(0),
            }),
            max_load,
        }
    }

    /// Is `key` present?
    pub fn contains(&self, key: u64) -> bool {
        let dir = self.directory.read();
        let b = bucket_of(key, dir.stripes.len());
        let found = dir.stripes[b].lock().contains(&key);
        found
    }

    /// Insert; false if already present. May trigger a resize.
    pub fn insert(&self, key: u64) -> bool {
        let inserted = {
            let dir = self.directory.read();
            let b = bucket_of(key, dir.stripes.len());
            let mut bucket = dir.stripes[b].lock();
            if bucket.contains(&key) {
                false
            } else {
                bucket.push(key);
                dir.len.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                true
            }
        };
        if inserted {
            self.maybe_resize();
        }
        inserted
    }

    /// Remove; false if absent.
    pub fn remove(&self, key: u64) -> bool {
        let dir = self.directory.read();
        let b = bucket_of(key, dir.stripes.len());
        let mut bucket = dir.stripes[b].lock();
        match bucket.iter().position(|&k| k == key) {
            Some(i) => {
                bucket.swap_remove(i);
                dir.len.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Number of keys in `[lo, hi)`. Takes the directory read lock (so
    /// no resize interleaves) and then each stripe lock *in turn* — a
    /// stripe-by-stripe view, not an atomic cut: an element moving
    /// between already-visited and not-yet-visited stripes mid-scan can
    /// be double-counted or missed. Atomicity would need every stripe
    /// lock at once (the structure's documented resize pain point);
    /// the scenario matrix exists to surface exactly that trade-off.
    pub fn range_count(&self, lo: u64, hi: u64) -> usize {
        let dir = self.directory.read();
        dir.stripes
            .iter()
            .map(|stripe| stripe.lock().iter().filter(|&&k| lo <= k && k < hi).count())
            .sum()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.directory.read().len.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current number of buckets (grows over time).
    pub fn buckets(&self) -> usize {
        self.directory.read().stripes.len()
    }

    fn maybe_resize(&self) {
        let need = {
            let dir = self.directory.read();
            dir.len.load(std::sync::atomic::Ordering::Relaxed) > dir.stripes.len() * self.max_load
        };
        if !need {
            return;
        }
        // Stop the world: exclusive directory lock.
        let mut dir = self.directory.write();
        let len = dir.len.load(std::sync::atomic::Ordering::Relaxed);
        if len <= dir.stripes.len() * self.max_load {
            return; // someone else resized
        }
        let new_n = dir.stripes.len() * 2;
        let mut new_stripes: Vec<Vec<u64>> = vec![Vec::new(); new_n];
        for stripe in &dir.stripes {
            for &k in stripe.lock().iter() {
                new_stripes[bucket_of(k, new_n)].push(k);
            }
        }
        dir.stripes = new_stripes.into_iter().map(Mutex::new).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let s = StripedHashSet::default();
        assert!(s.insert(10));
        assert!(!s.insert(10));
        assert!(s.contains(10));
        assert!(!s.contains(11));
        assert!(s.remove(10));
        assert!(!s.remove(10));
        assert!(s.is_empty());
    }

    #[test]
    fn range_count_filters_across_stripes() {
        let s = StripedHashSet::new(4, 8);
        for k in 0..64 {
            s.insert(k);
        }
        assert_eq!(s.range_count(0, 64), 64);
        assert_eq!(s.range_count(16, 48), 32);
        assert_eq!(s.range_count(63, 1000), 1);
        assert_eq!(s.range_count(7, 7), 0);
    }

    #[test]
    fn resize_preserves_membership() {
        let s = StripedHashSet::new(2, 2);
        for k in 0..100 {
            assert!(s.insert(k));
        }
        assert!(s.buckets() > 2, "the table must have grown");
        for k in 0..100 {
            assert!(s.contains(k), "key {k} lost during resize");
        }
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn concurrent_inserts_during_resizes() {
        let s = StripedHashSet::new(2, 2);
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..250u64 {
                        assert!(s.insert(t * 1_000_000 + i));
                    }
                });
            }
        });
        assert_eq!(s.len(), 1000);
        for t in 0..4u64 {
            for i in 0..250u64 {
                assert!(s.contains(t * 1_000_000 + i));
            }
        }
    }

    #[test]
    fn mixed_churn_is_linear_consistent_per_key() {
        let s = StripedHashSet::new(4, 3);
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let s = &s;
                sc.spawn(move || {
                    // Each thread owns a disjoint key space: per-key
                    // operations are sequential, so outcomes are exact.
                    let base = t * 10_000;
                    for i in 0..200 {
                        assert!(s.insert(base + i));
                    }
                    for i in 0..200 {
                        if i % 2 == 0 {
                            assert!(s.remove(base + i));
                        }
                    }
                    for i in 0..200 {
                        assert_eq!(s.contains(base + i), i % 2 == 1);
                    }
                });
            }
        });
        assert_eq!(s.len(), 400);
    }
}
