//! A two-phase-locking (2PL) engine: the pessimistic counterpart to the
//! STM, with wait-die deadlock avoidance.
//!
//! A transaction acquires each variable's lock on first touch (growing
//! phase) and releases everything at the end (shrinking phase = commit),
//! which is strict 2PL: histories are serializable *and* recoverable.
//! Deadlocks are avoided with **wait-die**: an older transaction waits
//! for a younger lock holder, a younger one dies (returns
//! [`TwoPlError::Die`]) and must be re-run — mirroring the wound-wait/
//! wait-die schedulers of database engines, and giving the same
//! "guaranteed progress by age" flavour as the STM's Greedy contention
//! manager.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

/// A variable protected by the 2PL engine.
///
/// Cheap to clone (an `Arc`); clones alias the same variable.
pub struct LockVar<T> {
    inner: Arc<VarInner<T>>,
}

struct VarInner<T> {
    /// Current holder's transaction timestamp, 0 when free. Used only for
    /// wait-die arbitration; the data itself is behind `value`.
    holder: AtomicU64,
    value: Mutex<T>,
}

impl<T> Clone for LockVar<T> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<T> LockVar<T> {
    /// New variable with an initial value.
    pub fn new(value: T) -> Self {
        Self { inner: Arc::new(VarInner { holder: AtomicU64::new(0), value: Mutex::new(value) }) }
    }

    fn addr(&self) -> usize {
        Arc::as_ptr(&self.inner) as *const () as usize
    }

    /// Read the value outside any transaction (locks momentarily).
    pub fn load(&self) -> T
    where
        T: Clone,
    {
        self.inner.value.lock().clone()
    }
}

/// Why a 2PL transaction attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoPlError {
    /// Wait-die: this (younger) transaction died to avoid deadlock; rerun
    /// it (the engine's [`TwoPhaseEngine::run`] does so automatically).
    Die,
}

/// The engine: issues timestamps and runs transactions.
#[derive(Debug, Default)]
pub struct TwoPhaseEngine {
    ts: AtomicU64,
    dies: AtomicU64,
    commits: AtomicU64,
}

/// Per-transaction lock table handed to the closure.
pub struct TwoPlTxn<'e, 't> {
    ts: u64,
    engine: &'e TwoPhaseEngine,
    /// addr -> held guard. Guards are erased to keep the table
    /// heterogeneous; values are accessed through re-borrowed pointers.
    held: HashMap<usize, Box<dyn ErasedGuard + 't>>,
}

trait ErasedGuard {}
impl<T> ErasedGuard for (MutexGuard<'_, T>, *mut T) {}

impl TwoPhaseEngine {
    /// New engine.
    pub fn new() -> Self {
        Self { ts: AtomicU64::new(1), dies: AtomicU64::new(0), commits: AtomicU64::new(0) }
    }

    /// Number of wait-die deaths so far.
    pub fn death_count(&self) -> u64 {
        self.dies.load(Ordering::Relaxed)
    }

    /// Number of committed transactions so far.
    pub fn commit_count(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Run a transaction to completion, re-executing on wait-die deaths.
    ///
    /// The `'t` lifetime covers every [`LockVar`] the closure touches
    /// (inferred at the call site).
    pub fn run<'t, T, F>(&self, mut f: F) -> T
    where
        F: FnMut(&mut TwoPlTxn<'_, 't>) -> Result<T, TwoPlError>,
    {
        loop {
            let ts = self.ts.fetch_add(1, Ordering::Relaxed);
            let mut txn = TwoPlTxn { ts, engine: self, held: HashMap::new() };
            match f(&mut txn) {
                Ok(v) => {
                    self.commits.fetch_add(1, Ordering::Relaxed);
                    // Strict 2PL: all locks drop here, after the "commit".
                    drop(txn);
                    return v;
                }
                Err(TwoPlError::Die) => {
                    self.dies.fetch_add(1, Ordering::Relaxed);
                    drop(txn);
                    // Brief politeness pause so the older transaction can
                    // finish (single-core friendliness).
                    std::thread::yield_now();
                }
            }
        }
    }
}

impl<'t> TwoPlTxn<'_, 't> {
    /// This transaction's wait-die timestamp (smaller = older).
    pub fn timestamp(&self) -> u64 {
        self.ts
    }

    /// Acquire (if not already held) the variable's lock and return a
    /// mutable reference to its value, valid until the transaction ends.
    ///
    /// # Errors
    /// [`TwoPlError::Die`] when wait-die decides this transaction must
    /// restart (it is younger than the current holder).
    pub fn acquire<'a, T: 't>(&'a mut self, var: &'t LockVar<T>) -> Result<&'a mut T, TwoPlError> {
        let addr = var.addr();
        if !self.held.contains_key(&addr) {
            let guard = loop {
                match var.inner.value.try_lock() {
                    Some(g) => break g,
                    None => {
                        let holder = var.inner.holder.load(Ordering::Relaxed);
                        if holder != 0 && self.ts > holder {
                            // Younger than the holder: die.
                            return Err(TwoPlError::Die);
                        }
                        // Older (or holder unknown for an instant): wait.
                        std::thread::yield_now();
                    }
                }
            };
            var.inner.holder.store(self.ts, Ordering::Relaxed);
            let mut guard = guard;
            let ptr: *mut T = &mut *guard;
            self.held.insert(addr, Box::new((guard, ptr)));
        }
        let erased = self.held.get_mut(&addr).expect("just inserted");
        // SAFETY: the boxed pair holds the live MutexGuard for this value;
        // `ptr` points into the mutex-protected data, which cannot move
        // and is exclusively ours while the guard lives. The returned
        // borrow is tied to `&'a mut self`, which keeps the guard boxed
        // and untouched for its duration.
        let any_ref: &mut Box<dyn ErasedGuard + 't> = erased;
        let pair = unsafe {
            &mut *(any_ref.as_mut() as *mut (dyn ErasedGuard + 't)
                as *mut (MutexGuard<'t, T>, *mut T))
        };
        Ok(unsafe { &mut *pair.1 })
    }

    /// Read a copy of the variable (acquiring its lock).
    pub fn read<T: Clone + 't>(&mut self, var: &'t LockVar<T>) -> Result<T, TwoPlError> {
        Ok(self.acquire(var)?.clone())
    }

    /// Overwrite the variable (acquiring its lock).
    pub fn write<T: 't>(&mut self, var: &'t LockVar<T>, value: T) -> Result<(), TwoPlError> {
        *self.acquire(var)? = value;
        Ok(())
    }

    /// Number of locks currently held (growing phase size).
    pub fn locks_held(&self) -> usize {
        self.held.len()
    }
}

impl Drop for TwoPlTxn<'_, '_> {
    fn drop(&mut self) {
        // Clear holder markers before guards drop. (Guards drop when the
        // HashMap is dropped right after; a momentarily stale holder of 0
        // only makes wait-die conservative.)
        let _ = &self.engine;
        self.held.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_threaded_read_write() {
        let engine = TwoPhaseEngine::new();
        let a = LockVar::new(1i64);
        let b = LockVar::new(2i64);
        let sum = engine.run(|t| {
            let x = t.read(&a)?;
            let y = t.read(&b)?;
            t.write(&a, x + y)?;
            Ok(x + y)
        });
        assert_eq!(sum, 3);
        assert_eq!(a.load(), 3);
        assert_eq!(engine.commit_count(), 1);
    }

    #[test]
    fn repeated_acquire_is_idempotent() {
        let engine = TwoPhaseEngine::new();
        let a = LockVar::new(0i64);
        engine.run(|t| {
            *t.acquire(&a)? += 1;
            *t.acquire(&a)? += 1;
            assert_eq!(t.locks_held(), 1);
            Ok(())
        });
        assert_eq!(a.load(), 2);
    }

    #[test]
    fn concurrent_transfers_conserve_total() {
        let engine = TwoPhaseEngine::new();
        let accounts: Vec<LockVar<i64>> = (0..8).map(|_| LockVar::new(100)).collect();
        std::thread::scope(|s| {
            for tid in 0..4 {
                let engine = &engine;
                let accounts = &accounts;
                s.spawn(move || {
                    let mut seed = 12345u64 + tid;
                    for _ in 0..300 {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let i = (seed >> 33) as usize % accounts.len();
                        let j = (seed >> 13) as usize % accounts.len();
                        if i == j {
                            continue;
                        }
                        engine.run(|t| {
                            // Acquire in address order is NOT needed:
                            // wait-die resolves deadlocks.
                            let x = t.read(&accounts[i])?;
                            let y = t.read(&accounts[j])?;
                            t.write(&accounts[i], x - 1)?;
                            t.write(&accounts[j], y + 1)?;
                            Ok(())
                        });
                    }
                });
            }
        });
        let total: i64 = accounts.iter().map(|a| a.load()).sum();
        assert_eq!(total, 800);
    }

    #[test]
    fn hot_counter_makes_progress() {
        let engine = TwoPhaseEngine::new();
        let hot = LockVar::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let engine = &engine;
                let hot = &hot;
                s.spawn(move || {
                    for _ in 0..500 {
                        engine.run(|t| {
                            let v = t.read(hot)?;
                            t.write(hot, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(hot.load(), 2000);
        assert_eq!(engine.commit_count(), 2000);
    }

    #[test]
    fn heterogeneous_value_types_in_one_txn() {
        let engine = TwoPhaseEngine::new();
        let name = LockVar::new(String::from("a"));
        let count = LockVar::new(0usize);
        engine.run(|t| {
            t.acquire(&name)?.push('b');
            *t.acquire(&count)? += 1;
            Ok(())
        });
        assert_eq!(name.load(), "ab");
        assert_eq!(count.load(), 1);
    }
}
