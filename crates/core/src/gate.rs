//! The irrevocable-era gate: gate-free transaction begin/extend.
//!
//! An irrevocable transaction publishes each eager write at its own write
//! version, so a read version sampled *inside* its eager-write window
//! `[wv1, wvk)` would serialize between those writes and observe them
//! half-applied. The seed implementation enforced this with a global
//! `RwLock` taken shared on **every** begin and rv-extension — an atomic
//! RMW on one shared cache line for every transaction in the system.
//!
//! This module replaces it with:
//!
//! * an **era word**: even = no irrevocable transaction, odd =
//!   irrevocable in progress. Optimistic begin/extend samples the clock
//!   with a seqlock-style double-check of the era (two plain loads, zero
//!   RMWs, no shared-line writes);
//! * **striped committer slots**: a writing commit registers in a
//!   cache-padded per-thread slot for the duration of its lock/publish
//!   window, so an incoming irrevocable transaction can drain all
//!   in-flight commits before freezing the committed state. Registration
//!   is two RMWs per *writing commit* (which already performs a CAS per
//!   written location), not per begin.
//!
//! ## Why the rv double-check is sound (see also DESIGN.md §1)
//!
//! The irrevocable path makes the era odd (SeqCst CAS) *before* its
//! first eager write, and even again (Release `fetch_add`) only *after*
//! its last; each eager write advances the clock with an AcqRel RMW.
//! The optimistic sampler loads era (Acquire, must be even), loads the
//! clock (Acquire), then re-loads era and retries unless it reads the
//! same even value. Suppose the sampled clock value `c >= wv1` for some
//! window `[wv1, wvk)`:
//!
//! * if that window's era-odd store happened before our first era load,
//!   the first load sees odd (or a later era) and we spin/retry;
//! * otherwise the Acquire clock load that observed `c >= wv1` reads
//!   from the release sequence through `wv1`'s AcqRel increment, which
//!   synchronizes-with it; the era-odd store is sequenced before that
//!   increment, so the era re-load (program-ordered after an Acquire
//!   load, hence not hoisted above it) must observe the odd (or a later)
//!   era — different from the first load's value — and we retry.
//!
//! Conversely `c < wv1` never lands inside the window. A *closed*
//! window cannot supply a stale `c` either: reading the closing (even,
//! Release) era value synchronizes-with the close, making the final
//! clock value `>= wvk` visible before the clock load. Eras strictly
//! increase, so value equality of the two loads rules out a full
//! odd→even cycle between them.
//!
//! ## Committer/irrevocable mutual exclusion
//!
//! A committer registers (SeqCst `fetch_add` on its slot) and *then*
//! checks the era (SeqCst load); the irrevocable side makes the era odd
//! (SeqCst CAS) and *then* scans the slots (SeqCst loads). This is the
//! classic store→load / store→load pattern: in every interleaving either
//! the committer sees the odd era (and backs out before touching any
//! location lock) or the irrevocable transaction sees the registration
//! (and waits for it to drain). SeqCst on these four accesses is what
//! rules out the both-proceed outcome; everything else is
//! Acquire/Release.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

use crate::clock::GlobalClock;
use crate::shard::current_thread_index;
use crate::stm::polite_spin;

/// Number of committer slots. Power of two; threads beyond this share
/// slots (the slots are counters, so sharing is correct, merely less
/// parallel).
const COMMIT_STRIPES: usize = 32;

/// Wait behind a (potentially long) irrevocable era: spin briefly, then
/// yield, then sleep with a growing interval. Irrevocable bodies run
/// arbitrary user code, and the seed's RwLock *parked* waiters here —
/// an unbounded spin would burn CPU (and, oversubscribed, steal quanta
/// from the very transaction being waited out). A futex-style park on
/// the era word would be stronger; the sleep keeps the fast path free
/// of any parking machinery while bounding the burn.
#[inline]
fn era_wait(spins: u32) {
    if spins < 64 {
        polite_spin(spins);
    } else {
        let us = 50 * u64::from((spins - 63).min(20));
        std::thread::sleep(std::time::Duration::from_micros(us));
    }
}

/// The era word plus the striped committer registry (see module docs).
#[derive(Debug)]
pub(crate) struct IrrevGate {
    /// Even = no irrevocable transaction; odd = one in progress.
    era: AtomicU64,
    /// In-flight writing commits per thread stripe.
    committers: Box<[CachePadded<AtomicU64>]>,
    /// Smallest birth timestamp among transactions currently waiting to
    /// open an era; `u64::MAX` when none. Era admission is age-ordered
    /// through this word (see [`IrrevGate::enter_irrevocable`]): without
    /// it, the transaction that the irrevocable *liveness fallback*
    /// upgraded precisely because it kept losing could lose the era CAS
    /// to a stream of younger irrevocable transactions too — the
    /// contention-manager identity (`TxMeta::birth_ts`) silently dropped
    /// out of the one path whose whole point is aging.
    oldest_waiter: CachePadded<AtomicU64>,
}

impl IrrevGate {
    pub(crate) fn new() -> Self {
        Self {
            era: AtomicU64::new(0),
            committers: (0..COMMIT_STRIPES).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            oldest_waiter: CachePadded::new(AtomicU64::new(u64::MAX)),
        }
    }

    /// Current era value (diagnostics/tests).
    #[cfg(test)]
    pub(crate) fn era(&self) -> u64 {
        self.era.load(Ordering::Acquire)
    }

    /// Samples a read version that is guaranteed not to land inside any
    /// irrevocable eager-write window. The hot path (no irrevocable in
    /// progress) is two plain loads around the clock load — no RMW, no
    /// store, no shared-line invalidation, and no clock read for
    /// `wait_ns`: the accumulator is only touched (and the monotonic
    /// clock only consulted) once the sampler has actually had to wait.
    #[inline]
    pub(crate) fn sample_rv(&self, clock: &GlobalClock, wait_ns: &mut u64) -> u64 {
        let mut spins = 0u32;
        let mut wait_start: Option<std::time::Instant> = None;
        loop {
            // Acquire: reading an even value synchronizes-with the
            // Release close of the previous window, so the clock load
            // below cannot return a value from inside that closed window.
            let e1 = self.era.load(Ordering::Acquire);
            if e1 & 1 == 0 {
                let c = clock.now();
                // Ordered after the Acquire clock load by program order
                // (loads are not hoisted above an Acquire load); equality
                // with `e1` proves no window opened before `c` was
                // produced — see the module docs for the full argument.
                if self.era.load(Ordering::Acquire) == e1 {
                    if let Some(t0) = wait_start {
                        *wait_ns += t0.elapsed().as_nanos() as u64;
                    }
                    return c;
                }
            }
            spins += 1;
            wait_start.get_or_insert_with(std::time::Instant::now);
            era_wait(spins);
        }
    }

    /// Registers this thread as an in-flight writing commit, waiting out
    /// any irrevocable transaction first. The returned guard must be held
    /// across the whole lock/validate/publish window and deregisters on
    /// drop (including abort and panic paths). Time spent waiting out an
    /// era is added to `wait_ns` (untouched on the no-wait fast path).
    #[inline]
    pub(crate) fn enter_commit(&self, wait_ns: &mut u64) -> CommitTicket<'_> {
        let slot = &self.committers[current_thread_index() & (COMMIT_STRIPES - 1)];
        let mut spins = 0u32;
        let mut wait_start: Option<std::time::Instant> = None;
        loop {
            // Register *before* checking the era (SeqCst store→load, see
            // module docs): either we see the odd era and back out, or
            // the irrevocable side sees our registration and drains us.
            slot.fetch_add(1, Ordering::SeqCst);
            if self.era.load(Ordering::SeqCst) & 1 == 0 {
                if let Some(t0) = wait_start {
                    *wait_ns += t0.elapsed().as_nanos() as u64;
                }
                return CommitTicket { slot };
            }
            slot.fetch_sub(1, Ordering::Release);
            wait_start.get_or_insert_with(std::time::Instant::now);
            while self.era.load(Ordering::Acquire) & 1 == 1 {
                spins += 1;
                era_wait(spins);
            }
        }
    }

    /// Opens an irrevocable era: makes the era odd (excluding other
    /// irrevocable transactions), then drains every in-flight writing
    /// commit. On return the committed state is frozen — no optimistic
    /// transaction holds or can acquire a location lock until the
    /// returned guard drops.
    ///
    /// Admission among competing irrevocable transactions is ordered by
    /// `birth_ts` (oldest first), matching the Greedy contention
    /// manager's aging discipline: every waiter keeps re-asserting its
    /// timestamp into [`IrrevGate::oldest_waiter`] and only the current
    /// minimum attempts the era CAS. Birth timestamps increase
    /// monotonically, so the oldest waiter only ever advances to the
    /// front — a transaction upgraded after many aborts cannot be
    /// starved by younger irrevocable arrivals. (`birth_ts` must not be
    /// `u64::MAX`, which encodes "no waiter"; the `Stm` timestamp
    /// source starts at 1 and increments.)
    ///
    /// The whole entry (era race + committer drain) counts as gate wait
    /// into `wait_ns`: unlike the optimistic paths this one always
    /// serializes, and it is rare enough that the two clock reads are
    /// noise against the SeqCst CAS and the 32-slot drain.
    pub(crate) fn enter_irrevocable(&self, birth_ts: u64, wait_ns: &mut u64) -> IrrevTicket<'_> {
        debug_assert_ne!(birth_ts, u64::MAX, "u64::MAX encodes the absence of a waiter");
        let entry_start = std::time::Instant::now();
        let mut spins = 0u32;
        loop {
            // Re-assert every round: the previous winner resets the word
            // on entry, and only re-assertion repopulates it. The RMW is
            // skipped while the word already carries our (or an older)
            // timestamp, so parked waiters poll with plain loads instead
            // of ping-ponging the line.
            if self.oldest_waiter.load(Ordering::Acquire) > birth_ts {
                self.note_waiter(birth_ts);
            }
            let e = self.era.load(Ordering::Acquire);
            // SeqCst success: the era-odd store must be totally ordered
            // against committer registrations (module docs).
            if e & 1 == 0
                && self.oldest_waiter.load(Ordering::Acquire) == birth_ts
                && self
                    .era
                    .compare_exchange_weak(e, e + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
            {
                // Withdraw our claim. An even older transaction may have
                // registered meanwhile (it will win the *next* era); in
                // that case the word is no longer ours and stays.
                let _ = self.oldest_waiter.compare_exchange(
                    birth_ts,
                    u64::MAX,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
                break;
            }
            spins += 1;
            era_wait(spins);
        }
        for slot in self.committers.iter() {
            let mut spins = 0u32;
            while slot.load(Ordering::SeqCst) != 0 {
                spins += 1;
                polite_spin(spins);
            }
        }
        *wait_ns += entry_start.elapsed().as_nanos() as u64;
        IrrevTicket { gate: self }
    }

    /// Register `birth_ts` as an era waiter unless an older one is
    /// already registered (an atomic min).
    #[inline]
    fn note_waiter(&self, birth_ts: u64) {
        self.oldest_waiter.fetch_min(birth_ts, Ordering::AcqRel);
    }
}

/// Registration of one in-flight writing commit; deregisters on drop.
pub(crate) struct CommitTicket<'g> {
    slot: &'g CachePadded<AtomicU64>,
}

impl Drop for CommitTicket<'_> {
    fn drop(&mut self) {
        // Release: our lock releases / publishes are ordered before the
        // deregistration the draining irrevocable transaction acquires.
        self.slot.fetch_sub(1, Ordering::Release);
    }
}

/// An open irrevocable era; closes (era becomes even) on drop, including
/// on panic unwind out of the irrevocable closure.
pub(crate) struct IrrevTicket<'g> {
    gate: &'g IrrevGate,
}

impl Drop for IrrevTicket<'_> {
    fn drop(&mut self) {
        // Release-close: samplers that read the new even era see every
        // eager write (and clock tick) of the window as already done.
        self.gate.era.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn sample_rv_passes_through_when_idle() {
        let gate = IrrevGate::new();
        let clock = GlobalClock::new();
        clock.increment();
        clock.increment();
        let mut wait_ns = 0u64;
        assert_eq!(gate.sample_rv(&clock, &mut wait_ns), 2);
        assert_eq!(gate.era(), 0);
        assert_eq!(wait_ns, 0, "the no-wait fast path never touches the accumulator");
    }

    #[test]
    fn irrevocable_ticket_flips_era_parity() {
        let gate = IrrevGate::new();
        let t = gate.enter_irrevocable(1, &mut 0);
        assert_eq!(gate.era() & 1, 1);
        drop(t);
        assert_eq!(gate.era() & 1, 0);
        assert_eq!(gate.era(), 2, "eras strictly increase");
    }

    #[test]
    fn commit_ticket_registers_and_deregisters() {
        let gate = IrrevGate::new();
        let mut commit_wait = 0u64;
        let t = gate.enter_commit(&mut commit_wait);
        assert_eq!(commit_wait, 0, "uncontended commit entry records no wait");
        // An irrevocable entry must wait for the ticket to drop.
        let entered = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut wait_ns = 0u64;
                let _t = gate.enter_irrevocable(1, &mut wait_ns);
                assert!(wait_ns > 0, "draining the registered committer is counted as wait");
                entered.store(true, Ordering::SeqCst);
            });
            // Give the irrevocable thread time to reach the drain loop.
            for _ in 0..100 {
                std::thread::yield_now();
            }
            assert!(!entered.load(Ordering::SeqCst), "must drain registered committers first");
            drop(t);
        });
        assert!(entered.load(Ordering::SeqCst));
    }

    #[test]
    fn sample_rv_waits_out_an_open_era() {
        let gate = IrrevGate::new();
        let clock = GlobalClock::new();
        let ticket = gate.enter_irrevocable(1, &mut 0);
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut wait_ns = 0u64;
                let _rv = gate.sample_rv(&clock, &mut wait_ns);
                assert!(wait_ns > 0, "waiting out an open era is counted");
                done.store(true, Ordering::SeqCst);
            });
            for _ in 0..100 {
                std::thread::yield_now();
            }
            assert!(!done.load(Ordering::SeqCst), "sampling must block while era is odd");
            drop(ticket);
        });
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn irrevocable_eras_exclude_each_other() {
        let gate = IrrevGate::new();
        let counter = AtomicU64::new(0);
        // Unique, monotonically drawn birth timestamps, as Stm issues.
        let next_ts = AtomicU64::new(1);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..200 {
                        let _t =
                            gate.enter_irrevocable(next_ts.fetch_add(1, Ordering::Relaxed), &mut 0);
                        let v = counter.load(Ordering::Relaxed);
                        std::hint::spin_loop();
                        counter.store(v + 1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 800, "eras must be mutually exclusive");
    }

    #[test]
    fn era_admission_is_age_ordered() {
        // Regression test for the CM-identity hole: a younger irrevocable
        // transaction must not open the era while an older transaction is
        // registered as a waiter — the Greedy aging order extends to the
        // irrevocable-upgrade path.
        let gate = IrrevGate::new();
        // The older transaction (birth_ts = 5) has announced itself but
        // not entered yet (it is, say, between retries).
        gate.note_waiter(5);
        let entered_young = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _t = gate.enter_irrevocable(9, &mut 0);
                entered_young.store(true, Ordering::SeqCst);
            });
            for _ in 0..200 {
                std::thread::yield_now();
            }
            assert!(
                !entered_young.load(Ordering::SeqCst),
                "younger waiter must defer to the registered older one"
            );
            // The older transaction arrives: it enters first, even though
            // the younger one has been spinning the whole time.
            let old = gate.enter_irrevocable(5, &mut 0);
            assert!(!entered_young.load(Ordering::SeqCst));
            drop(old);
        });
        assert!(entered_young.load(Ordering::SeqCst), "younger waiter enters after the older");
    }
}
