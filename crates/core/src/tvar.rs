//! [`TVar`]: a transactional shared register.

use std::fmt;
use std::sync::Arc;

use crossbeam_epoch as epoch;

use crate::error::TxResult;
use crate::txn::Transaction;
use crate::varcore::{CommittedRead, VarCore};

/// Types storable in a [`TVar`].
///
/// Transactions return owned values, so values must be [`Clone`] (keep
/// them small or reference-counted: a list node clones an `Arc`, not its
/// payload), and they cross threads at commit, hence [`Send`] +
/// [`Sync`] + `'static`.
pub trait TxValue: Clone + Send + Sync + 'static {}

impl<T: Clone + Send + Sync + 'static> TxValue for T {}

/// Default snapshot history depth for vars created outside an
/// [`crate::Stm`] (see [`crate::StmConfig::history_depth`]).
///
/// Under watermark-based retention this is a *floor*, not a cap: a
/// var always keeps at least this many versions, and additionally
/// keeps every version a live snapshot bound (tracked by the snapshot
/// registry) can still reach — long scans extend retention past the
/// floor instead of dying with `SnapshotUnavailable`.
pub const DEFAULT_HISTORY_DEPTH: usize = 16;

/// A shared register accessed through transactions — the paper's shared
/// memory "partitioned into shared registers, supporting atomic
/// reads/writes, and metadata used for synchronization".
///
/// `TVar` is a cheap handle (one `Arc`); clones alias the same register.
/// Create vars with [`crate::Stm::new_tvar`] so debug builds can verify
/// vars are not mixed across STM instances.
///
/// ```
/// use polytm::{Stm, TxParams};
///
/// let stm = Stm::new();
/// let x = stm.new_tvar(1i64);
/// stm.run(TxParams::default(), |tx| x.modify(tx, |v| v + 1));
/// assert_eq!(x.load_committed(), 2);
/// ```
pub struct TVar<T: TxValue> {
    core: Arc<VarCore<T>>,
}

impl<T: TxValue> TVar<T> {
    /// Create an untagged var with the default history depth. Prefer
    /// [`crate::Stm::new_tvar`].
    pub fn new(value: T) -> Self {
        Self::with_history(value, DEFAULT_HISTORY_DEPTH, 0)
    }

    pub(crate) fn with_history(value: T, history_depth: usize, stm_id: u64) -> Self {
        Self { core: Arc::new(VarCore::new(value, history_depth, stm_id)) }
    }

    /// Transactional read — the paper's `r(x)`.
    ///
    /// What "consistent" means depends on the transaction's
    /// [`crate::Semantics`]: opaque reads join a single atomic critical
    /// step; elastic reads join the sliding window; snapshot reads come
    /// from the version history at the transaction's start time;
    /// irrevocable reads see the frozen committed state.
    #[inline]
    pub fn read(&self, tx: &mut Transaction<'_>) -> TxResult<T> {
        tx.read_var(&self.core)
    }

    /// Transactional write — the paper's `w(x, v)`. Buffered until commit
    /// (published eagerly under irrevocable semantics).
    #[inline]
    pub fn write(&self, tx: &mut Transaction<'_>, value: T) -> TxResult<()> {
        tx.write_var(&self.core, value)
    }

    /// Read-modify-write convenience.
    pub fn modify<F>(&self, tx: &mut Transaction<'_>, f: F) -> TxResult<()>
    where
        F: FnOnce(T) -> T,
    {
        let v = self.read(tx)?;
        self.write(tx, f(v))
    }

    /// Write `value` and return the previous value.
    pub fn replace(&self, tx: &mut Transaction<'_>, value: T) -> TxResult<T> {
        let old = self.read(tx)?;
        self.write(tx, value)?;
        Ok(old)
    }

    /// Non-transactional read of the latest committed value. Safe at any
    /// time; linearizes at some point during the call. Useful for
    /// post-quiescence inspection and monitoring.
    pub fn load_committed(&self) -> T {
        let guard = epoch::pin();
        let mut spins = 0u32;
        loop {
            match self.core.read_committed(&guard) {
                CommittedRead::Value(v, _) => return v,
                CommittedRead::Locked(_) => {
                    spins += 1;
                    crate::stm::polite_spin(spins);
                }
            }
        }
    }

    /// The version (commit timestamp) of the latest committed value.
    pub fn committed_version(&self) -> u64 {
        let guard = epoch::pin();
        let mut spins = 0u32;
        loop {
            match self.core.read_committed(&guard) {
                CommittedRead::Value(_, ver) => return ver,
                CommittedRead::Locked(_) => {
                    spins += 1;
                    crate::stm::polite_spin(spins);
                }
            }
        }
    }

    /// Stable address identifying this register (the paper's `x` in
    /// `r(x)`); equal iff two handles alias the same register.
    pub fn addr(&self) -> usize {
        self.core.address()
    }

    /// Do two handles alias the same register?
    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        Arc::ptr_eq(&a.core, &b.core)
    }
}

impl<T: TxValue> Clone for TVar<T> {
    fn clone(&self) -> Self {
        Self { core: Arc::clone(&self.core) }
    }
}

impl<T: TxValue + fmt::Debug> fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TVar")
            .field("addr", &format_args!("{:#x}", self.addr()))
            .field("value", &self.load_committed())
            .finish()
    }
}
