//! Transaction outcomes: abort causes and cancellation.

use std::fmt;

/// The result type returned by transactional operations and by the user
/// closure passed to [`crate::Stm::run`].
///
/// `Err(Abort::...)` values produced by the library are *control flow*:
/// [`crate::Stm::run`] intercepts them and re-executes the closure.
/// Propagate them with `?`.
pub type TxResult<T> = Result<T, Abort>;

/// Why a transaction attempt cannot commit.
///
/// Except for [`Abort::Cancel`], every variant causes
/// [`crate::Stm::run`]/[`crate::Stm::try_run`] to retry the transaction
/// (possibly after contention-manager backoff, possibly upgraded to
/// irrevocable semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Abort {
    /// A read observed a location whose version is newer than the
    /// transaction's read version and the semantics-specific repair
    /// (opaque extension, elastic cut) was not possible.
    ReadConflict {
        /// Address of the conflicting location (stable for the lifetime of
        /// the `TVar`; useful for diagnostics and contention management).
        addr: usize,
    },
    /// A read or commit-time lock acquisition found the location locked by
    /// another transaction and the contention manager chose to abort us.
    Locked {
        /// Address of the contended location.
        addr: usize,
        /// Birth timestamp of the lock owner, if known (0 when unknown).
        owner: u64,
    },
    /// Commit-time validation of the read set failed.
    ValidationFailed {
        /// Address of the first invalid read-set entry.
        addr: usize,
    },
    /// A snapshot transaction required a version older than the history
    /// retained by the location. With watermark-based retention this
    /// only happens to snapshots whose bound was not registered (see
    /// [`Abort::SnapshotCapacity`]) or to nested snapshots piggybacking
    /// on a parent without a slot.
    SnapshotUnavailable {
        /// Address of the location whose history was too short.
        addr: usize,
    },
    /// A snapshot transaction could not protect its read bound because
    /// the snapshot registry was full, and a location's history was
    /// truncated past the bound.
    SnapshotCapacity {
        /// Address of the location whose history was too short.
        addr: usize,
    },
    /// A write was attempted under read-only semantics
    /// ([`crate::Semantics::Snapshot`]).
    ReadOnlyViolation,
    /// The user requested a retry (e.g. a condition is not yet satisfied).
    /// The runtime re-executes the transaction after a backoff.
    Retry,
    /// The transaction requests restart under irrevocable semantics
    /// (raised internally when a nested block needs a pessimistic parent).
    RestartIrrevocable,
    /// The user cancelled the transaction; surfaces as
    /// [`Canceled`] from [`crate::Stm::try_run`].
    Cancel,
}

/// The contention-cause buckets aborts are classified into — the single
/// source of the split reported by [`crate::StatsSnapshot`]'s cause
/// counters, the bench rows' `aborts_*` columns, and the advisor's
/// [`crate::RunTelemetry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCause {
    /// A location lock held by another transaction.
    LockConflict,
    /// Read validation (a read-time conflict under non-elastic
    /// semantics, or commit-time read-set validation).
    Validation,
    /// An elastic window that could not absorb a conflicting update
    /// (read-time conflict under elastic semantics).
    Cut,
    /// A runtime resource limit: the snapshot registry had no free slot
    /// to protect a snapshot's read bound, and the unprotected bound
    /// fell behind truncation.
    Capacity,
    /// A snapshot needed a version older than the history retained for
    /// the location (the bound was never registry-protected).
    Unavailable,
    /// Not contention: user retries, read-only violations, irrevocable
    /// restarts.
    Other,
}

impl Abort {
    /// True when the runtime should transparently retry the transaction.
    pub fn is_retryable(self) -> bool {
        !matches!(self, Abort::Cancel)
    }

    /// Contention cause of this abort in a transaction running under
    /// `semantics`; `None` for [`Abort::Cancel`], which is not counted
    /// as an abort at all.
    pub fn cause(self, semantics: crate::Semantics) -> Option<AbortCause> {
        Some(match self {
            Abort::ReadConflict { .. } if matches!(semantics, crate::Semantics::Elastic { .. }) => {
                AbortCause::Cut
            }
            Abort::ReadConflict { .. } | Abort::ValidationFailed { .. } => AbortCause::Validation,
            Abort::Locked { .. } => AbortCause::LockConflict,
            Abort::SnapshotUnavailable { .. } => AbortCause::Unavailable,
            Abort::SnapshotCapacity { .. } => AbortCause::Capacity,
            Abort::Retry | Abort::ReadOnlyViolation | Abort::RestartIrrevocable => {
                AbortCause::Other
            }
            Abort::Cancel => return None,
        })
    }

    /// The shared-memory address this abort implicates, if the variant
    /// carries one — the attribution key trace analyzers use to rank
    /// the hottest contended locations.
    pub fn addr(self) -> Option<usize> {
        match self {
            Abort::ReadConflict { addr }
            | Abort::Locked { addr, .. }
            | Abort::ValidationFailed { addr }
            | Abort::SnapshotUnavailable { addr }
            | Abort::SnapshotCapacity { addr } => Some(addr),
            Abort::ReadOnlyViolation | Abort::Retry | Abort::RestartIrrevocable | Abort::Cancel => {
                None
            }
        }
    }

    /// Short machine-readable label used by the statistics counters.
    pub fn label(self) -> &'static str {
        match self {
            Abort::ReadConflict { .. } => "read-conflict",
            Abort::Locked { .. } => "locked",
            Abort::ValidationFailed { .. } => "validation",
            Abort::SnapshotUnavailable { .. } => "snapshot-unavailable",
            Abort::SnapshotCapacity { .. } => "snapshot-capacity",
            Abort::ReadOnlyViolation => "read-only-violation",
            Abort::Retry => "retry",
            Abort::RestartIrrevocable => "restart-irrevocable",
            Abort::Cancel => "cancel",
        }
    }
}

impl fmt::Display for Abort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Abort::ReadConflict { addr } => write!(f, "read conflict at {addr:#x}"),
            Abort::Locked { addr, owner } => {
                write!(f, "location {addr:#x} locked by transaction {owner}")
            }
            Abort::ValidationFailed { addr } => {
                write!(f, "read-set validation failed at {addr:#x}")
            }
            Abort::SnapshotUnavailable { addr } => {
                write!(f, "snapshot version unavailable at {addr:#x}")
            }
            Abort::SnapshotCapacity { addr } => {
                write!(f, "snapshot registry at capacity; version unavailable at {addr:#x}")
            }
            Abort::ReadOnlyViolation => write!(f, "write attempted in a read-only transaction"),
            Abort::Retry => write!(f, "user-requested retry"),
            Abort::RestartIrrevocable => write!(f, "restart requested under irrevocable semantics"),
            Abort::Cancel => write!(f, "transaction cancelled by user"),
        }
    }
}

impl std::error::Error for Abort {}

/// Returned by [`crate::Stm::try_run`] when the closure cancelled the
/// transaction via [`Abort::Cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Canceled;

impl fmt::Display for Canceled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction cancelled")
    }
}

impl std::error::Error for Canceled {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_is_not_retryable_everything_else_is() {
        assert!(!Abort::Cancel.is_retryable());
        for a in [
            Abort::ReadConflict { addr: 1 },
            Abort::Locked { addr: 1, owner: 2 },
            Abort::ValidationFailed { addr: 1 },
            Abort::SnapshotUnavailable { addr: 1 },
            Abort::SnapshotCapacity { addr: 1 },
            Abort::ReadOnlyViolation,
            Abort::Retry,
            Abort::RestartIrrevocable,
        ] {
            assert!(a.is_retryable(), "{a} must be retryable");
        }
    }

    #[test]
    fn cause_classifies_by_variant_and_semantics() {
        use crate::Semantics;
        assert_eq!(
            Abort::ReadConflict { addr: 0 }.cause(Semantics::elastic()),
            Some(AbortCause::Cut)
        );
        assert_eq!(
            Abort::ReadConflict { addr: 0 }.cause(Semantics::Opaque),
            Some(AbortCause::Validation)
        );
        assert_eq!(
            Abort::ValidationFailed { addr: 0 }.cause(Semantics::elastic()),
            Some(AbortCause::Validation),
            "commit-time validation stays validation even when elastic"
        );
        assert_eq!(
            Abort::Locked { addr: 0, owner: 1 }.cause(Semantics::Opaque),
            Some(AbortCause::LockConflict)
        );
        assert_eq!(
            Abort::SnapshotUnavailable { addr: 0 }.cause(Semantics::Snapshot),
            Some(AbortCause::Unavailable)
        );
        assert_eq!(
            Abort::SnapshotCapacity { addr: 0 }.cause(Semantics::Snapshot),
            Some(AbortCause::Capacity)
        );
        assert_eq!(Abort::Retry.cause(Semantics::Opaque), Some(AbortCause::Other));
        assert_eq!(Abort::Cancel.cause(Semantics::Opaque), None);
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            Abort::ReadConflict { addr: 0 }.label(),
            Abort::Locked { addr: 0, owner: 0 }.label(),
            Abort::ValidationFailed { addr: 0 }.label(),
            Abort::SnapshotUnavailable { addr: 0 }.label(),
            Abort::SnapshotCapacity { addr: 0 }.label(),
            Abort::ReadOnlyViolation.label(),
            Abort::Retry.label(),
            Abort::RestartIrrevocable.label(),
            Abort::Cancel.label(),
        ];
        let mut dedup = labels.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn display_is_informative() {
        let s = format!("{}", Abort::Locked { addr: 0xbeef, owner: 7 });
        assert!(s.contains("0xbeef") && s.contains('7'));
    }
}
