//! Commit-time redo hook.
//!
//! A durability layer (see `polytm-durable`) installs a [`RedoSink`] on
//! the [`crate::Stm`] at construction. Transactions stage opaque redo
//! bytes with [`crate::Transaction::stage_redo`]; when an attempt
//! commits, the runtime hands the staged bytes to the sink exactly once,
//! stamped with the commit's write version, *while the commit still
//! holds every location lock it acquired*. That placement is the whole
//! contract: the sink observes commits in an order consistent with
//! every per-location serialization (a transaction that read this
//! commit's writes can only enqueue after this commit's enqueue), so a
//! log that persists a prefix of the enqueue order persists a prefix of
//! the history.
//!
//! The sink must therefore be fast and non-blocking — stage into an
//! in-memory buffer and assign a sequence number; do I/O elsewhere. It
//! must also be infallible from the runtime's point of view: a sink
//! cannot veto a commit (the writes are about to publish regardless).
//! Durability failures are reported out-of-band, when a caller asks the
//! durability layer to *wait* for a sequence number.

/// Where committed redo bytes go. Installed once per [`crate::Stm`] via
/// [`crate::Stm::with_redo_sink`]; see the module docs for the calling
/// contract.
pub trait RedoSink: Send + Sync {
    /// Accept the redo bytes of one committing transaction, stamped
    /// with the commit's write version `wv`, and return the log
    /// sequence number assigned to it.
    ///
    /// Called with the commit's location locks held: implementations
    /// must only stage into memory (a short critical section is fine;
    /// file I/O or unbounded waits are not — apply backpressure
    /// *before* the transaction runs, not here). Must not panic and
    /// must not call back into the STM.
    fn append(&self, wv: u64, redo: &[u8]) -> u64;
}

/// Commit metadata reported by [`crate::Stm::run_logged`] /
/// [`crate::Stm::try_run_logged`] for the attempt that committed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitInfo {
    /// The commit's clock stamp: the write version of an optimistic
    /// commit, or the commit-time clock value of an irrevocable
    /// transaction (an upper bound on its eager writes' versions). 0
    /// when the transaction published nothing and staged no redo
    /// (read-only commit).
    pub wv: u64,
    /// Sequence number the installed [`RedoSink`] assigned to this
    /// commit's redo bytes. `None` when no sink is installed, no redo
    /// bytes were staged, or the commit published nothing.
    pub seq: Option<u64>,
}
