//! The global version clock.
//!
//! polytm is a time-based STM in the TL2 family: a single global
//! [`GlobalClock`] orders all committed writes. Every transaction samples
//! the clock at start (its *read version*, `rv`) and every writing commit
//! advances the clock to obtain its *write version* (`wv`). A location
//! whose version exceeds `rv` has been overwritten since the transaction
//! began, which is exactly the condition the per-semantics read rules
//! (opaque validation/extension, elastic cutting, snapshot chain walks)
//! arbitrate.

use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum representable version.
///
/// Versions are stored shifted left by one inside per-location lock words
/// (the low bit is the lock flag), so the usable width is 63 bits. At one
/// commit per nanosecond this lasts ~292 years; [`GlobalClock::increment`]
/// still guards against overflow in debug builds.
pub const MAX_VERSION: u64 = (1 << 63) - 1;

/// A monotonically increasing commit timestamp source shared by every
/// transaction of one [`crate::Stm`] instance.
#[derive(Debug)]
pub struct GlobalClock {
    now: AtomicU64,
}

impl GlobalClock {
    /// Creates a clock starting at version 0 (the version all freshly
    /// created [`crate::TVar`]s carry).
    pub const fn new() -> Self {
        Self { now: AtomicU64::new(0) }
    }

    /// Current clock value. Used as the read version `rv` of starting
    /// transactions and as the bound for snapshot reads.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    /// Advances the clock and returns the new value, used as the write
    /// version `wv` of a committing transaction.
    #[inline]
    pub fn increment(&self) -> u64 {
        let wv = self.now.fetch_add(1, Ordering::SeqCst) + 1;
        debug_assert!(wv < MAX_VERSION, "global version clock overflow");
        wv
    }
}

impl Default for GlobalClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn starts_at_zero() {
        let c = GlobalClock::new();
        assert_eq!(c.now(), 0);
    }

    #[test]
    fn increment_is_monotonic_and_returns_new_value() {
        let c = GlobalClock::new();
        assert_eq!(c.increment(), 1);
        assert_eq!(c.increment(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn concurrent_increments_are_unique() {
        let c = Arc::new(GlobalClock::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || (0..1000).map(|_| c.increment()).collect::<Vec<_>>())
            })
            .collect();
        let mut all: Vec<u64> = threads.into_iter().flat_map(|t| t.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "every increment must yield a distinct version");
        assert_eq!(c.now(), 4000);
    }
}
