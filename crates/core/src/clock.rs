//! The global version clock.
//!
//! polytm is a time-based STM in the TL2 family: a single global
//! [`GlobalClock`] orders all committed writes. Every transaction samples
//! the clock at start (its *read version*, `rv`) and every writing commit
//! advances the clock to obtain its *write version* (`wv`). A location
//! whose version exceeds `rv` has been overwritten since the transaction
//! began, which is exactly the condition the per-semantics read rules
//! (opaque validation/extension, elastic cutting, snapshot chain walks)
//! arbitrate.
//!
//! ## Why not GV4 "pass on failure"?
//!
//! TL2's GV4 scheme lets a committer whose clock CAS fails *adopt* the
//! winner's value as its own `wv`. That is sound in C-on-x86 — the
//! `LOCK`-prefixed lock acquisitions are full fences, so an adopter's
//! write-set locks are globally visible before its clock load — but it
//! is **not** expressible with Acquire/Release (or even one-sided SeqCst
//! fences) in the Rust/C++ memory model: an adopter never stores to the
//! clock, so a reader that sampled `rv == wv` from the *winner's* RMW
//! has no synchronizes-with edge to the adopter's lock words. Such a
//! reader may probe one of the adopter's locations pre-lock (stale,
//! admitted at an old version) and another post-publish (admitted at
//! `wv == rv`) — a torn view of one atomic write set that read-only
//! commits never re-validate. [`GlobalClock::advance`] therefore
//! retries its CAS until it wins: every committer's `wv` comes from its
//! **own** AcqRel RMW, so the release-sequence argument below covers
//! every write version, uncontended cost stays one CAS, and the SeqCst
//! `fetch_add` of the seed is still gone.
//!
//! ## Memory ordering
//!
//! All orderings here are Acquire/Release, not SeqCst; see DESIGN.md §1
//! ("Ordering argument") for the full proof sketch. The load in
//! [`GlobalClock::now`] is Acquire and every clock mutation is an AcqRel
//! RMW. Because RMWs extend release sequences, an Acquire load that
//! observes clock value `c` synchronizes with *every* increment that
//! produced a value `<= c`; and since a committer locks its entire write
//! set *before* advancing the clock, a transaction whose `rv >= wv` is
//! guaranteed to observe that committer's location locks (or its
//! published values) when it probes — the TL2 invariant that makes
//! `version <= rv` reads consistent.

use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum representable version.
///
/// Versions are stored shifted left by one inside per-location lock words
/// (the low bit is the lock flag), so the usable width is 63 bits. At one
/// commit per nanosecond this lasts ~292 years; [`GlobalClock::advance`]
/// still guards against overflow in debug builds.
pub const MAX_VERSION: u64 = (1 << 63) - 1;

/// A monotonically increasing commit timestamp source shared by every
/// transaction of one [`crate::Stm`] instance.
#[derive(Debug)]
pub struct GlobalClock {
    now: AtomicU64,
}

impl GlobalClock {
    /// Creates a clock starting at version 0 (the version all freshly
    /// created [`crate::TVar`]s carry).
    pub const fn new() -> Self {
        Self { now: AtomicU64::new(0) }
    }

    /// Current clock value. Used as the read version `rv` of starting
    /// transactions and as the bound for snapshot reads.
    ///
    /// Acquire: synchronizes with the AcqRel increments, so observing
    /// value `c` makes every lock acquisition performed before an
    /// increment `<= c` visible (DESIGN.md §1, "rv publication").
    #[inline]
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::Acquire)
    }

    /// Advances the clock for a committing write set and returns the
    /// new, unique value: a CAS retried until it wins (never adopted —
    /// see the module docs for why GV4 adoption is unsound here).
    ///
    /// AcqRel success: Release publishes our pre-commit lock stores to
    /// later `now()` observers (through the release sequence); Acquire
    /// orders us after the committers whose value we read-modify.
    #[inline]
    pub fn advance(&self) -> u64 {
        let mut cur = self.now.load(Ordering::Relaxed);
        loop {
            match self.now.compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    debug_assert!(cur + 1 < MAX_VERSION, "global version clock overflow");
                    return cur + 1;
                }
                Err(observed) => cur = observed,
            }
        }
    }

    /// Advances the clock by exactly one and returns the new, globally
    /// unique value. Used by irrevocable transactions for their eager
    /// writes, which run with all optimistic committers drained (see
    /// `gate.rs`), so this never contends in practice; each eager write
    /// needs its *own* version because the irrevocable-era protocol
    /// relies on the strictly increasing per-write sequence to define
    /// the eager-write window.
    #[inline]
    pub fn tick(&self) -> u64 {
        let wv = self.now.fetch_add(1, Ordering::AcqRel) + 1;
        debug_assert!(wv < MAX_VERSION, "global version clock overflow");
        wv
    }

    /// Legacy unique-increment entry point, kept for external callers and
    /// tests; equivalent to [`GlobalClock::tick`].
    #[inline]
    pub fn increment(&self) -> u64 {
        self.tick()
    }

    /// Advances the clock to at least `to` (a no-op when it is already
    /// there): the recovery entry point. A durability layer restoring a
    /// store must bring the clock back to the highest write version the
    /// previous incarnation persisted *before* admitting transactions,
    /// so fresh commits are stamped above every logged or checkpointed
    /// `wv` — otherwise the next recovery's `wv`-based snapshot cut
    /// would silently skip them. Monotone: never moves the clock
    /// backwards, and safe against concurrent `advance`/`tick` (the
    /// max-RMW keeps every concurrently assigned version unique).
    #[inline]
    pub fn catch_up(&self, to: u64) {
        debug_assert!(to < MAX_VERSION, "global version clock overflow");
        self.now.fetch_max(to, Ordering::AcqRel);
    }
}

impl Default for GlobalClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn starts_at_zero() {
        let c = GlobalClock::new();
        assert_eq!(c.now(), 0);
    }

    #[test]
    fn increment_is_monotonic_and_returns_new_value() {
        let c = GlobalClock::new();
        assert_eq!(c.increment(), 1);
        assert_eq!(c.increment(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn advance_increments_uniquely() {
        let c = GlobalClock::new();
        assert_eq!(c.advance(), 1);
        assert_eq!(c.advance(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn concurrent_increments_are_unique() {
        let c = Arc::new(GlobalClock::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || (0..1000).map(|_| c.increment()).collect::<Vec<_>>())
            })
            .collect();
        let mut all: Vec<u64> = threads.into_iter().flat_map(|t| t.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "every increment must yield a distinct version");
        assert_eq!(c.now(), 4000);
    }

    #[test]
    fn concurrent_advances_are_unique_too() {
        let c = Arc::new(GlobalClock::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || (0..1000).map(|_| c.advance()).collect::<Vec<_>>())
            })
            .collect();
        let mut all: Vec<u64> = threads.into_iter().flat_map(|t| t.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "every advance must yield a distinct write version");
        assert_eq!(c.now(), 4000);
    }
}
