//! Per-thread shard indices.
//!
//! Several hot-path structures stripe their shared state across
//! cache-padded slots so that unrelated threads do not contend on one
//! cache line (the committer registry in `gate.rs`, the statistics
//! shards in `stats.rs`). Each thread draws one process-wide index on
//! first use and keeps it for its lifetime; consumers reduce it modulo
//! their own stripe count, so two consumers can use different widths
//! while still giving each thread a stable home slot.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

static NEXT_THREAD_INDEX: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's stable shard index (assigned on first call).
///
/// Public so sibling crates that stripe their own state (e.g. the
/// adaptive advisor's class telemetry) share one index per thread
/// instead of re-implementing the assignment.
#[inline]
pub fn current_thread_index() -> usize {
    THREAD_INDEX.with(|idx| {
        let v = idx.get();
        if v != usize::MAX {
            return v;
        }
        let assigned = NEXT_THREAD_INDEX.fetch_add(1, Ordering::Relaxed);
        idx.set(assigned);
        assigned
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_stable_within_a_thread() {
        let a = current_thread_index();
        let b = current_thread_index();
        assert_eq!(a, b);
    }

    #[test]
    fn indices_differ_across_threads() {
        let mine = current_thread_index();
        let theirs = std::thread::spawn(current_thread_index).join().unwrap();
        assert_ne!(mine, theirs);
    }
}
