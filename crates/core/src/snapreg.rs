//! Registry of live snapshot read bounds, driving version retention.
//!
//! Version chains used to be truncated at a fixed `history_depth`, which
//! made long snapshot scans die with `SnapshotUnavailable` whenever
//! writers churned a location more than `history_depth` times during the
//! scan. The registry replaces that guess with the actual demand: every
//! top-level snapshot transaction registers its read bound in a slot
//! here, and committers compute a **watermark** — the oldest registered
//! bound, clamped to their own write version — below which no live
//! snapshot can ever read. [`crate::VarCore`]'s truncation then keeps
//! the depth floor *plus* everything a registered bound can still reach.
//!
//! ## Why a missed registration is still safe
//!
//! Registration (a SeqCst CAS followed by a SeqCst fence) happens before
//! the snapshot samples its read version; a committer advances the clock
//! (an RMW) and then — behind a SeqCst fence — scans the slots. Suppose
//! the committer's scan misses a reader's registration. Then the
//! committer's fence precedes the reader's fence in the total order of
//! SeqCst operations, so the reader's subsequent clock sample observes
//! at least the committer's `wv`: the reader's bound `rv >= c0 >= wv`.
//! The watermark is clamped to `wv` (`watermark <= wv <= rv`), so the
//! truncation this committer performs never severs a version the missed
//! reader could still need. Readers the scan *does* see are protected
//! directly by the min. Consequently a registered top-level snapshot
//! can only lose a version to truncation if it never got a slot (the
//! registry was full) — reported as a distinct capacity abort.

use crossbeam_utils::CachePadded;
use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::shard::current_thread_index;

/// Number of registration slots. Snapshots beyond this many concurrent
/// registrants fall back to unregistered (depth-floor-only) retention
/// and abort with a capacity error if truncation outruns them.
const SNAP_SLOTS: usize = 64;

/// Sentinel for a free slot.
const FREE: u64 = u64::MAX;

/// Fixed-size table of live snapshot read bounds.
///
/// One per [`crate::Stm`]. Registration is wait-free in the common case
/// (one CAS starting from a per-thread hint); the committer-side
/// watermark scan is a bounded read-only sweep.
#[derive(Debug)]
pub(crate) struct SnapshotRegistry {
    slots: Box<[CachePadded<AtomicU64>]>,
}

impl SnapshotRegistry {
    pub(crate) fn new() -> Self {
        Self { slots: (0..SNAP_SLOTS).map(|_| CachePadded::new(AtomicU64::new(FREE))).collect() }
    }

    /// Registers a snapshot read bound and returns the slot index, or
    /// `None` when every slot is taken. SeqCst CAS + fence: must be
    /// ordered before the caller's clock sample so the Dekker-style
    /// argument in the module docs holds.
    pub(crate) fn register(&self, bound: u64) -> Option<usize> {
        debug_assert!(bound != FREE, "a real clock value never reaches u64::MAX");
        let start = current_thread_index();
        for i in 0..SNAP_SLOTS {
            let idx = (start + i) & (SNAP_SLOTS - 1);
            if self.slots[idx]
                .compare_exchange(FREE, bound, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                fence(Ordering::SeqCst);
                return Some(idx);
            }
        }
        None
    }

    /// Frees a slot returned by [`SnapshotRegistry::register`].
    pub(crate) fn release(&self, idx: usize) {
        debug_assert!(self.slots[idx].load(Ordering::Relaxed) != FREE, "double release");
        self.slots[idx].store(FREE, Ordering::Release);
    }

    /// Oldest registered bound, clamped to `ceiling` (the calling
    /// committer's own write version). The clamp is what keeps missed
    /// registrations safe — see the module docs.
    pub(crate) fn watermark(&self, ceiling: u64) -> u64 {
        // Ordered after the caller's clock advance in the SeqCst total
        // order, pairing with the fence in `register`.
        fence(Ordering::SeqCst);
        let mut min = ceiling;
        for slot in self.slots.iter() {
            let b = slot.load(Ordering::Acquire);
            if b < min {
                min = b;
            }
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_watermark_is_the_ceiling() {
        let reg = SnapshotRegistry::new();
        assert_eq!(reg.watermark(42), 42);
        assert_eq!(reg.watermark(u64::MAX), u64::MAX);
    }

    #[test]
    fn watermark_is_the_oldest_live_bound() {
        let reg = SnapshotRegistry::new();
        let a = reg.register(30).unwrap();
        let b = reg.register(10).unwrap();
        let c = reg.register(20).unwrap();
        assert_eq!(reg.watermark(100), 10);
        reg.release(b);
        assert_eq!(reg.watermark(100), 20);
        reg.release(c);
        assert_eq!(reg.watermark(100), 30);
        reg.release(a);
        assert_eq!(reg.watermark(100), 100);
    }

    #[test]
    fn ceiling_clamps_below_registered_bounds() {
        let reg = SnapshotRegistry::new();
        let a = reg.register(50).unwrap();
        assert_eq!(reg.watermark(7), 7, "own wv caps the watermark");
        reg.release(a);
    }

    #[test]
    fn registry_fills_up_and_recovers() {
        let reg = SnapshotRegistry::new();
        let slots: Vec<usize> = (0..SNAP_SLOTS as u64).map(|i| reg.register(i).unwrap()).collect();
        assert_eq!(reg.register(99), None, "no free slot left");
        assert_eq!(reg.watermark(u64::MAX), 0);
        for s in slots {
            reg.release(s);
        }
        assert!(reg.register(99).is_some());
    }

    #[test]
    fn slots_are_distinct() {
        let reg = SnapshotRegistry::new();
        let a = reg.register(1).unwrap();
        let b = reg.register(2).unwrap();
        assert_ne!(a, b);
        reg.release(a);
        reg.release(b);
    }
}
