//! [`TArray`]: a fixed-size array of transactional registers with bulk
//! operations.
//!
//! The paper's model is "a shared memory partitioned into shared
//! registers"; `TArray` is that memory as a value. Bulk operations show
//! polymorphism at array scale: `read_all` runs under whatever semantics
//! the enclosing transaction chose (opaque for an atomic snapshot,
//! elastic for a sliding scan, snapshot for a historical view).

use std::sync::Arc;

use crate::error::TxResult;
use crate::semantics::Semantics;
use crate::stm::{Stm, TxParams};
use crate::tvar::{TVar, TxValue};
use crate::txn::Transaction;

/// A fixed-size array of [`TVar`]s. Cheap to clone (shares the cells).
#[derive(Clone)]
pub struct TArray<T: TxValue> {
    cells: Arc<Vec<TVar<T>>>,
}

impl<T: TxValue> TArray<T> {
    /// `len` cells, each initialized to `init`.
    pub fn new(stm: &Stm, len: usize, init: T) -> Self {
        Self { cells: Arc::new((0..len).map(|_| stm.new_tvar(init.clone())).collect()) }
    }

    /// Build from an iterator of initial values.
    pub fn from_values(stm: &Stm, values: impl IntoIterator<Item = T>) -> Self {
        Self { cells: Arc::new(values.into_iter().map(|v| stm.new_tvar(v)).collect()) }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the array has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The underlying register at `i` (for composing with raw TVar code).
    pub fn cell(&self, i: usize) -> &TVar<T> {
        &self.cells[i]
    }

    /// Transactional read of cell `i`.
    pub fn get(&self, tx: &mut Transaction<'_>, i: usize) -> TxResult<T> {
        self.cells[i].read(tx)
    }

    /// Transactional write of cell `i`.
    pub fn set(&self, tx: &mut Transaction<'_>, i: usize, value: T) -> TxResult<()> {
        self.cells[i].write(tx, value)
    }

    /// Swap cells `i` and `j` (atomic within the enclosing transaction).
    pub fn swap(&self, tx: &mut Transaction<'_>, i: usize, j: usize) -> TxResult<()> {
        if i == j {
            return Ok(());
        }
        let a = self.cells[i].read(tx)?;
        let b = self.cells[j].read(tx)?;
        self.cells[i].write(tx, b)?;
        self.cells[j].write(tx, a)
    }

    /// Read every cell in index order.
    pub fn read_all(&self, tx: &mut Transaction<'_>) -> TxResult<Vec<T>> {
        let mut out = Vec::with_capacity(self.cells.len());
        for c in self.cells.iter() {
            out.push(c.read(tx)?);
        }
        Ok(out)
    }

    /// Overwrite every cell from `values` (must match the length).
    pub fn write_all(&self, tx: &mut Transaction<'_>, values: &[T]) -> TxResult<()> {
        assert_eq!(values.len(), self.cells.len(), "length mismatch");
        for (c, v) in self.cells.iter().zip(values) {
            c.write(tx, v.clone())?;
        }
        Ok(())
    }

    /// Convenience: atomic (opaque) snapshot of the whole array, as its
    /// own transaction.
    pub fn snapshot_atomic(&self, stm: &Stm) -> Vec<T> {
        stm.run(TxParams::new(Semantics::Opaque), |tx| self.read_all(tx))
    }

    /// Convenience: multi-version snapshot of the whole array (never
    /// aborts), as its own transaction.
    pub fn snapshot_versioned(&self, stm: &Stm) -> Vec<T> {
        stm.run(TxParams::new(Semantics::Snapshot), |tx| self.read_all(tx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stm::{Stm, TxParams};

    #[test]
    fn construction_and_len() {
        let stm = Stm::new();
        let a = TArray::new(&stm, 4, 0i64);
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        let b = TArray::from_values(&stm, [1i64, 2, 3]);
        assert_eq!(b.snapshot_atomic(&stm), vec![1, 2, 3]);
    }

    #[test]
    fn get_set_swap() {
        let stm = Stm::new();
        let a = TArray::from_values(&stm, [10i64, 20, 30]);
        stm.run(TxParams::default(), |tx| {
            assert_eq!(a.get(tx, 1)?, 20);
            a.set(tx, 1, 99)?;
            a.swap(tx, 0, 2)?;
            a.swap(tx, 1, 1)?; // no-op
            Ok(())
        });
        assert_eq!(a.snapshot_atomic(&stm), vec![30, 99, 10]);
    }

    #[test]
    fn write_all_roundtrip() {
        let stm = Stm::new();
        let a = TArray::new(&stm, 3, 0i64);
        stm.run(TxParams::default(), |tx| a.write_all(tx, &[7, 8, 9]));
        assert_eq!(a.snapshot_versioned(&stm), vec![7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn write_all_length_checked() {
        let stm = Stm::new();
        let a = TArray::new(&stm, 3, 0i64);
        stm.run(TxParams::default(), |tx| a.write_all(tx, &[1]));
    }

    #[test]
    fn concurrent_permutations_preserve_multiset() {
        let stm = Stm::new();
        let a = TArray::from_values(&stm, (0..16i64).collect::<Vec<_>>());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let stm = &stm;
                let a = &a;
                s.spawn(move || {
                    let mut seed = t + 1;
                    for _ in 0..300 {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let i = (seed >> 33) as usize % 16;
                        let j = (seed >> 13) as usize % 16;
                        stm.run(TxParams::default(), |tx| a.swap(tx, i, j));
                    }
                });
            }
        });
        let mut v = a.snapshot_atomic(&stm);
        v.sort_unstable();
        assert_eq!(v, (0..16i64).collect::<Vec<_>>(), "swaps must permute, never duplicate");
    }

    #[test]
    fn elastic_scan_vs_atomic_scan() {
        let stm = Stm::new();
        let a = TArray::new(&stm, 8, 1i64);
        let sum = stm.run(TxParams::weak(), |tx| Ok(a.read_all(tx)?.iter().sum::<i64>()));
        assert_eq!(sum, 8);
        // The weak scan cut most of its reads.
        assert!(stm.stats().elastic_cuts >= 6);
    }
}
