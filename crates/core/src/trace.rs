//! The always-on tracing hook: fixed-size binary events and the
//! process-wide [`TraceSink`].
//!
//! Like [`crate::RedoSink`] and [`crate::SemanticsSource`], the sink is
//! a trait defined here so the core stays dependency-free; the ring
//! implementation lives in `polytm-obs`. Unlike those two, the sink is
//! **process-global** rather than per-[`crate::Stm`]: trace events come
//! from every layer (the transaction runtime, the advisor's epoch
//! controller, the WAL's group-commit leader, the server's read-sweep
//! coalescer), most of which have no `Stm` in hand at the emit site, and
//! a trace that interleaves all layers on one clock is exactly what the
//! analyzer wants. One process, one trace.
//!
//! ## Hot-path cost
//!
//! With no sink installed, every emit site is one `Acquire` load of an
//! always-cached static and a perfectly predicted branch — the
//! event-building closure is never evaluated. The transaction loop
//! hoists even that load out of the per-attempt path (one load per
//! `run`). With a sink installed, the contract below bounds the cost to
//! building a 32-byte value and one ring write; see `DESIGN.md` §11 for
//! the full overhead argument and measured numbers.

use std::sync::OnceLock;

use crate::error::AbortCause;
use crate::semantics::Semantics;

/// One fixed-size (32-byte) binary trace event.
///
/// The field meanings depend on [`TraceEvent::code`]; the per-code
/// conventions are documented on the [`code`] constants. `ts_ns` is
/// stamped by the sink (nanoseconds since the sink's own epoch), not by
/// the emitter — emitters leave it 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceEvent {
    /// Nanoseconds since the installed sink's epoch (sink-stamped).
    pub ts_ns: u64,
    /// Event kind — one of the [`code`] constants.
    pub code: u8,
    /// Kind-specific discriminant: a semantics code for transaction
    /// events, an abort-cause code for aborts (see [`semantics_code`]
    /// and [`cause_code`]).
    pub sub: u8,
    /// Transaction class ([`crate::ClassId`]), or [`NO_CLASS`].
    pub class: u16,
    /// Kind-specific small count (retries, batch ops, …).
    pub n: u32,
    /// Kind-specific wide payload (address, latency, packed word, …).
    pub a: u64,
    /// Second kind-specific wide payload.
    pub b: u64,
}

impl TraceEvent {
    /// Build an event with `ts_ns = 0` (the sink stamps the time).
    pub fn new(code: u8, sub: u8, class: u16, n: u32, a: u64, b: u64) -> Self {
        Self { ts_ns: 0, code, sub, class, n, a, b }
    }
}

/// `class` value for transactions that carry no [`crate::ClassId`].
pub const NO_CLASS: u16 = u16::MAX;

/// Event-kind codes and their field conventions.
pub mod code {
    /// A *re*-attempt started (after an abort). `sub` = semantics code,
    /// `n` = retries so far (≥ 1). First attempts emit no begin event —
    /// they are implied by their own commit/abort event, which carries
    /// the retry count — so a transaction that commits on its first try
    /// costs one ring push, not two. Total attempts are therefore
    /// `commits + aborts`, and (aside from cancelled first attempts,
    /// which are invisible by design) `begin events == aborts`.
    pub const TXN_BEGIN: u8 = 1;
    /// A transaction committed. `sub` = semantics code, `n` = retries,
    /// `a` = write version (0 for read-only commits), `b` = live reads
    /// in the high 32 bits | writes in the low 32 bits.
    pub const TXN_COMMIT: u8 = 2;
    /// A transaction attempt aborted. `sub` = abort-cause code, `n` =
    /// retries before this abort, `a` = conflicting address (0 when the
    /// cause carries none).
    pub const TXN_ABORT: u8 = 3;
    /// A read-version extension succeeded. `sub` = semantics code,
    /// `n` = extensions so far in this attempt, `a` = the address whose
    /// read triggered the extension.
    pub const TXN_EXTEND: u8 = 4;
    /// The advisor closed an epoch. `n` = classes whose policy changed,
    /// `a` = the epoch's index.
    pub const ADVISOR_EPOCH: u8 = 5;
    /// The advisor flipped one class's installed policy. `sub` = the
    /// new semantics code, `a` = old packed policy word, `b` = new
    /// packed policy word ([`u64::MAX`] encodes "previously unset").
    pub const ADVISOR_FLIP: u8 = 6;
    /// A WAL group-commit leader flushed a batch. `n` = commits in the
    /// batch, `a` = append+fsync latency in nanoseconds, `b` = bytes
    /// appended.
    pub const WAL_FLUSH: u8 = 7;
    /// The server admitted one coalesced write batch into a single STM
    /// commit. `n` = pipelined ops in the batch, `a` = connection id,
    /// `b` = request payload bytes coalesced.
    pub const SERVER_BATCH: u8 = 8;

    // -- causal span codes (duration-style; emitted only when the
    // attempt/flush actually waited, so the zero-wait fast path stays at
    // the PR 9 one-ring-push budget) ---------------------------------

    /// A transaction attempt waited at the era gate. `sub` = gate site
    /// ([`super::GATE_SAMPLE_RV`] / [`super::GATE_ENTER_COMMIT`] /
    /// [`super::GATE_ENTER_IRREVOCABLE`]), `n` = retries so far (the
    /// attempt ordinal), `a` = nanoseconds spent waiting, summed over
    /// the attempt. Emitted at attempt end, just before its
    /// commit/abort event.
    pub const WAIT_GATE: u8 = 9;
    /// A transaction attempt waited for an owned lock under an
    /// arbitrated `Wait` decision. `sub` = semantics code, `n` =
    /// retries, `a` = nanoseconds waited (summed over the attempt),
    /// `b` = the last contended address.
    pub const WAIT_ARBITRATE: u8 = 10;
    /// A transaction waited out a contention backoff between attempts.
    /// `sub` = semantics code, `n` = retries (the attempt just
    /// aborted), `a` = nanoseconds slept.
    pub const WAIT_CLOCK: u8 = 11;
    /// A committer waited for the WAL group-commit leader to make its
    /// sequence durable. `a` = nanoseconds waited, `b` = the awaited
    /// sequence number.
    pub const WAL_FOLLOWER_WAIT: u8 = 12;
    /// The WAL flush leader lingered for the group window. `n` =
    /// entries staged when the linger began, `a` = nanoseconds
    /// lingered.
    pub const WAL_LINGER: u8 = 13;
    /// The WAL flush leader's append+fsync I/O. `n` = entries in the
    /// batch, `a` = I/O nanoseconds, `b` = bytes appended. (Same
    /// latency [`WAL_FLUSH`] reports; this event exists so the span
    /// joiner can attribute the I/O to requests on the leader's ring.)
    pub const WAL_FSYNC: u8 = 14;
    /// The server decoded one request frame in a read sweep — a
    /// request span opens. `sub` = opcode, `n` = request sequence
    /// number, `a` = connection id, `b` = payload bytes.
    pub const REQ_RECV: u8 = 15;
    /// The server finished encoding one request's response — the span
    /// closes. `sub` = opcode, `n` = request sequence number, `a` =
    /// connection id, `b` = response bytes.
    pub const REQ_DONE: u8 = 16;
    /// A write request joined the connection's coalescing run. `n` =
    /// request sequence number, `a` = connection id, `b` = ops in the
    /// run after enqueue.
    pub const BATCH_ENQUEUE: u8 = 17;
    /// The coalescing run committed as one STM transaction. `n` = ops,
    /// `a` = connection id, `b` = first sequence in the high 32 bits |
    /// last sequence in the low 32 bits (the span joiner ties every
    /// enqueued request in `[first, last]` to this commit).
    pub const BATCH_COMMIT: u8 = 18;
    /// A reply-backpressure stall ended. `a` = connection id, `b` =
    /// nanoseconds the connection spent stalled.
    pub const NET_STALL: u8 = 19;
}

/// [`code::WAIT_GATE`] site: the begin/extend read-version sample.
pub const GATE_SAMPLE_RV: u8 = 0;
/// [`code::WAIT_GATE`] site: the commit-side era-gate entry.
pub const GATE_ENTER_COMMIT: u8 = 1;
/// [`code::WAIT_GATE`] site: the irrevocable-token acquisition.
pub const GATE_ENTER_IRREVOCABLE: u8 = 2;

/// Pack a [`code::BATCH_COMMIT`] sequence range into its `b` payload.
pub fn pack_seq_range(first: u32, last: u32) -> u64 {
    (u64::from(first) << 32) | u64::from(last)
}

/// Unpack a [`code::BATCH_COMMIT`] `b` payload into `(first, last)`.
pub fn unpack_seq_range(b: u64) -> (u32, u32) {
    ((b >> 32) as u32, b as u32)
}

/// Human-readable name for an event code (for analyzers; unknown codes
/// render as `"unknown"`).
pub fn code_name(c: u8) -> &'static str {
    match c {
        code::TXN_BEGIN => "txn-begin",
        code::TXN_COMMIT => "txn-commit",
        code::TXN_ABORT => "txn-abort",
        code::TXN_EXTEND => "txn-extend",
        code::ADVISOR_EPOCH => "advisor-epoch",
        code::ADVISOR_FLIP => "advisor-flip",
        code::WAL_FLUSH => "wal-flush",
        code::SERVER_BATCH => "server-batch",
        code::WAIT_GATE => "wait-gate",
        code::WAIT_ARBITRATE => "wait-arbitrate",
        code::WAIT_CLOCK => "wait-clock",
        code::WAL_FOLLOWER_WAIT => "wal-follower-wait",
        code::WAL_LINGER => "wal-linger",
        code::WAL_FSYNC => "wal-fsync",
        code::REQ_RECV => "req-recv",
        code::REQ_DONE => "req-done",
        code::BATCH_ENQUEUE => "batch-enqueue",
        code::BATCH_COMMIT => "batch-commit",
        code::NET_STALL => "net-stall",
        _ => "unknown",
    }
}

/// Stable wire code for a [`Semantics`] (the `sub` of transaction
/// events). Elastic windows are not encoded — the trace cares about the
/// discipline, not its tuning.
pub fn semantics_code(s: Semantics) -> u8 {
    match s {
        Semantics::Opaque => 0,
        Semantics::Elastic { .. } => 1,
        Semantics::Snapshot => 2,
        Semantics::Irrevocable => 3,
    }
}

/// Name for a [`semantics_code`] value.
pub fn semantics_name(sub: u8) -> &'static str {
    match sub {
        0 => "opaque",
        1 => "elastic",
        2 => "snapshot",
        3 => "irrevocable",
        _ => "unknown",
    }
}

/// Stable wire code for an [`AbortCause`] (the `sub` of
/// [`code::TXN_ABORT`] events).
pub fn cause_code(c: AbortCause) -> u8 {
    match c {
        AbortCause::LockConflict => 1,
        AbortCause::Validation => 2,
        AbortCause::Cut => 3,
        AbortCause::Capacity => 4,
        AbortCause::Unavailable => 5,
        AbortCause::Other => 6,
    }
}

/// Name for a [`cause_code`] value.
pub fn cause_name(sub: u8) -> &'static str {
    match sub {
        1 => "lock-conflict",
        2 => "validation",
        3 => "cut",
        4 => "capacity",
        5 => "unavailable",
        6 => "other",
        _ => "unknown",
    }
}

/// Where trace events go. Implementations must be wait-free on the
/// caller: `record` runs on transaction hot paths and inside the WAL
/// flush leader, so it must never block, never allocate on the steady
/// state, and shed load (counting drops) rather than push back. The
/// sink stamps [`TraceEvent::ts_ns`] against its own monotonic epoch.
pub trait TraceSink: Send + Sync {
    /// Record one event (see the contract on the trait).
    fn record(&self, ev: TraceEvent);
}

static SINK: OnceLock<&'static dyn TraceSink> = OnceLock::new();

/// Install the process-wide sink. Install-once: returns `false` (and
/// leaves the existing sink) if one is already installed. The `'static`
/// borrow keeps every emit site a plain load — leak the sink
/// (`Box::leak`) or store it in a `static`; tracing is a
/// process-lifetime concern.
pub fn install(sink: &'static dyn TraceSink) -> bool {
    SINK.set(sink).is_ok()
}

/// The installed sink, if any. Hot loops hoist this load and branch on
/// the returned `Option` per event.
#[inline]
pub fn sink() -> Option<&'static dyn TraceSink> {
    SINK.get().copied()
}

/// Emit one event through the installed sink, if any. The closure is
/// only evaluated when a sink is installed.
#[inline]
pub fn emit(build: impl FnOnce() -> TraceEvent) {
    if let Some(s) = SINK.get() {
        s.record(build());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_names_round_trip() {
        for s in
            [Semantics::Opaque, Semantics::elastic(), Semantics::Snapshot, Semantics::Irrevocable]
        {
            assert_ne!(semantics_name(semantics_code(s)), "unknown");
        }
        for c in [
            AbortCause::LockConflict,
            AbortCause::Validation,
            AbortCause::Cut,
            AbortCause::Capacity,
            AbortCause::Unavailable,
            AbortCause::Other,
        ] {
            assert_ne!(cause_name(cause_code(c)), "unknown");
        }
        for k in 1..=19u8 {
            assert_ne!(code_name(k), "unknown");
        }
        assert_eq!(code_name(0), "unknown");
        assert_eq!(code_name(20), "unknown");
    }

    #[test]
    fn seq_range_packs_and_unpacks() {
        assert_eq!(unpack_seq_range(pack_seq_range(0, 0)), (0, 0));
        assert_eq!(unpack_seq_range(pack_seq_range(7, 123)), (7, 123));
        assert_eq!(unpack_seq_range(pack_seq_range(u32::MAX, 1)), (u32::MAX, 1));
    }

    #[test]
    fn event_is_32_bytes_of_payload() {
        // The dump codec serializes exactly these fields; keep the
        // struct in lockstep with the 32-byte wire layout.
        assert_eq!(8 + 1 + 1 + 2 + 4 + 8 + 8, 32);
        let ev = TraceEvent::new(code::TXN_COMMIT, 1, 7, 3, 42, 99);
        assert_eq!(ev.ts_ns, 0);
        assert_eq!(ev.class, 7);
    }
}
