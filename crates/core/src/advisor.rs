//! The semantics-advisor hook: per-attempt parameter injection.
//!
//! The paper's polymorphism pitch is that the *caller* knows the right
//! semantics per operation. A feedback-driven runtime can go further and
//! *learn* it: this module defines the interface such a runtime plugs
//! into [`crate::Stm`] — the STM core stays policy-free, the policy
//! lives in an external [`SemanticsSource`] (see the `polytm-adaptive`
//! crate).
//!
//! The contract:
//!
//! * A run tagged with a [`ClassId`] (via
//!   [`crate::TxParams::with_class`]) consults the installed source
//!   before **every attempt** ([`SemanticsSource::plan`]) and reports
//!   accumulated telemetry once, when the run commits
//!   ([`SemanticsSource::observe`]; cancelled runs report nothing).
//! * The runtime never lets a plan weaken its own guarantees: an
//!   attempt already upgraded to [`Semantics::Irrevocable`] stays
//!   irrevocable; a plan never serves semantics weaker than the
//!   caller's request (no elastic plan for a requested-opaque class,
//!   no narrowed elastic window) except [`Semantics::Snapshot`]'s
//!   atomic view; and a class that turns out to write under an
//!   injected [`Semantics::Snapshot`] is transparently re-run under
//!   the caller's requested semantics (the `ReadOnlyViolation`
//!   fallback) — a misbehaving advisor can cost throughput, never
//!   safety.

use crate::cm::ConflictArbiter;
use crate::semantics::Semantics;

/// Identity of a transaction *class*: a group of `Stm::run` call sites
/// expected to behave alike (same access shape, same conflict profile).
/// Classes are cheap dense indices — an advisor typically folds them
/// into a small fixed table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u16);

impl ClassId {
    /// A class id (const-friendly).
    pub const fn new(id: u16) -> Self {
        ClassId(id)
    }
}

/// What a [`SemanticsSource`] prescribes for one attempt.
#[derive(Debug, Clone, Copy)]
pub struct AttemptPlan {
    /// Semantics to run the attempt under.
    pub semantics: Semantics,
    /// Contention-manager override for the attempt (conflict decisions
    /// *and* the post-abort backoff curve); `None` keeps the
    /// [`crate::StmConfig`] arbiter.
    pub arbiter: Option<ConflictArbiter>,
}

impl AttemptPlan {
    /// A plan that keeps the configured arbiter.
    pub const fn semantics(semantics: Semantics) -> Self {
        Self { semantics, arbiter: None }
    }
}

/// Telemetry for one completed `Stm::run` call (all attempts folded
/// together), reported to [`SemanticsSource::observe`].
#[derive(Debug, Clone, Copy)]
pub struct RunTelemetry {
    /// The class the run was tagged with.
    pub class: ClassId,
    /// Semantics the caller requested (before any advisor injection).
    pub requested: Semantics,
    /// Semantics of the attempt that finally committed.
    pub committed_semantics: Semantics,
    /// Aborted attempts before the commit.
    pub retries: u32,
    /// Aborts whose cause was a location lock held by another
    /// transaction.
    pub aborts_lock: u32,
    /// Aborts whose cause was read validation (read-time conflict under
    /// non-elastic semantics, or commit-time validation failure).
    pub aborts_validation: u32,
    /// Aborts of elastic attempts whose cut/extension machinery could
    /// not absorb a conflicting update.
    pub aborts_cut: u32,
    /// Aborts because the snapshot registry had no free slot to protect
    /// the run's read bound (a resource-capacity failure).
    pub aborts_capacity: u32,
    /// Aborts because a snapshot needed a version older than the
    /// history retained for the location (its bound was unprotected).
    pub aborts_unavailable: u32,
    /// Aborts outside the four contention causes (user retries and
    /// read-only violations).
    pub aborts_other: u32,
    /// Reads observed by the committed attempt: live read-set entries,
    /// elastically cut entries, and snapshot/irrevocable direct reads —
    /// the attempt's traversal length, which is what a classifier needs
    /// (a plain live count would shrink under the very semantics that
    /// cut or bypass the read set).
    pub reads: u64,
    /// Buffered writes of the committed attempt. Irrevocable attempts
    /// write eagerly, so this undercounts them; pair with
    /// [`RunTelemetry::wrote`] for the write/read-only distinction.
    pub writes: u64,
    /// True when the run performed any write — buffered, eager, or one
    /// that aborted with `ReadOnlyViolation` under an injected
    /// [`Semantics::Snapshot`]. The advisor's Snapshot safety rule keys
    /// off this.
    pub wrote: bool,
    /// True when the run was upgraded to [`Semantics::Irrevocable`]
    /// (nested request or liveness fallback).
    pub upgraded: bool,
    /// True when an injected Snapshot was rejected by a write and the
    /// run fell back to the requested semantics.
    pub read_only_violation: bool,
}

impl RunTelemetry {
    pub(crate) fn new(class: ClassId, requested: Semantics) -> Self {
        Self {
            class,
            requested,
            committed_semantics: requested,
            retries: 0,
            aborts_lock: 0,
            aborts_validation: 0,
            aborts_cut: 0,
            aborts_capacity: 0,
            aborts_unavailable: 0,
            aborts_other: 0,
            reads: 0,
            writes: 0,
            wrote: false,
            upgraded: false,
            read_only_violation: false,
        }
    }

    /// Fold one abort into the per-cause counters, classified by the
    /// same [`crate::error::AbortCause`] split as
    /// [`crate::StatsSnapshot`].
    pub(crate) fn record_abort(&mut self, abort: crate::Abort, semantics: Semantics) {
        use crate::error::AbortCause;
        let ctr = match abort.cause(semantics) {
            None => return, // Cancel is not an abort
            Some(AbortCause::LockConflict) => &mut self.aborts_lock,
            Some(AbortCause::Validation) => &mut self.aborts_validation,
            Some(AbortCause::Cut) => &mut self.aborts_cut,
            Some(AbortCause::Capacity) => &mut self.aborts_capacity,
            Some(AbortCause::Unavailable) => &mut self.aborts_unavailable,
            Some(AbortCause::Other) => &mut self.aborts_other,
        };
        *ctr += 1;
    }
}

/// A feedback-driven source of per-attempt transaction parameters.
///
/// Implementations must be cheap: [`SemanticsSource::plan`] runs on
/// every attempt of every classified transaction (a table lookup, not a
/// decision procedure) and [`SemanticsSource::observe`] once per run
/// (a handful of striped counter increments). Heavy lifting belongs on
/// an epoch cadence inside the implementation.
pub trait SemanticsSource: Send + Sync {
    /// Parameters for attempt number `retries` (0 = first attempt) of a
    /// run whose caller requested `requested` semantics.
    fn plan(&self, class: ClassId, retries: u32, requested: Semantics) -> AttemptPlan;

    /// One run of `class` finished; `telemetry` folds all its attempts.
    fn observe(&self, telemetry: &RunTelemetry);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Abort;

    #[test]
    fn telemetry_classifies_abort_causes() {
        let mut t = RunTelemetry::new(ClassId(3), Semantics::Opaque);
        t.record_abort(Abort::Locked { addr: 0, owner: 1 }, Semantics::Opaque);
        t.record_abort(Abort::ReadConflict { addr: 0 }, Semantics::Opaque);
        t.record_abort(Abort::ReadConflict { addr: 0 }, Semantics::elastic());
        t.record_abort(Abort::ValidationFailed { addr: 0 }, Semantics::elastic());
        t.record_abort(Abort::SnapshotUnavailable { addr: 0 }, Semantics::Snapshot);
        t.record_abort(Abort::SnapshotCapacity { addr: 0 }, Semantics::Snapshot);
        t.record_abort(Abort::Retry, Semantics::Opaque);
        assert_eq!(
            (
                t.aborts_lock,
                t.aborts_validation,
                t.aborts_cut,
                t.aborts_capacity,
                t.aborts_unavailable,
                t.aborts_other
            ),
            (1, 2, 1, 1, 1, 1)
        );
    }

    #[test]
    fn class_ids_are_ordered_value_types() {
        assert!(ClassId(1) < ClassId(2));
        assert_eq!(ClassId::new(7), ClassId(7));
    }
}
